//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors this minimal, dependency-free reimplementation instead of the real
//! crate. It covers exactly the idioms the NObLe code was written against:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! - [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   float/integer types,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is SplitMix64 — statistically fine for synthetic-data
//! generation and shuffling, deterministic for a given seed, and *not*
//! cryptographically secure (neither is the real `StdRng` contract this
//! workspace relies on: only reproducibility per seed).

/// A source of random `u64`s. Mirrors `rand_core::RngCore` minus the
/// byte-fill methods this workspace never calls.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics when the range is empty, matching rand 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed. Only the `seed_from_u64`
/// entry point is used in this workspace.
pub trait SeedableRng: Sized {
    /// Seed type (fixed bytes in the real crate; a `u64` suffices here).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, the idiom used throughout the
    /// workspace for reproducible experiments.
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 64 random bits into a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_sample_range {
    ($($ty:ty, $unit:ident);+ $(;)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = $unit(rng.next_u64());
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = $unit(rng.next_u64());
                lo + u * (hi - lo)
            }
        }
    )+};
}

float_sample_range! { f64, unit_f64; f32, unit_f32 }

macro_rules! int_sample_range {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )+};
}

int_sample_range! { u8, u16, u32, u64, usize, i8, i16, i32, i64, isize }

pub mod rngs {
    //! Concrete generators ([`StdRng`] only).

    use super::{RngCore, SeedableRng};

    /// Deterministic generator matching the workspace's use of
    /// `rand::rngs::StdRng` (SplitMix64 under the hood, not the real
    /// crate's ChaCha12 — only per-seed reproducibility is promised).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = u64;

        fn from_seed(seed: u64) -> Self {
            StdRng { state: seed }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_seed(state)
        }
    }
}

pub mod seq {
    //! Sequence helpers ([`SliceRandom`] only).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(2usize..9);
            assert!((2..9).contains(&n));
            let m = rng.gen_range(0..=4u64);
            assert!(m <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
