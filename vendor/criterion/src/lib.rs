//! Offline stand-in for the subset of [Criterion.rs](https://docs.rs/criterion)
//! this workspace's benchmarks use.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal harness with the same API shape: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of Criterion's statistical engine it
//! reports a single mean wall-clock time per benchmark: enough to compare
//! hot paths across commits on the same machine, with no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver. Construct via [`Criterion::default`] (the
/// [`criterion_main!`] macro does this for you).
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.measurement_time, f);
        self
    }
}

/// A named set of benchmarks sharing group-level settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    /// Group-scoped override; like real Criterion it ends with the group.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub keys measurement on time,
    /// not sample count, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets this group's measurement budget (does not outlive the group).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Measures one closure under this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        run_benchmark(id, budget, f);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// How much setup output to batch per measurement in
/// [`Bencher::iter_batched`]. The stub runs one setup per routine call
/// regardless, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine input: Criterion would batch many per allocation.
    SmallInput,
    /// Large routine input: fewer per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let reps = planned_reps(once, self.budget);
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.total += start.elapsed() + once;
        self.iterations += reps + 1;
    }

    /// Measures `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed();
        let reps = planned_reps(once, self.budget);
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
        self.total += once;
        self.iterations += reps + 1;
    }
}

/// How many further repetitions fit in the time budget after a first
/// timed call took `once`.
fn planned_reps(once: Duration, budget: Duration) -> u64 {
    if once.is_zero() {
        return 1000;
    }
    (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
}

fn run_benchmark<F>(id: &str, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        budget,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let mean_ns = if bencher.iterations == 0 {
        0
    } else {
        bencher.total.as_nanos() / bencher.iterations as u128
    };
    println!(
        "  {id}: {} iters, mean {} ns/iter",
        bencher.iterations, mean_ns
    );
}

/// Declares a benchmark-group function from benchmark functions, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
