//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! this workspace's property tests use.
//!
//! The build container cannot reach crates.io, so the workspace vendors this
//! minimal reimplementation. It keeps proptest's *shape* — the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, range and collection
//! strategies, `prop_assert!`/`prop_assert_eq!`/`prop_assume!` — but not its
//! engine: cases are generated from a fixed deterministic seed and failing
//! inputs are **not shrunk**; the panic message reports the case index and
//! the failed assertion instead of a minimized input.

pub mod test_runner {
    //! Case outcome plumbing used by the macros.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input out; try another case.
        Reject,
        /// An assertion failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a formatted message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Run-level configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given test-case seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty usize range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just produces one value per call.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! float_range_strategy {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $ty) * (hi - lo)
                }
            }
        )+};
    }

    float_range_strategy! { f32, f64 }

    macro_rules! int_range_strategy {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $ty
                }
            }
        )+};
    }

    int_range_strategy! { u8, u16, u32, u64, usize, i8, i16, i32, i64, isize }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! { (A, B), (A, B, C), (A, B, C, D) }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric strategies beyond plain ranges.

    pub mod f64 {
        //! `f64`-specific strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding normal (finite, non-subnormal, non-NaN) `f64`
        /// values across a wide magnitude span, sign included.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalStrategy;

        /// Any normal `f64`. Matches `prop::num::f64::NORMAL` in spirit:
        /// values span many orders of magnitude and both signs.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Magnitude log-uniform in [1e-6, 1e12), random sign. This
                // keeps values normal while exercising scale variety.
                let exp = -6.0 + 18.0 * rng.unit_f64();
                let mantissa = 1.0 + rng.unit_f64();
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                sign * mantissa * 10f64.powf(exp)
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias used as `prop::collection::vec`, etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (skips it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        0xB5F3_C6A7u64 ^ ((case as u64 + rejected as u64) << 16),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => case += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 4096,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.1);
            prop_assert!(x > 0.1);
        }

        #[test]
        fn normal_is_normal(v in prop::num::f64::NORMAL) {
            prop_assert!(v.is_normal(), "{v} not normal");
        }

        #[test]
        fn tuples_and_map(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }
    }
}
