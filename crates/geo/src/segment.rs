use crate::Point;

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from endpoints.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let len2 = d.dot(d);
        if len2 < 1e-300 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len2).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Heading of the segment direction in radians.
    pub fn heading(&self) -> f64 {
        (self.b - self.a).heading()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_point_interior_and_clamped() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(Point::new(5.0, 3.0)), Point::new(5.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-4.0, 2.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(14.0, -2.0)),
            Point::new(10.0, 0.0)
        );
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.closest_point(Point::new(5.0, 5.0)), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
    }

    #[test]
    fn distance_to_matches_closest_point() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 4.0));
        assert_eq!(s.distance_to(Point::new(3.0, 2.0)), 3.0);
    }

    #[test]
    fn point_at_parameters() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 8.0));
        assert_eq!(s.point_at(0.5), Point::new(2.0, 4.0));
        assert_eq!(s.point_at(0.0), s.a);
        assert_eq!(s.point_at(1.0), s.b);
    }

    #[test]
    fn heading_of_diagonal() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!((s.heading() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }
}
