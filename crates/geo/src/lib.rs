//! 2-D geometry substrate for the NObLe localization suite.
//!
//! Provides the spatial primitives the paper's pipeline relies on:
//!
//! - [`Point`] / segment utilities,
//! - [`Polygon`] with ring containment tests and nearest-point projection,
//! - [`Building`] footprints with holes (courtyards) and floors, composed
//!   into a [`CampusMap`] — the "map knowledge" used by the Deep Regression
//!   Projection baseline and the structure-awareness metrics of Figs. 4–5,
//! - [`Polyline`] walking paths with resampling and headings for the IMU
//!   simulator,
//! - labeled [`Zone`]s with deterministic first-match [`ZoneSet`] lookup —
//!   the semantic regions the tracking-session layer reports entered/left
//!   events against,
//! - a uniform [`Grid`] over a bounding box (shared by the quantizer).
//!
//! # Example
//!
//! ```
//! use noble_geo::{Point, Polygon};
//!
//! let square = Polygon::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(4.0, 0.0),
//!     Point::new(4.0, 4.0),
//!     Point::new(0.0, 4.0),
//! ]).unwrap();
//! assert!(square.contains(Point::new(2.0, 2.0)));
//! let p = square.project(Point::new(6.0, 2.0));
//! assert!((p.x - 4.0).abs() < 1e-12);
//! ```

mod error;
mod floorplan;
mod grid;
mod path;
mod point;
mod polygon;
mod segment;
mod zone;

pub use error::GeoError;
pub use floorplan::{Building, CampusMap, FloorId};
pub use grid::{Grid, GridCell};
pub use path::Polyline;
pub use point::Point;
pub use polygon::Polygon;
pub use segment::Segment;
pub use zone::{Zone, ZoneSet};
