//! Polylines: walking paths for the IMU simulator.

use crate::{GeoError, Point, Segment};

/// An open polyline through at least two points.
///
/// The IMU dataset generator walks a pedestrian along polylines and
/// synthesizes sensor readings from the local speed and heading; this type
/// supplies arc-length parameterization, resampling and headings.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Creates a polyline.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolyline`] with fewer than two points.
    pub fn new(points: Vec<Point>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::DegeneratePolyline {
                points: points.len(),
            });
        }
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let last = *cum.last().expect("cum starts non-empty");
            cum.push(last + w[0].distance(w[1]));
        }
        Ok(Polyline { points, cum })
    }

    /// The vertices.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum non-empty")
    }

    /// Start point.
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// End point.
    pub fn end(&self) -> Point {
        *self.points.last().expect("at least two points")
    }

    /// Point at arc length `s` (clamped to `[0, length]`).
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        let idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.points.len() {
            return self.end();
        }
        let seg = Segment::new(self.points[idx], self.points[idx + 1]);
        let seg_len = self.cum[idx + 1] - self.cum[idx];
        if seg_len < 1e-300 {
            return self.points[idx];
        }
        seg.point_at((s - self.cum[idx]) / seg_len)
    }

    /// Heading (radians, CCW from +x) of the segment containing arc length
    /// `s`.
    pub fn heading_at(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, self.length());
        let mut idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.points.len() {
            idx = self.points.len() - 2;
        }
        Segment::new(self.points[idx], self.points[idx + 1]).heading()
    }

    /// Resamples the polyline at `n >= 2` equally spaced arc lengths
    /// (including both endpoints).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolyline`] when `n < 2`.
    pub fn resample(&self, n: usize) -> Result<Vec<Point>, GeoError> {
        if n < 2 {
            return Err(GeoError::DegeneratePolyline { points: n });
        }
        let step = self.length() / (n - 1) as f64;
        Ok((0..n).map(|i| self.point_at(step * i as f64)).collect())
    }

    /// Sum of absolute turn angles at interior vertices (radians). Used by
    /// the map-assisted dead-reckoning baseline's turn detector.
    pub fn total_turn(&self) -> f64 {
        let mut total = 0.0;
        for w in self.points.windows(3) {
            let h1 = (w[1] - w[0]).heading();
            let h2 = (w[2] - w[1]).heading();
            let mut d = h2 - h1;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            total += d.abs();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn l_path() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_single_point() {
        assert!(Polyline::new(vec![Point::ORIGIN]).is_err());
    }

    #[test]
    fn length_and_endpoints() {
        let p = l_path();
        assert_eq!(p.length(), 20.0);
        assert_eq!(p.start(), Point::new(0.0, 0.0));
        assert_eq!(p.end(), Point::new(10.0, 10.0));
    }

    #[test]
    fn point_at_arc_lengths() {
        let p = l_path();
        assert_eq!(p.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at(15.0), Point::new(10.0, 5.0));
        // Clamping.
        assert_eq!(p.point_at(-3.0), p.start());
        assert_eq!(p.point_at(99.0), p.end());
    }

    #[test]
    fn heading_switches_at_corner() {
        let p = l_path();
        assert!((p.heading_at(5.0) - 0.0).abs() < 1e-12);
        assert!((p.heading_at(15.0) - FRAC_PI_2).abs() < 1e-12);
        // At the very end, heading of the final segment.
        assert!((p.heading_at(20.0) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn resample_even_spacing() {
        let p = l_path();
        let samples = p.resample(5).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], p.start());
        assert_eq!(samples[4], p.end());
        assert_eq!(samples[1], Point::new(5.0, 0.0));
        assert!(p.resample(1).is_err());
    }

    #[test]
    fn total_turn_of_l_shape() {
        let p = l_path();
        assert!((p.total_turn() - FRAC_PI_2).abs() < 1e-12);
        let straight = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap();
        assert_eq!(straight.total_turn(), 0.0);
    }

    #[test]
    fn degenerate_repeated_points() {
        let p = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.length(), 1.0);
        assert_eq!(p.point_at(0.5), Point::new(0.5, 0.0));
    }
}
