//! Buildings and campus maps: the structural prior the paper argues
//! localization systems should exploit.
//!
//! A [`Building`] is a footprint polygon with optional holes (courtyards —
//! the inaccessible interior visible in Fig. 1 of the paper) and a floor
//! count. A [`CampusMap`] is a set of buildings; it answers the two
//! questions the baselines and metrics ask:
//!
//! - *is this point on accessible space?* (structure-awareness metrics for
//!   Figs. 4 and 5), and
//! - *what is the nearest accessible point?* (the Deep Regression
//!   Projection baseline).

use crate::{GeoError, Point, Polygon};

/// Identifier of a floor within a building (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FloorId(pub usize);

impl std::fmt::Display for FloorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "floor {}", self.0)
    }
}

/// A building: footprint, courtyard holes, and number of floors.
#[derive(Debug, Clone, PartialEq)]
pub struct Building {
    footprint: Polygon,
    holes: Vec<Polygon>,
    floors: usize,
}

impl Building {
    /// Creates a building from a footprint and floor count (holes empty).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] when `floors == 0`.
    pub fn new(footprint: Polygon, floors: usize) -> Result<Self, GeoError> {
        if floors == 0 {
            return Err(GeoError::InvalidGrid(
                "building needs at least one floor".into(),
            ));
        }
        Ok(Building {
            footprint,
            holes: Vec::new(),
            floors,
        })
    }

    /// Creates an L-shaped building: a `width x depth` rectangle at
    /// `(x0, y0)` with its top-right `notch_w x notch_d` corner removed.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] for non-positive dimensions, a
    /// notch at least as large as the rectangle, or `floors == 0`.
    pub fn l_shaped(
        x0: f64,
        y0: f64,
        width: f64,
        depth: f64,
        notch_w: f64,
        notch_d: f64,
        floors: usize,
    ) -> Result<Self, GeoError> {
        if width <= 0.0 || depth <= 0.0 || notch_w <= 0.0 || notch_d <= 0.0 {
            return Err(GeoError::InvalidGrid(
                "L-shape dimensions must be positive".into(),
            ));
        }
        if notch_w >= width || notch_d >= depth {
            return Err(GeoError::InvalidGrid(format!(
                "notch {notch_w}x{notch_d} must be smaller than footprint {width}x{depth}"
            )));
        }
        let footprint = Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x0 + width, y0),
            Point::new(x0 + width, y0 + depth - notch_d),
            Point::new(x0 + width - notch_w, y0 + depth - notch_d),
            Point::new(x0 + width - notch_w, y0 + depth),
            Point::new(x0, y0 + depth),
        ])?;
        Building::new(footprint, floors)
    }

    /// Adds a courtyard hole (builder style).
    pub fn with_hole(mut self, hole: Polygon) -> Self {
        self.holes.push(hole);
        self
    }

    /// The outer footprint.
    pub fn footprint(&self) -> &Polygon {
        &self.footprint
    }

    /// The courtyard holes.
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// Number of floors.
    pub fn floors(&self) -> usize {
        self.floors
    }

    /// Whether `p` lies on accessible space: inside the footprint and not
    /// strictly inside any hole.
    pub fn contains_accessible(&self, p: Point) -> bool {
        if !self.footprint.contains(p) {
            return false;
        }
        !self.holes.iter().any(|h| {
            // A point exactly on the hole boundary is still accessible.
            h.contains(p) && h.boundary_distance(p) > 1e-9
        })
    }

    /// Nearest accessible point to `p` within this building.
    ///
    /// Points already accessible are returned unchanged; points in a
    /// courtyard snap to the courtyard boundary; points outside snap to the
    /// footprint boundary (then, if that landed in a hole, to the hole
    /// boundary).
    pub fn project_accessible(&self, p: Point) -> Point {
        if self.contains_accessible(p) {
            return p;
        }
        if self.footprint.contains(p) {
            // Inside footprint, so inside a hole: snap to nearest hole edge.
            let mut best = p;
            let mut best_d = f64::INFINITY;
            for h in &self.holes {
                if h.contains(p) {
                    let c = h.closest_boundary_point(p);
                    let d = c.squared_distance(p);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
            }
            return best;
        }
        let candidate = self.footprint.closest_boundary_point(p);
        if self.contains_accessible(candidate) {
            candidate
        } else {
            // The nearest footprint edge point sits on a hole boundary that
            // coincides with the footprint (degenerate plans); fall back to
            // the nearest hole edge.
            self.holes
                .iter()
                .map(|h| h.closest_boundary_point(candidate))
                .min_by(|a, b| {
                    a.squared_distance(candidate)
                        .partial_cmp(&b.squared_distance(candidate))
                        .unwrap()
                })
                .unwrap_or(candidate)
        }
    }

    /// Distance from `p` to the nearest accessible point (0 when
    /// accessible).
    pub fn accessible_distance(&self, p: Point) -> f64 {
        self.project_accessible(p).distance(p)
    }
}

/// A campus: several buildings sharing one coordinate frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusMap {
    buildings: Vec<Building>,
}

impl CampusMap {
    /// Creates a map from buildings.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyMap`] when `buildings` is empty.
    pub fn new(buildings: Vec<Building>) -> Result<Self, GeoError> {
        if buildings.is_empty() {
            return Err(GeoError::EmptyMap);
        }
        Ok(CampusMap { buildings })
    }

    /// The buildings.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Number of buildings.
    pub fn building_count(&self) -> usize {
        self.buildings.len()
    }

    /// Validates a `(building, floor)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::UnknownFloor`] when out of range.
    pub fn validate_floor(&self, building: usize, floor: FloorId) -> Result<(), GeoError> {
        match self.buildings.get(building) {
            Some(b) if floor.0 < b.floors() => Ok(()),
            _ => Err(GeoError::UnknownFloor {
                building,
                floor: floor.0,
            }),
        }
    }

    /// Index of the building whose accessible space contains `p`, if any.
    pub fn building_containing(&self, p: Point) -> Option<usize> {
        self.buildings.iter().position(|b| b.contains_accessible(p))
    }

    /// Whether `p` lies on any building's accessible space.
    pub fn is_accessible(&self, p: Point) -> bool {
        self.building_containing(p).is_some()
    }

    /// Nearest accessible point across all buildings (the paper's
    /// "project the prediction to the closest position on the map").
    pub fn project(&self, p: Point) -> Point {
        if self.is_accessible(p) {
            return p;
        }
        self.buildings
            .iter()
            .map(|b| b.project_accessible(p))
            .min_by(|a, b| {
                a.squared_distance(p)
                    .partial_cmp(&b.squared_distance(p))
                    .unwrap()
            })
            .expect("CampusMap::new guarantees at least one building")
    }

    /// Distance from `p` to accessible space (0 when accessible). This is
    /// the *off-map distance* metric used to quantify Figs. 4 and 5.
    pub fn off_map_distance(&self, p: Point) -> f64 {
        self.project(p).distance(p)
    }

    /// Overall bounding box across building footprints.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for b in &self.buildings {
            let (bmin, bmax) = b.footprint().bounding_box();
            min.x = min.x.min(bmin.x);
            min.y = min.y.min(bmin.y);
            max.x = max.x.max(bmax.x);
            max.y = max.y.max(bmax.y);
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring building: 20x20 footprint with a 10x10 central courtyard.
    fn ring_building() -> Building {
        Building::new(Polygon::rectangle(0.0, 0.0, 20.0, 20.0).unwrap(), 4)
            .unwrap()
            .with_hole(Polygon::rectangle(5.0, 5.0, 15.0, 15.0).unwrap())
    }

    #[test]
    fn building_rejects_zero_floors() {
        let fp = Polygon::rectangle(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(Building::new(fp, 0).is_err());
    }

    #[test]
    fn ring_accessibility() {
        let b = ring_building();
        assert!(b.contains_accessible(Point::new(2.0, 2.0))); // corridor
        assert!(!b.contains_accessible(Point::new(10.0, 10.0))); // courtyard
        assert!(!b.contains_accessible(Point::new(25.0, 5.0))); // outside
        assert!(b.contains_accessible(Point::new(5.0, 10.0))); // hole edge
    }

    #[test]
    fn project_from_courtyard_snaps_to_hole_edge() {
        let b = ring_building();
        let p = b.project_accessible(Point::new(10.0, 9.0));
        assert!(b.contains_accessible(p));
        assert!(
            (p.y - 5.0).abs() < 1e-9,
            "should hit the south hole edge, got {p}"
        );
    }

    #[test]
    fn project_from_outside_snaps_to_footprint() {
        let b = ring_building();
        let p = b.project_accessible(Point::new(10.0, 25.0));
        assert!(b.contains_accessible(p));
        assert!((p.y - 20.0).abs() < 1e-9);
        assert!((b.accessible_distance(Point::new(10.0, 25.0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn accessible_point_projects_to_itself() {
        let b = ring_building();
        let p = Point::new(2.0, 2.0);
        assert_eq!(b.project_accessible(p), p);
        assert_eq!(b.accessible_distance(p), 0.0);
    }

    fn two_building_campus() -> CampusMap {
        let b1 = ring_building();
        let b2 = Building::new(Polygon::rectangle(40.0, 0.0, 60.0, 20.0).unwrap(), 5).unwrap();
        CampusMap::new(vec![b1, b2]).unwrap()
    }

    #[test]
    fn map_rejects_empty() {
        assert!(matches!(CampusMap::new(vec![]), Err(GeoError::EmptyMap)));
    }

    #[test]
    fn building_lookup() {
        let m = two_building_campus();
        assert_eq!(m.building_containing(Point::new(2.0, 2.0)), Some(0));
        assert_eq!(m.building_containing(Point::new(50.0, 10.0)), Some(1));
        assert_eq!(m.building_containing(Point::new(30.0, 10.0)), None);
        assert_eq!(m.building_containing(Point::new(10.0, 10.0)), None); // courtyard
    }

    #[test]
    fn map_projection_picks_nearest_building() {
        let m = two_building_campus();
        // Point in the gap, slightly nearer building 2.
        let p = Point::new(35.0, 10.0);
        let proj = m.project(p);
        assert!(m.is_accessible(proj));
        assert!(
            (proj.x - 40.0).abs() < 1e-9,
            "nearest edge is building 2 at x=40, got {proj}"
        );
        assert!((m.off_map_distance(p) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn floor_validation() {
        let m = two_building_campus();
        assert!(m.validate_floor(0, FloorId(3)).is_ok());
        assert!(m.validate_floor(0, FloorId(4)).is_err());
        assert!(m.validate_floor(1, FloorId(4)).is_ok());
        assert!(m.validate_floor(2, FloorId(0)).is_err());
    }

    #[test]
    fn map_bounding_box_spans_buildings() {
        let m = two_building_campus();
        let (min, max) = m.bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(60.0, 20.0));
    }

    #[test]
    fn floor_id_display() {
        assert_eq!(FloorId(2).to_string(), "floor 2");
    }

    #[test]
    fn l_shaped_building_accessibility() {
        // 20x10 rectangle with the top-right 8x4 corner notched out.
        let b = Building::l_shaped(0.0, 0.0, 20.0, 10.0, 8.0, 4.0, 3).unwrap();
        assert_eq!(b.floors(), 3);
        assert!(b.contains_accessible(Point::new(2.0, 2.0))); // main body
        assert!(b.contains_accessible(Point::new(2.0, 9.0))); // left arm
        assert!(b.contains_accessible(Point::new(18.0, 2.0))); // bottom arm
        assert!(!b.contains_accessible(Point::new(18.0, 9.0))); // notch
                                                                // Area: full rect minus notch.
        assert!((b.footprint().area() - (200.0 - 32.0)).abs() < 1e-9);
    }

    #[test]
    fn l_shaped_validation() {
        assert!(Building::l_shaped(0.0, 0.0, 10.0, 10.0, 10.0, 2.0, 1).is_err());
        assert!(Building::l_shaped(0.0, 0.0, 10.0, 10.0, 2.0, 10.0, 1).is_err());
        assert!(Building::l_shaped(0.0, 0.0, -5.0, 10.0, 2.0, 2.0, 1).is_err());
        assert!(Building::l_shaped(0.0, 0.0, 10.0, 10.0, 2.0, 2.0, 0).is_err());
    }

    #[test]
    fn l_shaped_projection_respects_notch() {
        let b = Building::l_shaped(0.0, 0.0, 20.0, 10.0, 8.0, 4.0, 1).unwrap();
        // A point inside the notch projects onto a notch edge.
        let p = b.project_accessible(Point::new(16.0, 8.0));
        assert!(b.contains_accessible(p));
        assert!(p.distance(Point::new(16.0, 8.0)) < 5.0);
    }
}
