use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A polygon needs at least three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// A polyline needs at least two points.
    DegeneratePolyline {
        /// Number of points supplied.
        points: usize,
    },
    /// A grid parameter was invalid (non-positive cell size, inverted
    /// bounds, ...).
    InvalidGrid(String),
    /// A building/floor reference did not resolve.
    UnknownFloor {
        /// Building index queried.
        building: usize,
        /// Floor queried.
        floor: usize,
    },
    /// The map has no buildings.
    EmptyMap,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::DegeneratePolygon { vertices } => {
                write!(f, "polygon needs at least 3 vertices, got {vertices}")
            }
            GeoError::DegeneratePolyline { points } => {
                write!(f, "polyline needs at least 2 points, got {points}")
            }
            GeoError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            GeoError::UnknownFloor { building, floor } => {
                write!(f, "no floor {floor} in building {building}")
            }
            GeoError::EmptyMap => write!(f, "map contains no buildings"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GeoError::DegeneratePolygon { vertices: 2 }
            .to_string()
            .contains("3 vertices"));
        assert!(GeoError::EmptyMap.to_string().contains("no buildings"));
        assert!(GeoError::UnknownFloor {
            building: 1,
            floor: 9
        }
        .to_string()
        .contains("floor 9"));
    }
}
