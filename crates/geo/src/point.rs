use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A point (or free vector) in the 2-D localization plane, in meters.
///
/// The paper works in longitude/latitude converted to a local metric frame;
/// this type is that frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting coordinate in meters.
    pub x: f64,
    /// Northing coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.squared_distance(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn squared_distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when interpreted as a displacement.
    pub fn length(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Heading of this displacement in radians, measured counter-clockwise
    /// from the +x axis.
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the point about the origin by `angle` radians.
    pub fn rotated(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.squared_distance(b), 25.0);
        assert_eq!(b.length(), 5.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
        assert_eq!(east.dot(north), 0.0);
    }

    #[test]
    fn heading_and_rotation() {
        assert_eq!(Point::new(1.0, 0.0).heading(), 0.0);
        assert!((Point::new(0.0, 2.0).heading() - FRAC_PI_2).abs() < 1e-12);
        let r = Point::new(1.0, 0.0).rotated(PI);
        assert!((r.x + 1.0).abs() < 1e-12);
        assert!(r.y.abs() < 1e-12);
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
        assert_eq!(Point::default(), Point::ORIGIN);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Point::new(1.0, 2.0).to_string().is_empty());
    }
}
