use crate::{GeoError, Point, Segment};

/// A simple polygon defined by its vertex ring (implicitly closed).
///
/// Supports the two operations the suite needs everywhere: containment
/// (even-odd ray casting, robust to points left/right of edges) and
/// nearest-point projection onto the boundary — the primitive behind the
/// paper's *Deep Regression Projection* baseline, which snaps off-map
/// predictions back onto the map.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolygon`] with fewer than three
    /// vertices.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::DegeneratePolygon {
                vertices: vertices.len(),
            });
        }
        Ok(Polygon { vertices })
    }

    /// Axis-aligned rectangle from corner coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] when the corners are inverted or
    /// coincide.
    pub fn rectangle(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self, GeoError> {
        if x1 <= x0 || y1 <= y0 {
            return Err(GeoError::InvalidGrid(format!(
                "rectangle corners inverted: ({x0},{y0}) .. ({x1},{y1})"
            )));
        }
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterator over the boundary edges (closing edge included).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            sum += p.cross(q);
        }
        sum / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Vertex centroid (arithmetic mean of the vertices).
    pub fn vertex_centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let mut acc = Point::ORIGIN;
        for &v in &self.vertices {
            acc = acc + v;
        }
        acc * (1.0 / n)
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }

    /// Even-odd ray-casting containment test. Boundary points count as
    /// inside.
    pub fn contains(&self, p: Point) -> bool {
        // Boundary check first so edge/vertex points are deterministic.
        for e in self.edges() {
            if e.distance_to(p) < 1e-9 {
                return true;
            }
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_int = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_int {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Nearest point on the polygon *boundary* to `p`.
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        let mut best = self.vertices[0];
        let mut best_d = f64::INFINITY;
        for e in self.edges() {
            let c = e.closest_point(p);
            let d = c.squared_distance(p);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Distance from `p` to the polygon boundary.
    pub fn boundary_distance(&self, p: Point) -> f64 {
        self.closest_boundary_point(p).distance(p)
    }

    /// Projects `p` onto the polygon: points inside are returned unchanged,
    /// points outside are snapped to the nearest boundary point.
    pub fn project(&self, p: Point) -> Point {
        if self.contains(p) {
            p
        } else {
            self.closest_boundary_point(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(0.0, 0.0, 1.0, 1.0).unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_err());
        assert!(Polygon::rectangle(1.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn area_and_perimeter() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!((sq.perimeter() - 4.0).abs() < 1e-12);
        // Rectangle constructor winds counter-clockwise.
        assert!(sq.signed_area() > 0.0);
    }

    #[test]
    fn contains_interior_exterior_boundary() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(-0.1, -0.1)));
        assert!(sq.contains(Point::new(1.0, 0.5))); // edge
        assert!(sq.contains(Point::new(0.0, 0.0))); // vertex
    }

    #[test]
    fn contains_concave_polygon() {
        // L-shape: the notch at top-right must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5)));
        assert!((l.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn projection_snaps_outside_points() {
        let sq = unit_square();
        let p = sq.project(Point::new(2.0, 0.5));
        assert!((p.x - 1.0).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
        // Inside points unchanged.
        let q = Point::new(0.3, 0.7);
        assert_eq!(sq.project(q), q);
    }

    #[test]
    fn closest_boundary_point_from_inside() {
        let sq = unit_square();
        let c = sq.closest_boundary_point(Point::new(0.5, 0.1));
        assert!((c.y - 0.0).abs() < 1e-12);
        assert!((sq.boundary_distance(Point::new(0.5, 0.1)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_and_centroid() {
        let sq = unit_square();
        let (min, max) = sq.bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(1.0, 1.0));
        assert_eq!(sq.vertex_centroid(), Point::new(0.5, 0.5));
    }

    #[test]
    fn edges_close_the_ring() {
        let sq = unit_square();
        let edges: Vec<Segment> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, sq.vertices()[0]);
    }
}
