//! Uniform grid over a bounding box.
//!
//! The quantizer crate builds its neighborhood classes on top of this grid;
//! it is kept here because it is pure geometry.

use crate::{GeoError, Point};

/// A cell of a [`Grid`], addressed by integer column/row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCell {
    /// Column index (x direction).
    pub col: usize,
    /// Row index (y direction).
    pub row: usize,
}

/// A uniform square grid covering `[origin, origin + extent]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    origin: Point,
    cell_size: f64,
    cols: usize,
    rows: usize,
}

impl Grid {
    /// Creates a grid covering the box `(min, max)` with square cells of
    /// side `cell_size`. The grid is expanded to fully cover the box.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] for non-positive `cell_size`,
    /// non-finite bounds, or an inverted box.
    pub fn cover(min: Point, max: Point, cell_size: f64) -> Result<Self, GeoError> {
        if cell_size <= 0.0 || !cell_size.is_finite() {
            return Err(GeoError::InvalidGrid(format!(
                "cell size {cell_size} must be positive"
            )));
        }
        if !(min.x.is_finite() && min.y.is_finite() && max.x.is_finite() && max.y.is_finite()) {
            return Err(GeoError::InvalidGrid("non-finite bounds".into()));
        }
        if max.x < min.x || max.y < min.y {
            return Err(GeoError::InvalidGrid("inverted bounding box".into()));
        }
        let cols = (((max.x - min.x) / cell_size).ceil() as usize).max(1);
        let rows = (((max.y - min.y) / cell_size).ceil() as usize).max(1);
        Ok(Grid {
            origin: min,
            cell_size,
            cols,
            rows,
        })
    }

    /// Reassembles a grid from its raw fields (`origin`, `cell_size`,
    /// `cols`, `rows`) as read back from [`Grid::origin`] and friends —
    /// the deserialization path. Unlike [`Grid::cover`] no rounding is
    /// applied, so a round-trip reproduces the original grid exactly.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] for a non-positive or non-finite
    /// `cell_size`, a non-finite origin, or zero `cols`/`rows`.
    pub fn from_parts(
        origin: Point,
        cell_size: f64,
        cols: usize,
        rows: usize,
    ) -> Result<Self, GeoError> {
        if cell_size <= 0.0 || !cell_size.is_finite() {
            return Err(GeoError::InvalidGrid(format!(
                "cell size {cell_size} must be positive"
            )));
        }
        if !(origin.x.is_finite() && origin.y.is_finite()) {
            return Err(GeoError::InvalidGrid("non-finite origin".into()));
        }
        if cols == 0 || rows == 0 {
            return Err(GeoError::InvalidGrid(format!(
                "degenerate grid {cols}x{rows}"
            )));
        }
        // Deserialized dimensions are untrusted; a product that overflows
        // usize would make cell_count()/flat_index() panic downstream.
        if cols.checked_mul(rows).is_none() {
            return Err(GeoError::InvalidGrid(format!(
                "grid {cols}x{rows} overflows the cell index space"
            )));
        }
        Ok(Grid {
            origin,
            cell_size,
            cols,
            rows,
        })
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Grid origin (minimum corner).
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The cell containing `p`, or `None` if `p` is outside the grid.
    /// Points exactly on the max edge are assigned to the last cell.
    pub fn cell_of(&self, p: Point) -> Option<GridCell> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let col = fx as usize;
        let row = fy as usize;
        let col = if col == self.cols && fx <= self.cols as f64 {
            self.cols - 1
        } else {
            col
        };
        let row = if row == self.rows && fy <= self.rows as f64 {
            self.rows - 1
        } else {
            row
        };
        if col >= self.cols || row >= self.rows {
            return None;
        }
        Some(GridCell { col, row })
    }

    /// Center point of a cell.
    ///
    /// # Panics
    ///
    /// Panics when the cell is outside the grid.
    pub fn cell_center(&self, cell: GridCell) -> Point {
        assert!(
            cell.col < self.cols && cell.row < self.rows,
            "cell out of range"
        );
        Point::new(
            self.origin.x + (cell.col as f64 + 0.5) * self.cell_size,
            self.origin.y + (cell.row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Flat index of a cell (`row * cols + col`).
    ///
    /// # Panics
    ///
    /// Panics when the cell is outside the grid.
    pub fn flat_index(&self, cell: GridCell) -> usize {
        assert!(
            cell.col < self.cols && cell.row < self.rows,
            "cell out of range"
        );
        cell.row * self.cols + cell.col
    }

    /// Inverse of [`Grid::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()`.
    pub fn cell_from_flat(&self, index: usize) -> GridCell {
        assert!(index < self.cell_count(), "flat index out of range");
        GridCell {
            col: index % self.cols,
            row: index / self.cols,
        }
    }

    /// The up-to-8 neighbors of a cell (fewer on the grid border).
    pub fn neighbors(&self, cell: GridCell) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let nr = cell.row as i64 + dr;
                let nc = cell.col as i64 + dc;
                if nr >= 0 && nc >= 0 && (nr as usize) < self.rows && (nc as usize) < self.cols {
                    out.push(GridCell {
                        col: nc as usize,
                        row: nr as usize,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid10() -> Grid {
        Grid::cover(Point::new(0.0, 0.0), Point::new(10.0, 5.0), 1.0).unwrap()
    }

    #[test]
    fn cover_dimensions() {
        let g = grid10();
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.cell_count(), 50);
        // Non-divisible extent rounds up.
        let g2 = Grid::cover(Point::new(0.0, 0.0), Point::new(3.5, 1.2), 1.0).unwrap();
        assert_eq!(g2.cols(), 4);
        assert_eq!(g2.rows(), 2);
    }

    #[test]
    fn cover_validation() {
        let o = Point::new(0.0, 0.0);
        assert!(Grid::cover(o, Point::new(1.0, 1.0), 0.0).is_err());
        assert!(Grid::cover(o, Point::new(1.0, 1.0), -1.0).is_err());
        assert!(Grid::cover(o, Point::new(-1.0, 1.0), 1.0).is_err());
        assert!(Grid::cover(o, Point::new(f64::NAN, 1.0), 1.0).is_err());
        // Degenerate box still yields one cell.
        let g = Grid::cover(o, o, 1.0).unwrap();
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn cell_of_interior_and_boundary() {
        let g = grid10();
        assert_eq!(
            g.cell_of(Point::new(0.5, 0.5)),
            Some(GridCell { col: 0, row: 0 })
        );
        assert_eq!(
            g.cell_of(Point::new(9.99, 4.99)),
            Some(GridCell { col: 9, row: 4 })
        );
        // Max edge maps into the last cell rather than falling out.
        assert_eq!(
            g.cell_of(Point::new(10.0, 5.0)),
            Some(GridCell { col: 9, row: 4 })
        );
        assert_eq!(g.cell_of(Point::new(-0.1, 1.0)), None);
        assert_eq!(g.cell_of(Point::new(11.0, 1.0)), None);
    }

    #[test]
    fn centers_round_trip() {
        let g = grid10();
        for idx in 0..g.cell_count() {
            let cell = g.cell_from_flat(idx);
            assert_eq!(g.flat_index(cell), idx);
            let center = g.cell_center(cell);
            assert_eq!(g.cell_of(center), Some(cell));
        }
    }

    #[test]
    fn neighbors_counts() {
        let g = grid10();
        assert_eq!(g.neighbors(GridCell { col: 0, row: 0 }).len(), 3);
        assert_eq!(g.neighbors(GridCell { col: 5, row: 0 }).len(), 5);
        assert_eq!(g.neighbors(GridCell { col: 5, row: 2 }).len(), 8);
        assert_eq!(g.neighbors(GridCell { col: 9, row: 4 }).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_center_bounds_checked() {
        grid10().cell_center(GridCell { col: 10, row: 0 });
    }
}
