//! Named zones: the semantic regions tracking sessions report on.
//!
//! A fix answers *where* a device is; the tracking layer's room/zone
//! events answer *what that place means* — "entered building 2",
//! "left lab 3". A [`Zone`] is a labeled polygon; a [`ZoneSet`] is an
//! ordered collection answering the one query event detection needs:
//! which zone (if any) contains this point. Lookup is deterministic —
//! zones are tested in insertion order and the first containing zone
//! wins — so a point on a shared boundary always resolves the same way,
//! which the serving layer's bit-reproducibility contract relies on.

use crate::{CampusMap, GeoError, Point, Polygon};

/// A labeled region of the map (a room, a lab, a whole building).
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    label: String,
    polygon: Polygon,
}

impl Zone {
    /// Creates a zone from a label and its footprint polygon.
    pub fn new(label: impl Into<String>, polygon: Polygon) -> Self {
        Zone {
            label: label.into(),
            polygon,
        }
    }

    /// The zone's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The zone's footprint.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// Whether `p` lies in this zone (boundary points count as inside).
    pub fn contains(&self, p: Point) -> bool {
        self.polygon.contains(p)
    }
}

/// An ordered set of zones with first-match point lookup.
///
/// # Example
///
/// ```
/// use noble_geo::{Point, Polygon, Zone, ZoneSet};
///
/// let zones = ZoneSet::new(vec![
///     Zone::new("west", Polygon::rectangle(0.0, 0.0, 5.0, 10.0).unwrap()),
///     Zone::new("east", Polygon::rectangle(5.0, 0.0, 10.0, 10.0).unwrap()),
/// ]);
/// assert_eq!(zones.locate(Point::new(2.0, 2.0)), Some(0));
/// assert_eq!(zones.locate(Point::new(7.0, 2.0)), Some(1));
/// assert_eq!(zones.locate(Point::new(20.0, 2.0)), None);
/// // Shared boundary: the earlier zone wins, deterministically.
/// assert_eq!(zones.locate(Point::new(5.0, 2.0)), Some(0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneSet {
    zones: Vec<Zone>,
}

impl ZoneSet {
    /// Creates a zone set; an empty set is valid (no fix is ever in a
    /// zone, so no events fire).
    pub fn new(zones: Vec<Zone>) -> Self {
        ZoneSet { zones }
    }

    /// One zone per building footprint of `map`, labeled `b<i>`.
    /// Courtyard holes are *included* (the zone is the footprint, not
    /// the accessible space) — zone semantics are "within this
    /// building's extent", not "standing on walkable floor".
    pub fn from_buildings(map: &CampusMap) -> Self {
        let zones = map
            .buildings()
            .iter()
            .enumerate()
            .map(|(i, b)| Zone::new(format!("b{i}"), b.footprint().clone()))
            .collect();
        ZoneSet { zones }
    }

    /// Subdivides each building's bounding box into a `cols x rows`
    /// grid of rectangular zones labeled `b<i>/z<r>,<c>` — the quick
    /// way to get room-sized zones out of a footprint-only map.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGrid`] when `cols` or `rows` is zero.
    pub fn building_grid(map: &CampusMap, cols: usize, rows: usize) -> Result<Self, GeoError> {
        if cols == 0 || rows == 0 {
            return Err(GeoError::InvalidGrid(
                "zone grid needs at least one column and one row".into(),
            ));
        }
        let mut zones = Vec::with_capacity(map.building_count() * cols * rows);
        for (i, building) in map.buildings().iter().enumerate() {
            let (min, max) = building.footprint().bounding_box();
            let dx = (max.x - min.x) / cols as f64;
            let dy = (max.y - min.y) / rows as f64;
            for r in 0..rows {
                for c in 0..cols {
                    let x0 = min.x + c as f64 * dx;
                    let y0 = min.y + r as f64 * dy;
                    zones.push(Zone::new(
                        format!("b{i}/z{r},{c}"),
                        Polygon::rectangle(x0, y0, x0 + dx, y0 + dy)?,
                    ));
                }
            }
        }
        Ok(ZoneSet { zones })
    }

    /// The zones, in lookup order.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether the set holds no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// The zone at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Zone> {
        self.zones.get(index)
    }

    /// Index of the first zone containing `p`, scanning in insertion
    /// order (deterministic under overlap and on shared boundaries).
    pub fn locate(&self, p: Point) -> Option<usize> {
        self.zones.iter().position(|z| z.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Building;

    fn two_room_set() -> ZoneSet {
        ZoneSet::new(vec![
            Zone::new("west", Polygon::rectangle(0.0, 0.0, 5.0, 10.0).unwrap()),
            Zone::new("east", Polygon::rectangle(5.0, 0.0, 10.0, 10.0).unwrap()),
        ])
    }

    #[test]
    fn locate_is_first_match_in_order() {
        let zones = two_room_set();
        assert_eq!(zones.locate(Point::new(1.0, 1.0)), Some(0));
        assert_eq!(zones.locate(Point::new(9.0, 1.0)), Some(1));
        assert_eq!(zones.locate(Point::new(-1.0, 1.0)), None);
        // The shared x = 5 boundary belongs to the earlier zone.
        assert_eq!(zones.locate(Point::new(5.0, 5.0)), Some(0));
        assert_eq!(zones.get(0).unwrap().label(), "west");
    }

    #[test]
    fn empty_set_locates_nothing() {
        let zones = ZoneSet::default();
        assert!(zones.is_empty());
        assert_eq!(zones.locate(Point::ORIGIN), None);
    }

    fn campus() -> CampusMap {
        CampusMap::new(vec![
            Building::new(Polygon::rectangle(0.0, 0.0, 20.0, 10.0).unwrap(), 2).unwrap(),
            Building::new(Polygon::rectangle(30.0, 0.0, 50.0, 10.0).unwrap(), 3).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn from_buildings_covers_each_footprint() {
        let zones = ZoneSet::from_buildings(&campus());
        assert_eq!(zones.len(), 2);
        assert_eq!(zones.locate(Point::new(5.0, 5.0)), Some(0));
        assert_eq!(zones.locate(Point::new(40.0, 5.0)), Some(1));
        assert_eq!(zones.locate(Point::new(25.0, 5.0)), None);
        assert_eq!(zones.get(1).unwrap().label(), "b1");
    }

    #[test]
    fn building_grid_tiles_each_building() {
        let zones = ZoneSet::building_grid(&campus(), 2, 1).unwrap();
        assert_eq!(zones.len(), 4);
        // Building 0 splits at x = 10; building 1 at x = 40.
        assert_eq!(zones.locate(Point::new(2.0, 5.0)), Some(0));
        assert_eq!(zones.locate(Point::new(18.0, 5.0)), Some(1));
        assert_eq!(zones.locate(Point::new(32.0, 5.0)), Some(2));
        assert_eq!(zones.locate(Point::new(48.0, 5.0)), Some(3));
        assert_eq!(zones.get(3).unwrap().label(), "b1/z0,1");
        assert!(ZoneSet::building_grid(&campus(), 0, 1).is_err());
    }
}
