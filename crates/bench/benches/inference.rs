//! Inference latency micro-benchmarks: the measured side of the paper's
//! §IV-C latency claim (2 ms on a TX2 — here, host CPU).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_datasets::{uji_campaign, UjiConfig};

fn bench_inference(c: &mut Criterion) {
    let campaign = uji_campaign(&UjiConfig::small()).expect("campaign");
    let mut cfg = WifiNobleConfig::small();
    cfg.epochs = 5;
    let model = WifiNoble::train(&campaign, &cfg).expect("train");
    let features = campaign.features(&campaign.test);
    let single = features.select_rows(&[0]);

    let mut group = c.benchmark_group("wifi_inference");
    group.bench_function("single_fingerprint", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| m.predict(&single).expect("predict"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("batch_64", |b| {
        let batch = features.select_rows(&(0..64.min(features.rows())).collect::<Vec<_>>());
        b.iter_batched(
            || model.clone(),
            |mut m| m.predict(&batch).expect("predict"),
            BatchSize::SmallInput,
        )
    });
    let rows: Vec<Vec<f64>> = (0..256)
        .map(|i| features.row(i % features.rows()).to_vec())
        .collect();
    group.bench_function("localize_batch_256_serial", |b| {
        noble_linalg::set_num_threads(1);
        b.iter_batched(
            || model.clone(),
            |mut m| m.localize_batch(&rows).expect("localize_batch"),
            BatchSize::SmallInput,
        );
        noble_linalg::set_num_threads(0);
    });
    group.bench_function("localize_batch_256_threaded", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| m.localize_batch(&rows).expect("localize_batch"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
