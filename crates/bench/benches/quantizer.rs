//! Quantizer throughput: fit, quantize and decode rates.

use criterion::{criterion_group, criterion_main, Criterion};
use noble_geo::Point;
use noble_quantize::{DecodePolicy, GridQuantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..400.0), rng.gen_range(0.0..280.0)))
        .collect()
}

fn bench_quantizer(c: &mut Criterion) {
    let points = random_points(8000, 11);
    let q = GridQuantizer::fit(&points, 1.0, DecodePolicy::SampleMean).expect("fit");
    let probes = random_points(256, 13);

    let mut group = c.benchmark_group("quantizer");
    group.bench_function("fit_8000_points", |b| {
        b.iter(|| GridQuantizer::fit(&points, 1.0, DecodePolicy::SampleMean).expect("fit"))
    });
    group.bench_function("quantize_nearest_256", |b| {
        b.iter(|| probes.iter().map(|&p| q.quantize_nearest(p)).sum::<usize>())
    });
    group.bench_function("decode_all_classes", |b| {
        b.iter(|| {
            (0..q.num_classes())
                .map(|cl| q.decode(cl).expect("decode").x)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quantizer);
criterion_main!(benches);
