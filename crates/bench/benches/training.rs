//! Training-epoch throughput of the NObLe WiFi network.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use noble_datasets::{uji_campaign, UjiConfig};
use noble_linalg::Matrix;
use noble_nn::{
    one_hot, Activation, Mlp, Optimizer, SoftmaxCrossEntropyLoss, TrainConfig, Trainer,
};

fn bench_training(c: &mut Criterion) {
    let campaign = uji_campaign(&UjiConfig::small()).expect("campaign");
    let x = campaign.features(&campaign.train);
    // A simple floor-classification target keeps the benchmark focused on
    // the network kernels rather than quantizer construction.
    let labels: Vec<usize> = campaign.train.iter().map(|s| s.floor).collect();
    let num_classes = labels.iter().max().unwrap_or(&0) + 1;
    let y: Matrix = one_hot(&labels, num_classes);

    let build = || {
        Mlp::builder(x.cols(), 7)
            .dense(64)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(64)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(num_classes)
            .build()
    };

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("one_epoch", |b| {
        b.iter_batched(
            build,
            |mut mlp| {
                let cfg = TrainConfig {
                    epochs: 1,
                    batch_size: 64,
                    optimizer: Optimizer::adam(1e-3),
                    ..TrainConfig::default()
                };
                Trainer::new(cfg)
                    .fit(&mut mlp, &x, &y, &SoftmaxCrossEntropyLoss, None)
                    .expect("fit")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
