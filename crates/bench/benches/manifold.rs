//! Manifold-learning micro-benchmarks: kNN search, kd-tree, Isomap fit.

use criterion::{criterion_group, criterion_main, Criterion};
use noble_linalg::Matrix;
use noble_manifold::{knn_brute, Isomap, KdTree, Lle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_manifold(c: &mut Criterion) {
    let data = random_data(400, 16, 3);
    let query: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();

    let mut group = c.benchmark_group("manifold");
    group.sample_size(20);

    group.bench_function("knn_brute_400", |b| b.iter(|| knn_brute(&data, &query, 10)));

    let tree = KdTree::build(&data);
    group.bench_function("kdtree_query_400", |b| b.iter(|| tree.knn(&query, 10)));
    group.bench_function("kdtree_build_400", |b| b.iter(|| KdTree::build(&data)));

    let small = random_data(120, 8, 5);
    group.bench_function("isomap_fit_120", |b| {
        b.iter(|| Isomap::fit(&small, 6, 4, 1).expect("isomap"))
    });
    group.bench_function("lle_fit_120", |b| {
        b.iter(|| Lle::fit(&small, 6, 4, 1e-3, 1).expect("lle"))
    });
    group.finish();
}

criterion_group!(benches, bench_manifold);
criterion_main!(benches);
