//! Linear-algebra kernel benchmarks: the substrate everything else sits on.

use criterion::{criterion_group, criterion_main, Criterion};
use noble_linalg::{cholesky, jacobi_eigen, lu_decompose, top_eigenpairs, EigenSort, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
}

fn random_spd(n: usize, seed: u64) -> Matrix {
    let a = random_matrix(n, seed);
    a.transpose()
        .matmul(&a)
        .expect("square")
        .add(&Matrix::identity(n).scale(n as f64))
        .expect("same shape")
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    let a = random_matrix(128, 1);
    let b = random_matrix(128, 2);
    group.bench_function("matmul_128", |bch| {
        bch.iter(|| a.matmul(&b).expect("shapes"))
    });

    let spd = random_spd(64, 3);
    group.bench_function("cholesky_64", |bch| {
        bch.iter(|| cholesky(&spd).expect("spd"))
    });
    group.bench_function("lu_64", |bch| {
        bch.iter(|| lu_decompose(&spd).expect("nonsingular"))
    });

    let sym = {
        let m = random_matrix(48, 5);
        m.add(&m.transpose()).expect("same shape").scale(0.5)
    };
    group.sample_size(20);
    group.bench_function("jacobi_eigen_48", |bch| {
        bch.iter(|| jacobi_eigen(&sym, EigenSort::Descending).expect("symmetric"))
    });
    group.bench_function("top4_eigenpairs_64", |bch| {
        bch.iter(|| top_eigenpairs(&random_spd(64, 7), 4, 11).expect("converges"))
    });
    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
