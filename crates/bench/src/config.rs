//! Experiment scaling: paper-scaled `Full` runs vs CI-friendly `Quick`
//! runs.

use noble::imu::baselines::ImuRegressionConfig;
use noble::imu::ImuNobleConfig;
use noble::wifi::baselines::{ManifoldKind, ManifoldRegressionConfig, RegressionConfig};
use noble::wifi::WifiNobleConfig;
use noble_datasets::{CampusConfig, ImuConfig, UjiConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scaled synthetic campaigns (minutes per experiment).
    Full,
    /// Shrunk datasets and epochs (seconds per experiment).
    Quick,
}

impl Scale {
    /// Reads the scale from the `NOBLE_QUICK` environment variable
    /// (any non-empty value other than `0` selects [`Scale::Quick`]).
    pub fn from_env() -> Self {
        match std::env::var("NOBLE_QUICK") {
            Ok(v) if !v.is_empty() && v != "0" => Scale::Quick,
            _ => Scale::Full,
        }
    }
}

/// UJI-like campaign configuration at the given scale.
pub fn uji_config(scale: Scale) -> UjiConfig {
    match scale {
        Scale::Full => UjiConfig::default(),
        Scale::Quick => UjiConfig {
            references_per_floor: 25,
            samples_per_reference: 4,
            test_samples_per_floor: 30,
            waps_per_building_floor: 6,
            campus: CampusConfig {
                floors: 2,
                ..CampusConfig::default()
            },
            ..UjiConfig::default()
        },
    }
}

/// IPIN-like single-building configuration at the given scale.
pub fn ipin_config(scale: Scale) -> UjiConfig {
    let mut cfg = uji_config(scale);
    cfg.campus = CampusConfig {
        building_width_m: 45.0,
        building_depth_m: 30.0,
        ring_thickness_m: 9.0,
        gap_m: 0.0,
        floors: if scale == Scale::Full { 3 } else { 2 },
    };
    cfg.waps_per_building_floor = match scale {
        Scale::Full => 24,
        Scale::Quick => 8,
    };
    cfg.references_per_floor = match scale {
        Scale::Full => 90,
        Scale::Quick => 25,
    };
    cfg.seed ^= 0x1919;
    cfg
}

/// IMU dataset configuration at the given scale.
pub fn imu_config(scale: Scale) -> ImuConfig {
    match scale {
        Scale::Full => ImuConfig::default(),
        Scale::Quick => ImuConfig {
            num_reference_points: 40,
            num_paths: 500,
            max_path_segments: 6,
            ..ImuConfig::default()
        },
    }
}

/// NObLe WiFi model configuration at the given scale.
pub fn wifi_noble_config(scale: Scale) -> WifiNobleConfig {
    match scale {
        Scale::Full => WifiNobleConfig {
            tau: 1.0,
            coarse_l: Some(8.0),
            epochs: 60,
            patience: None,
            ..WifiNobleConfig::default()
        },
        Scale::Quick => WifiNobleConfig {
            tau: 3.0,
            coarse_l: Some(12.0),
            hidden_dim: 128,
            epochs: 40,
            learning_rate: 1e-3,
            patience: None,
            ..WifiNobleConfig::default()
        },
    }
}

/// Regression baseline configuration at the given scale.
pub fn regression_config(scale: Scale) -> RegressionConfig {
    match scale {
        Scale::Full => RegressionConfig {
            epochs: 60,
            ..RegressionConfig::default()
        },
        Scale::Quick => RegressionConfig::small(),
    }
}

/// Manifold baseline configuration at the given scale.
pub fn manifold_config(scale: Scale, kind: ManifoldKind) -> ManifoldRegressionConfig {
    match scale {
        Scale::Full => ManifoldRegressionConfig {
            kind,
            embedding_dim: 32,
            k: 10,
            landmarks: 350,
            regression: regression_config(scale),
        },
        Scale::Quick => ManifoldRegressionConfig::small(kind),
    }
}

/// NObLe IMU model configuration at the given scale.
pub fn imu_noble_config(scale: Scale) -> ImuNobleConfig {
    match scale {
        Scale::Full => ImuNobleConfig {
            tau: 0.4,
            epochs: 120,
            ..ImuNobleConfig::default()
        },
        Scale::Quick => ImuNobleConfig {
            tau: 2.0,
            epochs: 80,
            hidden_dim: 128,
            displacement_loss_weight: 4.0,
            learning_rate: 1e-3,
            ..ImuNobleConfig::default()
        },
    }
}

/// IMU regression baseline configuration at the given scale.
pub fn imu_regression_config(scale: Scale) -> ImuRegressionConfig {
    match scale {
        Scale::Full => ImuRegressionConfig {
            epochs: 35,
            ..ImuRegressionConfig::default()
        },
        Scale::Quick => ImuRegressionConfig::small(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let full = uji_config(Scale::Full);
        let quick = uji_config(Scale::Quick);
        assert!(quick.references_per_floor < full.references_per_floor);
        assert!(quick.campus.floors < full.campus.floors);
        assert!(imu_config(Scale::Quick).num_paths < imu_config(Scale::Full).num_paths);
        assert!(wifi_noble_config(Scale::Quick).epochs < wifi_noble_config(Scale::Full).epochs);
    }

    #[test]
    fn ipin_is_single_scale_site() {
        let cfg = ipin_config(Scale::Quick);
        assert!(cfg.campus.building_width_m < 60.0);
        // Different seed from the UJI campaign.
        assert_ne!(cfg.seed, uji_config(Scale::Quick).seed);
    }

    #[test]
    fn scale_from_env_default_full() {
        // The test environment does not set NOBLE_QUICK globally; accept
        // either outcome but exercise the parser.
        let _ = Scale::from_env();
        std::env::set_var("NOBLE_QUICK", "1");
        assert_eq!(Scale::from_env(), Scale::Quick);
        std::env::set_var("NOBLE_QUICK", "0");
        assert_eq!(Scale::from_env(), Scale::Full);
        std::env::remove_var("NOBLE_QUICK");
    }
}
