//! Benchmark harness for the NObLe reproduction.
//!
//! One runner per table/figure of the paper (see DESIGN.md §5 for the
//! experiment index):
//!
//! | runner | paper artifact |
//! |---|---|
//! | [`runners::table1`] | Table I — NObLe on the UJI-like campaign |
//! | [`runners::table2`] | Table II — comparative baselines |
//! | [`runners::ipin`] | §IV-B — IPIN-like single building |
//! | [`runners::table3`] | Table III — IMU tracking |
//! | [`runners::fig1`] | Fig. 1 — ground-truth structure dump |
//! | [`runners::fig4`] | Fig. 4 — prediction scatter + structure metrics |
//! | [`runners::fig5`] | Fig. 5 — IMU scatter + structure metrics |
//! | [`runners::energy`] | §IV-C and §V-D — energy measurements |
//! | [`runners::ablation`] | DESIGN.md §6 — τ sweep, labels, aux heads |
//! | [`runners::throughput`] | serving throughput — single vs batched vs threaded fixes/sec |
//! | [`runners::serving`] | sharded serving — micro-batching pipeline over 1/2/4 shards |
//! | [`runners::model_store`] | model lifecycle — cold-train vs hydrate vs resident-hit, eviction thrash |
//! | [`runners::tracking`] | tracking sessions — concurrent per-device session capacity and zone-event latency |
//! | [`runners::net`] | network edge — open-loop overload sweep, goodput/shed curves, fairness (SLO-gated) |
//!
//! Each runner honors [`Scale`]: `Scale::Quick` (set `NOBLE_QUICK=1`)
//! shrinks datasets and epochs so the whole suite runs in seconds; the
//! default `Scale::Full` uses the paper-scaled synthetic campaigns.
//! Artifact CSVs are written under `results/`.

pub mod config;
pub mod runners;

pub use config::Scale;

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes an artifact file under `results/`, creating the directory.
///
/// Returns the path written.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_artifact(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip() {
        let p = write_artifact("test_artifact.csv", "a,b\n1,2\n").unwrap();
        let read = std::fs::read_to_string(&p).unwrap();
        assert!(read.contains("1,2"));
        std::fs::remove_file(p).ok();
    }
}
