//! Fig. 1: ground-truth structure of the campaign.
//!
//! The paper's left panel is an aerial photo; the right panel plots the
//! offline collection coordinates, which trace the three building rings
//! and leave the courtyards empty. This runner dumps the ground-truth
//! coordinates as CSV, renders an ASCII scatter, and checks courtyard
//! occupancy is exactly zero.

use crate::config::uji_config;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble_datasets::uji_campaign;
use noble_geo::Point;

/// Renders a point cloud onto a `width x height` character canvas.
pub fn ascii_scatter(points: &[Point], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::new();
    }
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let mut canvas = vec![vec![b' '; width]; height];
    for p in points {
        let cx = (((p.x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let cy = (((p.y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        // Flip y so north is up.
        canvas[height - 1 - cy][cx] = b'*';
    }
    canvas
        .into_iter()
        .map(|row| String::from_utf8(row).expect("ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats points as a `x,y` CSV with a header.
pub fn csv_points(header: &str, points: &[Point]) -> String {
    let mut s = String::from(header);
    s.push('\n');
    for p in points {
        s.push_str(&format!("{:.3},{:.3}\n", p.x, p.y));
    }
    s
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates dataset and I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let points: Vec<Point> = campaign.train.iter().map(|s| s.position).collect();

    let csv = csv_points("x,y", &points);
    let path = write_artifact("fig1_ground_truth.csv", &csv)?;

    // Courtyard occupancy: count samples strictly inside any hole.
    let mut courtyard = 0usize;
    for p in &points {
        for b in campaign.map.buildings() {
            if b.footprint().contains(*p) && !b.contains_accessible(*p) {
                courtyard += 1;
            }
        }
    }

    let mut out = String::new();
    out.push_str("FIG 1: ground-truth collection coordinates (offline phase)\n");
    out.push_str(&format!(
        "samples={} buildings={} | courtyard occupancy={} (must be 0)\n",
        points.len(),
        campaign.map.building_count(),
        courtyard
    ));
    out.push_str(&format!("csv: {}\n\n", path.display()));
    out.push_str(&ascii_scatter(&points, 96, 28));
    out.push('\n');
    if courtyard != 0 {
        return Err(format!("{courtyard} samples inside courtyards").into());
    }
    println!("{out}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_marks_extremes() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 5.0)];
        let s = ascii_scatter(&pts, 20, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        // Bottom-left and top-right are marked.
        assert_eq!(lines[9].as_bytes()[0], b'*');
        assert_eq!(lines[0].as_bytes()[19], b'*');
    }

    #[test]
    fn scatter_empty_is_empty() {
        assert!(ascii_scatter(&[], 10, 10).is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = csv_points("x,y", &[Point::new(1.0, 2.0)]);
        assert!(s.starts_with("x,y\n"));
        assert!(s.contains("1.000,2.000"));
    }
}
