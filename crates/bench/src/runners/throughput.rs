//! Serving-scale inference throughput: single-sample vs. batched vs.
//! batched + multi-threaded WiFi fixes per second.
//!
//! NObLe's pitch is that classification-style localization is cheap
//! enough for high-rate, many-user serving; this runner measures how far
//! the inference engine is from that. Three modes are compared across
//! batch sizes and thread counts:
//!
//! - **single** — one [`noble::wifi::WifiNoble::localize_one`] call per
//!   fix (the naive serving loop),
//! - **batched** — one [`noble::wifi::WifiNoble::localize_batch`] call
//!   over the whole batch, pinned to one worker thread,
//! - **batched_threaded** — the same batched call with the blocked matmul
//!   kernel fanning out over scoped threads.
//!
//! Each batched mode additionally runs at every precision tier: `exact`
//! (the f64 model), `f32`, and `int8` (lowered twins built once via
//! [`noble::Localizer::try_lower`], off the timed path, exactly as the
//! serving layer does). Before any timing, the lowered twins pass an
//! **accuracy gate** against the exact outputs — f32 within 1e-4
//! position error, int8 within its calibrated decode bound — and the
//! runner errors out if a gate fails, so the `NOBLE_QUICK=1` CI smoke
//! enforces it on every push.
//!
//! Results go to stdout as a table and to
//! `results/BENCH_throughput.json` for the perf trajectory. In
//! [`Scale::Quick`] (smoke) mode the sweep shrinks to two batch sizes and
//! at most two thread counts so CI can exercise the parallel path in
//! seconds.

use crate::config::uji_config;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::report::TextTable;
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::{InferencePrecision, Localizer};
use noble_datasets::uji_campaign;
use noble_geo::Point;
use noble_linalg::{num_threads, set_num_threads};
use std::time::Instant;

/// One throughput measurement.
#[derive(Debug, Clone)]
struct Measurement {
    mode: &'static str,
    precision: &'static str,
    batch: usize,
    threads: usize,
    fixes_per_sec: f64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "    {{\"mode\": \"{}\", \"precision\": \"{}\", \"batch\": {}, \"threads\": {}, \"fixes_per_sec\": {:.1}, \"us_per_fix\": {:.3}}}",
            self.mode,
            self.precision,
            self.batch,
            self.threads,
            self.fixes_per_sec,
            1e6 / self.fixes_per_sec.max(f64::MIN_POSITIVE)
        )
    }
}

fn max_delta(a: &[Point], b: &[Point]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.distance(*y))
        .fold(0.0, f64::max)
}

fn mean_delta(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| x.distance(*y)).sum::<f64>() / a.len() as f64
}

fn match_fraction(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let hits = a.iter().zip(b).filter(|(x, y)| x == y).count();
    hits as f64 / a.len() as f64
}

/// Times `f` over `reps` repetitions of `fixes` fixes each and returns
/// the best observed fixes/second (best-of filters scheduler noise).
fn best_rate(fixes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(fixes as f64 / elapsed);
    }
    best
}

/// Runs the sweep and writes `results/BENCH_throughput.json`.
///
/// # Errors
///
/// Propagates dataset, training and artifact-I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    // Model quality is irrelevant here, but matrix shape is the whole
    // story: Full keeps the paper-scaled campaign (192 WAPs, the full
    // class grid) so per-fix compute is serving-representative, while
    // Quick shrinks the campaign for CI. Both keep the paper's hidden
    // width.
    let campaign = uji_campaign(&uji_config(scale))?;
    let cfg = WifiNobleConfig {
        hidden_dim: 128,
        epochs: if scale == Scale::Quick { 2 } else { 5 },
        patience: None,
        ..WifiNobleConfig::small()
    };
    let mut model = WifiNoble::train(&campaign, &cfg)?;

    // Lower the reduced-precision twins once, off the timed path — the
    // same lifecycle the serving layer uses (lower at hydrate/train
    // time, serve from the immutable twin).
    let mut f32_twin = Localizer::try_lower(&model, InferencePrecision::F32)
        .ok_or("WifiNoble failed to lower to f32")?;
    let mut i8_twin = Localizer::try_lower(&model, InferencePrecision::Int8)
        .ok_or("WifiNoble failed to lower to int8")?;

    // Accuracy gate: the speedup numbers below are meaningless if the
    // fast tiers decode to different positions, so refuse to report
    // them. Runs at Quick scale too — this is the CI smoke's teeth.
    let probe = campaign.features(&campaign.test);
    let exact_fixes = Localizer::localize_batch(&mut model, &probe)?;
    let f32_fixes = f32_twin.localize_batch(&probe)?;
    let f32_delta = max_delta(&f32_fixes, &exact_fixes);
    if f32_delta > 1e-4 {
        return Err(
            format!("f32 accuracy gate failed: max position delta {f32_delta} > 1e-4").into(),
        );
    }
    let i8_fixes = i8_twin.localize_batch(&probe)?;
    let i8_matches = match_fraction(&i8_fixes, &exact_fixes);
    let i8_mean = mean_delta(&i8_fixes, &exact_fixes);
    if i8_matches < 0.9 || i8_mean > 0.5 {
        return Err(format!(
            "int8 accuracy gate failed: match fraction {i8_matches:.3} (need >= 0.9), \
             mean position delta {i8_mean:.3} m (need <= 0.5)"
        )
        .into());
    }

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (batch_sizes, reps): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![32, 256], 2),
        Scale::Full => (vec![1, 32, 256, 1024], 5),
    };
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < available {
        thread_counts.push(t);
        t *= 2;
    }
    if available > 1 {
        thread_counts.push(available);
    }
    if scale == Scale::Quick {
        // Smoke mode: serial plus one parallel point so CI always
        // exercises the threaded path (even on single-core runners —
        // the scoped pool works fine oversubscribed).
        thread_counts = vec![1, 2];
    }

    // Replicate test fingerprints up to the largest batch.
    let features = campaign.features(&campaign.test);
    let max_batch = batch_sizes.iter().copied().max().unwrap_or(1);
    let rows: Vec<Vec<f64>> = (0..max_batch)
        .map(|i| features.row(i % features.rows()).to_vec())
        .collect();

    let configured_threads = num_threads();
    let mut measurements: Vec<Measurement> = Vec::new();
    for &batch in &batch_sizes {
        let slice = &rows[..batch];

        set_num_threads(1);
        let single = best_rate(batch, reps, || {
            for row in slice {
                model.localize_one(row).expect("localize_one");
            }
        });
        measurements.push(Measurement {
            mode: "single",
            precision: "exact",
            batch,
            threads: 1,
            fixes_per_sec: single,
        });

        let batched = best_rate(batch, reps, || {
            model.localize_batch(slice).expect("localize_batch");
        });
        measurements.push(Measurement {
            mode: "batched",
            precision: "exact",
            batch,
            threads: 1,
            fixes_per_sec: batched,
        });

        for &threads in &thread_counts {
            if threads <= 1 {
                continue;
            }
            set_num_threads(threads);
            let rate = best_rate(batch, reps, || {
                model.localize_batch(slice).expect("localize_batch");
            });
            measurements.push(Measurement {
                mode: "batched_threaded",
                precision: "exact",
                batch,
                threads,
                fixes_per_sec: rate,
            });
        }

        // Reduced-precision tiers over the very same rows. The twins
        // take the identical slice-of-rows interface, so the only
        // difference against the exact `batched` rows above is the
        // kernel tier.
        for (precision, twin) in [("f32", &mut f32_twin), ("int8", &mut i8_twin)] {
            set_num_threads(1);
            let rate = best_rate(batch, reps, || {
                twin.localize_rows(slice).expect("localize_rows");
            });
            measurements.push(Measurement {
                mode: "batched",
                precision,
                batch,
                threads: 1,
                fixes_per_sec: rate,
            });
            for &threads in &thread_counts {
                if threads <= 1 {
                    continue;
                }
                set_num_threads(threads);
                let rate = best_rate(batch, reps, || {
                    twin.localize_rows(slice).expect("localize_rows");
                });
                measurements.push(Measurement {
                    mode: "batched_threaded",
                    precision,
                    batch,
                    threads,
                    fixes_per_sec: rate,
                });
            }
        }
        set_num_threads(0);
    }
    // Restore whatever the process had configured before the sweep.
    set_num_threads(if configured_threads == available {
        0
    } else {
        configured_threads
    });

    // Speedups at the reference batch (256 when measured, else the
    // largest batch in the sweep).
    let reference_batch = if batch_sizes.contains(&256) {
        256
    } else {
        max_batch
    };
    let rate_of = |mode: &str, precision: &str| {
        measurements
            .iter()
            .filter(|m| m.mode == mode && m.precision == precision && m.batch == reference_batch)
            .map(|m| m.fixes_per_sec)
            .fold(0.0f64, f64::max)
    };
    let single_ref = rate_of("single", "exact");
    let batched_ref = rate_of("batched", "exact");
    let threaded_ref = rate_of("batched_threaded", "exact").max(batched_ref);
    let speedup_batched = batched_ref / single_ref.max(f64::MIN_POSITIVE);
    let speedup_threaded = threaded_ref / single_ref.max(f64::MIN_POSITIVE);
    // Precision speedups compare best-against-best at the reference
    // batch (each tier free to use its best thread count).
    let best_of =
        |precision: &str| rate_of("batched", precision).max(rate_of("batched_threaded", precision));
    let speedup_f32 = best_of("f32") / threaded_ref.max(f64::MIN_POSITIVE);
    let speedup_i8 = best_of("int8") / threaded_ref.max(f64::MIN_POSITIVE);

    let mut out = String::new();
    out.push_str("THROUGHPUT: WiFi fixes/sec, single vs batched vs batched+threaded\n");
    out.push_str(&format!(
        "(hidden_dim={}, waps={}, available_parallelism={available})\n",
        cfg.hidden_dim,
        campaign.num_waps()
    ));
    out.push_str(&format!(
        "accuracy gates: f32 max delta {f32_delta:.2e} m (<= 1e-4), \
         int8 match {i8_matches:.3} (>= 0.9) mean delta {i8_mean:.3} m (<= 0.5)\n\n"
    ));
    let mut table = TextTable::new(vec![
        "MODE".into(),
        "PRECISION".into(),
        "BATCH".into(),
        "THREADS".into(),
        "FIXES/SEC".into(),
    ]);
    for m in &measurements {
        table.add_row(vec![
            m.mode.to_uppercase(),
            m.precision.to_string(),
            m.batch.to_string(),
            m.threads.to_string(),
            format!("{:.0}", m.fixes_per_sec),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nat batch {reference_batch}: batched = {speedup_batched:.2}x single, \
         batched+threaded = {speedup_threaded:.2}x single\n\
         f32 = {speedup_f32:.2}x exact, int8 = {speedup_i8:.2}x exact (best vs best)\n"
    ));

    let json = format!(
        "{{\n  \"available_parallelism\": {available},\n  \"hidden_dim\": {},\n  \
         \"num_waps\": {},\n  \"reference_batch\": {reference_batch},\n  \
         \"speedup_batched_vs_single\": {speedup_batched:.3},\n  \
         \"speedup_batched_threaded_vs_single\": {speedup_threaded:.3},\n  \
         \"speedup_f32_vs_exact\": {speedup_f32:.3},\n  \
         \"speedup_int8_vs_exact\": {speedup_i8:.3},\n  \
         \"accuracy_gates\": {{\"f32_max_position_delta\": {f32_delta:.6e}, \
         \"int8_match_fraction\": {i8_matches:.4}, \
         \"int8_mean_position_delta\": {i8_mean:.4}}},\n  \
         \"measurements\": [\n{}\n  ]\n}}\n",
        cfg.hidden_dim,
        campaign.num_waps(),
        measurements
            .iter()
            .map(Measurement::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = write_artifact("BENCH_throughput.json", &json)?;
    out.push_str(&format!("wrote {}\n", path.display()));

    println!("{out}");
    Ok(out)
}
