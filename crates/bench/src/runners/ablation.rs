//! Ablations of NObLe's design choices (DESIGN.md §6).
//!
//! - `tau sweep` — the §III-B granularity trade-off: finer grids mean more
//!   classes, lower class accuracy, but lower decode error; position error
//!   is U-shaped in τ.
//! - `labels` — multi-resolution head and adjacency expansion on/off.
//! - `heads` — auxiliary building/floor heads on/off (the paper argues the
//!   joint heads supply geodesic information).
//! - `decode` — cell-center vs sample-mean decode.

use crate::config::{uji_config, wifi_noble_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::report::{meters, percent, TextTable};
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_datasets::{uji_campaign, WifiCampaign};
use noble_quantize::DecodePolicy;

fn eval_config(
    campaign: &WifiCampaign,
    cfg: &WifiNobleConfig,
) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let mut model = WifiNoble::train(campaign, cfg)?;
    let report = model.evaluate(campaign, &campaign.test)?;
    Ok((
        report.position_error.mean,
        report.position_error.median,
        report.class_accuracy,
    ))
}

/// τ granularity sweep.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run_tau_sweep(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let base = wifi_noble_config(scale);
    let taus: Vec<f64> = match scale {
        Scale::Full => vec![0.5, 1.0, 2.0, 4.0, 8.0],
        Scale::Quick => vec![2.0, 4.0, 8.0],
    };
    let mut table = TextTable::new(vec![
        "TAU (M)".into(),
        "CLASSES".into(),
        "CLASS ACC (%)".into(),
        "MEAN (M)".into(),
        "MEDIAN (M)".into(),
    ]);
    for &tau in &taus {
        let mut cfg = base.clone();
        cfg.tau = tau;
        cfg.coarse_l = Some((tau * 8.0).max(cfg.coarse_l.unwrap_or(8.0)));
        let mut model = WifiNoble::train(&campaign, &cfg)?;
        let report = model.evaluate(&campaign, &campaign.test)?;
        table.add_row(vec![
            format!("{tau:.1}"),
            model.fine_quantizer().num_classes().to_string(),
            percent(report.class_accuracy),
            meters(report.position_error.mean),
            meters(report.position_error.median),
        ]);
    }
    let mut out = String::new();
    out.push_str("ABLATION: quantization granularity (tau sweep)\n\n");
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}

/// Label-construction ablation: multi-resolution and adjacency on/off.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run_labels(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let base = wifi_noble_config(scale);

    // The default config keeps adjacency off (DESIGN.md §2 decision 1);
    // this ablation exercises the paper's multi-hot variant explicitly.
    let variants: Vec<(&str, WifiNobleConfig)> = vec![
        ("multi-res + adjacency (paper §III-B)", {
            let mut c = base.clone();
            c.adjacency_weight = Some(1.0);
            c
        }),
        ("multi-res only (default)", base.clone()),
        ("adjacency only", {
            let mut c = base.clone();
            c.coarse_l = None;
            c.adjacency_weight = Some(1.0);
            c
        }),
        ("neither (single head)", {
            let mut c = base.clone();
            c.coarse_l = None;
            c
        }),
    ];
    let mut table = TextTable::new(vec![
        "VARIANT".into(),
        "MEAN (M)".into(),
        "MEDIAN (M)".into(),
        "CLASS ACC (%)".into(),
    ]);
    for (name, cfg) in &variants {
        let (mean, median, acc) = eval_config(&campaign, cfg)?;
        table.add_row(vec![
            name.to_string(),
            meters(mean),
            meters(median),
            percent(acc),
        ]);
    }
    let mut out = String::new();
    out.push_str("ABLATION: label construction (paper §III-B sparsity remedies)\n\n");
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}

/// Auxiliary-head ablation: building/floor heads on/off.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run_heads(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let base = wifi_noble_config(scale);
    let variants: Vec<(&str, f64)> = vec![("aux heads on", 1.0), ("aux heads off", 0.0)];
    let mut table = TextTable::new(vec![
        "VARIANT".into(),
        "MEAN (M)".into(),
        "MEDIAN (M)".into(),
        "CLASS ACC (%)".into(),
    ]);
    for (name, w) in &variants {
        let mut cfg = base.clone();
        cfg.aux_head_weight = *w;
        let (mean, median, acc) = eval_config(&campaign, &cfg)?;
        table.add_row(vec![
            name.to_string(),
            meters(mean),
            meters(median),
            percent(acc),
        ]);
    }
    let mut out = String::new();
    out.push_str("ABLATION: auxiliary building/floor heads (paper §IV-A)\n\n");
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}

/// Decode-policy ablation: cell center vs training-sample mean.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run_decode(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let base = wifi_noble_config(scale);
    let variants: Vec<(&str, DecodePolicy)> = vec![
        (
            "sample mean (paper's central coords)",
            DecodePolicy::SampleMean,
        ),
        ("cell center", DecodePolicy::CellCenter),
    ];
    let mut table = TextTable::new(vec![
        "VARIANT".into(),
        "MEAN (M)".into(),
        "MEDIAN (M)".into(),
    ]);
    for (name, policy) in &variants {
        let mut cfg = base.clone();
        cfg.decode_policy = *policy;
        let (mean, median, _) = eval_config(&campaign, &cfg)?;
        table.add_row(vec![name.to_string(), meters(mean), meters(median)]);
    }
    let mut out = String::new();
    out.push_str("ABLATION: class decode policy\n\n");
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}
