//! Tracking-session capacity: the stateful per-device layer under load.
//!
//! `exp_serving` measures stateless fixes/second; this runner measures
//! the session tier above it — `noble_serve::TrackingServer` holding one
//! live session (trajectory smoother, bounded track buffer, zone
//! hysteresis detector) per synthetic device, with the fix tier
//! demand-paged under a small catalog budget. The drive is the
//! ROADMAP's "millions of users" shape scaled to one process:
//!
//! 1. **ramp** — every device submits a first observation, creating its
//!    session (the concurrent-session high-water mark: 10^5 devices at
//!    full scale, 10^3 under [`Scale::Quick`]);
//! 2. **steady** — more observation rounds over all devices, smoothing
//!    tracks and committing zone events;
//! 3. **churn** — a quarter of the devices go silent; between the
//!    remaining rounds, away-timeout sweeps close their zone
//!    memberships (`Left`) and then evict them.
//!
//! Reported (stdout + `results/BENCH_tracking.json`): session-observation
//! updates/second, the live-session peak, approximate bytes/session, and
//! event-detection latency percentiles (end-to-end submit latency of the
//! observations that committed at least one zone event).

use crate::config::uji_config;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::wifi::tracking::SmootherConfig;
use noble::wifi::WifiNobleConfig;
use noble_datasets::uji_campaign;
use noble_geo::ZoneSet;
use noble_serve::{
    BatchConfig, CatalogBudget, DeviceId, MemStore, ModelCatalog, RegistryConfig, ShardKey,
    ShardPolicy, ShardedRegistry, TrackingServer,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// Latency percentile summary (microseconds).
struct LatencySummary {
    count: usize,
    p50_us: u128,
    p99_us: u128,
    max_us: u128,
}

impl LatencySummary {
    fn of(mut samples: Vec<u128>) -> Self {
        samples.sort_unstable();
        let pick = |pct: f64| -> u128 {
            if samples.is_empty() {
                0
            } else {
                samples[((samples.len() - 1) as f64 * pct).round() as usize]
            }
        };
        LatencySummary {
            count: samples.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count, self.p50_us, self.p99_us, self.max_us
        )
    }
}

/// Devices that stop observing when the churn phase begins.
fn is_dropout(device: DeviceId) -> bool {
    device.is_multiple_of(4)
}

/// Runs the session-capacity drive and writes
/// `results/BENCH_tracking.json`.
///
/// # Errors
///
/// Propagates dataset, training, serving and artifact-I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    // The fix tier is not what is under test: train briefly on the quick
    // campaign and spend the run's budget on session volume.
    let campaign = uji_campaign(&uji_config(Scale::Quick))?;
    let model_cfg = WifiNobleConfig {
        epochs: 2,
        patience: None,
        ..WifiNobleConfig::small()
    };
    let (devices, steady_rounds, churn_rounds, clients) = match scale {
        Scale::Quick => (1_000u64, 2usize, 2usize, 4usize),
        Scale::Full => (100_000, 2, 2, 8),
    };

    let registry = ShardedRegistry::train_wifi(
        &campaign,
        &model_cfg,
        &RegistryConfig {
            policy: ShardPolicy::PerBuilding,
            max_train_samples_per_shard: None,
            parallel_training: true,
        },
    )?;
    let keys = registry.keys();

    // Per-shard observation rows (each device cycles the rows of the
    // building it is pinned to, so consecutive fixes move its track).
    let features = campaign.features(&campaign.test);
    let mut rows_by_key: BTreeMap<ShardKey, Vec<Vec<f64>>> = BTreeMap::new();
    for (i, sample) in campaign.test.iter().enumerate() {
        rows_by_key
            .entry(ShardPolicy::PerBuilding.key_of(sample))
            .or_default()
            .push(features.row(i).to_vec());
    }

    // Demand-paged fix tier: models fault in from the store on each
    // shard's first observation. The budget covers every building —
    // paging *pressure* is exp_serving's subject; here the fix tier just
    // needs to stay off the session layer's critical path.
    let store = MemStore::new();
    registry.save_to(&store)?;
    drop(registry);
    let catalog =
        ModelCatalog::with_store(CatalogBudget::Count(keys.len().max(2)), Box::new(store))?;
    // Zero coalescing budget: session clients are synchronous (one
    // observation in flight per device), so holding batches open for
    // riders would just add latency — drain-the-backlog batching wins.
    let cfg = BatchConfig {
        latency_budget: std::time::Duration::ZERO,
        session_shards: 64,
        stability_k: 2,
        away_timeout: Some(1),
        ..BatchConfig::default()
    };
    let server = TrackingServer::start_paged(
        catalog,
        ZoneSet::building_grid(&campaign.map, 2, 2)?,
        Some(campaign.map.clone()),
        SmootherConfig::default(),
        cfg,
    )?;

    // The drive: rounds of one observation per live device, from
    // `clients` threads (devices striped across threads, so per-device
    // submission order is each thread's program order). Logical time is
    // the round index; sweeps run between churn rounds.
    let total_rounds = steady_rounds + churn_rounds;
    let mut event_latencies: Vec<u128> = Vec::new();
    let mut observations = 0u64;
    let mut sweep_events = 0usize;
    let mut live_peak = 0usize;
    let started = Instant::now();
    for round in 0..total_rounds {
        let churn = round >= steady_rounds;
        let at = round as u64;
        let mut collected: Vec<(u64, Vec<u128>)> = Vec::new();
        std::thread::scope(|s| -> Result<(), noble_serve::ServeError> {
            let mut handles = Vec::new();
            for c in 0..clients {
                let client = server.client();
                let keys = &keys;
                let rows_by_key = &rows_by_key;
                handles.push(s.spawn(
                    move || -> Result<(u64, Vec<u128>), noble_serve::ServeError> {
                        let mut latencies = Vec::new();
                        let mut submitted = 0u64;
                        let mut device = c as u64;
                        while device < devices {
                            if !(churn && is_dropout(device)) {
                                let key = keys[device as usize % keys.len()];
                                let rows = &rows_by_key[&key];
                                let row = rows[(device as usize + round) % rows.len()].clone();
                                let begun = Instant::now();
                                let (_, events) = client.submit(device, key, at, row)?;
                                if !events.is_empty() {
                                    latencies.push(begun.elapsed().as_micros());
                                }
                                submitted += 1;
                            }
                            device += clients as u64;
                        }
                        Ok((submitted, latencies))
                    },
                ));
            }
            for h in handles {
                collected.push(h.join().expect("client thread")?);
            }
            Ok(())
        })?;
        for (submitted, latencies) in collected {
            observations += submitted;
            event_latencies.extend(latencies);
        }
        live_peak = live_peak.max(server.session_stats().live);
        if churn {
            // Off the serving path: close memberships of devices silent
            // past the away timeout, then (next sweep) evict them.
            sweep_events += server.sweep(at + 1).len();
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let sessions_per_sec = observations as f64 / elapsed;
    let event_latency = LatencySummary::of(event_latencies);

    let stats = server.session_stats();
    let paged = server.paged_stats().expect("paged fix tier");
    if stats.created != devices {
        return Err(format!("expected {devices} sessions, created {}", stats.created).into());
    }
    if live_peak < devices as usize {
        return Err(format!("live peak {live_peak} below {devices} concurrent sessions").into());
    }

    let mut out = String::new();
    out.push_str("TRACKING: stateful per-device sessions over the demand-paged fix tier\n");
    out.push_str(&format!(
        "(devices={devices}, rounds={total_rounds}, clients={clients}, \
         session_shards={}, stability_k={}, away_timeout={:?})\n\n",
        cfg.session_shards, cfg.stability_k, cfg.away_timeout
    ));
    out.push_str(&format!(
        "  {observations} session observations in {elapsed:.2}s = {sessions_per_sec:.0} updates/sec\n"
    ));
    out.push_str(&format!(
        "  live peak {live_peak} concurrent sessions at ~{} bytes/session \
         (~{:.1} MiB resident session state)\n",
        stats.approx_session_bytes,
        (live_peak * stats.approx_session_bytes) as f64 / (1024.0 * 1024.0)
    ));
    out.push_str(&format!(
        "  zone events: {} entered, {} left ({} from sweeps); {} sessions evicted, {} still live\n",
        stats.entered, stats.left, sweep_events, stats.evicted, stats.live
    ));
    out.push_str(&format!(
        "  event-detection latency p50/p99/max = {}/{}/{} us over {} event-bearing fixes\n",
        event_latency.p50_us, event_latency.p99_us, event_latency.max_us, event_latency.count
    ));
    out.push_str(&format!(
        "  fix tier: {} faults, {} drains, {} parked requests under the paged budget\n",
        paged.faults, paged.drains, paged.parked_requests
    ));

    let json = format!(
        "{{\n  \"devices\": {devices},\n  \"rounds\": {total_rounds},\n  \
         \"clients\": {clients},\n  \"session_shards\": {},\n  \
         \"stability_k\": {},\n  \"away_timeout\": 1,\n  \
         \"observations\": {observations},\n  \"elapsed_s\": {elapsed:.3},\n  \
         \"sessions_per_sec\": {sessions_per_sec:.1},\n  \"live_peak\": {live_peak},\n  \
         \"bytes_per_session\": {},\n  \"event_latency\": {},\n  \
         \"events\": {{\"entered\": {}, \"left\": {}, \"sweep_left\": {sweep_events}}},\n  \
         \"sessions\": {{\"created\": {}, \"evicted\": {}, \"live\": {}}},\n  \
         \"paged\": {{\"faults\": {}, \"drains\": {}, \"idle_spin_downs\": {}, \
         \"parked_requests\": {}}}\n}}\n",
        cfg.session_shards,
        cfg.stability_k,
        stats.approx_session_bytes,
        event_latency.json(),
        stats.entered,
        stats.left,
        stats.created,
        stats.evicted,
        stats.live,
        paged.faults,
        paged.drains,
        paged.idle_spin_downs,
        paged.parked_requests,
    );
    let path = write_artifact("BENCH_tracking.json", &json)?;
    out.push_str(&format!("wrote {}\n", path.display()));

    println!("{out}");
    Ok(out)
}
