//! Table II: comparative position errors of the baselines on the UJI-like
//! campaign.
//!
//! Paper values (real UJIIndoorLoc): Deep Regression 10.17/7.84, Regression
//! Projection 9.76/7.16, Isomap DR 11.01/7.56, LLE DR 10.05/7.43 (mean/median
//! meters). Shape criteria: all baselines cluster well above NObLe's mean;
//! projection slightly improves on raw regression; manifold variants land in
//! the same band as regression.

use crate::config::{manifold_config, regression_config, uji_config, wifi_noble_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::report::{meters, TextTable};
use noble::wifi::baselines::{DeepRegression, KnnFingerprint, ManifoldKind, ManifoldRegression};
use noble::wifi::WifiNoble;
use noble_datasets::uji_campaign;

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;

    let mut table = TextTable::new(vec![
        "MODEL".into(),
        "MEAN".into(),
        "MEDIAN".into(),
        "PAPER MEAN".into(),
        "PAPER MEDIAN".into(),
    ]);

    let mut regression = DeepRegression::train(&campaign, &regression_config(scale))?;
    let raw = regression.evaluate(&campaign, &campaign.test, false)?;
    table.add_row(vec![
        "DEEP REGRESSION".into(),
        meters(raw.mean),
        meters(raw.median),
        "10.17".into(),
        "7.84".into(),
    ]);
    let projected = regression.evaluate(&campaign, &campaign.test, true)?;
    table.add_row(vec![
        "REGRESSION PROJECTION".into(),
        meters(projected.mean),
        meters(projected.median),
        "9.76".into(),
        "7.16".into(),
    ]);

    let mut isomap =
        ManifoldRegression::train(&campaign, &manifold_config(scale, ManifoldKind::Isomap))?;
    let isomap_summary = isomap.evaluate(&campaign, &campaign.test)?;
    table.add_row(vec![
        "ISOMAP DEEP REGRESSION".into(),
        meters(isomap_summary.mean),
        meters(isomap_summary.median),
        "11.01".into(),
        "7.56".into(),
    ]);

    let mut lle = ManifoldRegression::train(&campaign, &manifold_config(scale, ManifoldKind::Lle))?;
    let lle_summary = lle.evaluate(&campaign, &campaign.test)?;
    table.add_row(vec![
        "LLE DEEP REGRESSION".into(),
        meters(lle_summary.mean),
        meters(lle_summary.median),
        "10.05".into(),
        "7.43".into(),
    ]);

    // Reference rows beyond the paper's table: linear PCA embedding,
    // classic WkNN, and NObLe itself, so the comparison is self-contained.
    let mut pca = ManifoldRegression::train(&campaign, &manifold_config(scale, ManifoldKind::Pca))?;
    let pca_summary = pca.evaluate(&campaign, &campaign.test)?;
    table.add_row(vec![
        "PCA DEEP REGRESSION (ref)".into(),
        meters(pca_summary.mean),
        meters(pca_summary.median),
        "-".into(),
        "-".into(),
    ]);
    let knn = KnnFingerprint::fit(&campaign, 5)?;
    let knn_summary = knn.evaluate(&campaign, &campaign.test)?;
    table.add_row(vec![
        "WKNN FINGERPRINT (ref)".into(),
        meters(knn_summary.mean),
        meters(knn_summary.median),
        "-".into(),
        "-".into(),
    ]);
    let mut noble_model = WifiNoble::train(&campaign, &wifi_noble_config(scale))?;
    let noble_report = noble_model.evaluate(&campaign, &campaign.test)?;
    table.add_row(vec![
        "NOBLE (Table I)".into(),
        meters(noble_report.position_error.mean),
        meters(noble_report.position_error.median),
        "4.45".into(),
        "0.23".into(),
    ]);

    let mut out = String::new();
    out.push_str("TABLE II: comparative distance errors (m) on the UJI-like campaign\n\n");
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}
