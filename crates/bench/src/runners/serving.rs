//! Sharded serving throughput: the micro-batching pipeline under client
//! load.
//!
//! `exp_throughput` measured the raw inference engine; this runner
//! measures the *serving* seam above it — N client threads firing WiFi
//! fixes at a [`noble_serve::BatchServer`] over 1/2/4 shards, with the
//! coalescing knobs swept:
//!
//! - **single** — synchronous request/response serving: each client keeps
//!   one fix in flight, `max_batch = 1`, one inference call per fix (the
//!   naive serving loop),
//! - **pipelined** — clients stream their fixes (submit-all-then-wait)
//!   but the worker still serves one fix per call, isolating the win of
//!   asynchrony alone,
//! - **batched** — streaming clients *and* coalescing: `max_batch >= 64`
//!   at several latency budgets, so the backlog rides stacked
//!   `localize_batch` calls.
//!
//! Serving results are bit-identical across all modes (the kernel
//! dispatch is per-row; `noble-serve`'s parity suite pins it), so the
//! sweep is purely a throughput story. Results go to stdout and
//! `results/BENCH_serving.json`. [`Scale::Quick`] shrinks the sweep for
//! CI smoke runs.

use crate::config::{imu_config, uji_config};
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::report::TextTable;
use noble::wifi::WifiNobleConfig;
use noble_datasets::{uji_campaign, ImuDataset, ImuPathSample, WifiSample};
use noble_serve::{
    BatchConfig, BatchServer, RegistryConfig, ShardKey, ShardPolicy, ShardStats, ShardedRegistry,
};
use std::time::{Duration, Instant};

/// One serving measurement.
struct Measurement {
    mode: &'static str,
    shards: usize,
    max_batch: usize,
    budget_us: u64,
    fixes_per_sec: f64,
    shard_stats: Vec<(ShardKey, ShardStats)>,
}

impl Measurement {
    fn json(&self) -> String {
        let shards: Vec<String> = self
            .shard_stats
            .iter()
            .map(|(key, s)| {
                format!(
                    "{{\"shard\": \"{key}\", \"requests\": {}, \"batches\": {}, \
                     \"mean_batch\": {:.2}, \"max_batch\": {}, \"mean_latency_us\": {:.1}, \
                     \"max_latency_us\": {}, \"busy_us\": {}}}",
                    s.requests,
                    s.batches,
                    s.mean_batch(),
                    s.max_batch,
                    s.mean_latency_us(),
                    s.max_latency_us,
                    s.busy_us
                )
            })
            .collect();
        format!
            (
            "    {{\"mode\": \"{}\", \"shards\": {}, \"max_batch\": {}, \"budget_us\": {}, \"fixes_per_sec\": {:.1}, \"shard_stats\": [{}]}}",
            self.mode, self.shards, self.max_batch, self.budget_us, self.fixes_per_sec, shards.join(", ")
        )
    }
}

/// Restores the process-wide intra-op thread override on scope exit, so
/// an error mid-sweep cannot leave the rest of `exp_all` silently pinned
/// to one matmul worker.
struct ThreadPin {
    restore_to: usize,
}

impl ThreadPin {
    fn pin_to_one() -> Self {
        let configured = noble_linalg::num_threads();
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        noble_linalg::set_num_threads(1);
        ThreadPin {
            // A configured count equal to detected parallelism is
            // indistinguishable from "no override"; restore to unset.
            restore_to: if configured == available {
                0
            } else {
                configured
            },
        }
    }
}

impl Drop for ThreadPin {
    fn drop(&mut self) {
        noble_linalg::set_num_threads(self.restore_to);
    }
}

/// Drives `fixes` through the server from `clients` threads and returns
/// the wall-clock fixes/second.
///
/// With `pipeline` the clients stream: every fix is submitted before any
/// reply is awaited (devices posting asynchronously — the backlog is what
/// the worker coalesces). Without it each client is a synchronous
/// request/response loop, one fix in flight at a time — the classic
/// single-request serving discipline.
fn drive(
    server: &BatchServer,
    fixes: &[(ShardKey, Vec<f64>)],
    clients: usize,
    pipeline: bool,
) -> Result<f64, Box<dyn std::error::Error>> {
    // Pre-clone each client's slice so the timed region measures serving,
    // not allocation of the request stream.
    let slices: Vec<Vec<(ShardKey, Vec<f64>)>> = (0..clients)
        .map(|c| fixes.iter().skip(c).step_by(clients).cloned().collect())
        .collect();
    let started = Instant::now();
    std::thread::scope(|s| -> Result<(), noble_serve::ServeError> {
        let mut handles = Vec::new();
        for mine in slices {
            let client = server.client();
            handles.push(s.spawn(move || -> Result<(), noble_serve::ServeError> {
                if pipeline {
                    let pending: Result<Vec<_>, _> = mine
                        .into_iter()
                        .map(|(key, row)| client.submit(key, row))
                        .collect();
                    for p in pending? {
                        p.wait()?;
                    }
                } else {
                    for (key, row) in mine {
                        client.localize(key, row)?;
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("client thread")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(fixes.len() as f64 / elapsed)
}

/// Runs the sweep and writes `results/BENCH_serving.json`.
///
/// # Errors
///
/// Propagates dataset, training, serving and artifact-I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    // Serving cost is dominated by the fixed-width forward pass; train
    // briefly on the quick campaign but keep the paper's hidden width.
    let campaign = uji_campaign(&uji_config(Scale::Quick))?;
    let model_cfg = WifiNobleConfig {
        hidden_dim: 128,
        epochs: if scale == Scale::Quick { 2 } else { 4 },
        patience: None,
        ..WifiNobleConfig::small()
    };

    let floors = campaign
        .map
        .buildings()
        .iter()
        .map(|b| b.floors())
        .max()
        .unwrap_or(1);
    let (shard_counts, budgets_us, total_fixes, clients, reps): (
        Vec<usize>,
        Vec<u64>,
        usize,
        usize,
        usize,
    ) = match scale {
        Scale::Quick => (vec![1, 2], vec![200], 1024, 8, 2),
        Scale::Full => (vec![1, 2, 4], vec![0, 200, 1000], 4096, 8, 3),
    };
    let reference_shards = *shard_counts.last().unwrap_or(&1);
    let max_batches: Vec<usize> = match scale {
        Scale::Quick => vec![256],
        Scale::Full => vec![64, 256],
    };

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut speedup_at_reference = 0.0f64;
    let mut single_at_reference = 0.0f64;
    for &shards in &shard_counts {
        // Round-robin building-floor zones onto `shards` groups; requests
        // route with the same keyer.
        let keyer = move |s: &WifiSample| {
            if shards == 1 {
                ShardPolicy::SingleSite.key_of(s)
            } else {
                ShardKey::building((s.building * floors + s.floor) % shards)
            }
        };
        let mut registry = ShardedRegistry::train_wifi_with(
            &campaign,
            keyer,
            &model_cfg,
            &RegistryConfig::default(),
        )?;

        // Replicate test fingerprints up to the request volume.
        let features = campaign.features(&campaign.test);
        let fixes: Vec<(ShardKey, Vec<f64>)> = (0..total_fixes)
            .map(|i| {
                let j = i % features.rows();
                (keyer(&campaign.test[j]), features.row(j).to_vec())
            })
            .collect();

        let run_mode = |measurements: &mut Vec<Measurement>,
                        mode: &'static str,
                        max_batch: usize,
                        budget_us: u64,
                        pipeline: bool,
                        registry: ShardedRegistry|
         -> Result<(ShardedRegistry, f64), Box<dyn std::error::Error>> {
            let mut best = 0.0f64;
            let mut stats = Vec::new();
            let mut registry = registry;
            for _ in 0..reps {
                let server = BatchServer::start(
                    registry,
                    BatchConfig {
                        max_batch,
                        latency_budget: Duration::from_micros(budget_us),
                    },
                )?;
                let rate = drive(&server, &fixes, clients, pipeline)?;
                let (s, recovered) = server.shutdown_with_registry();
                registry = recovered;
                // Keep the stats of the *best* repetition so the JSON's
                // rate and batch/latency columns describe the same run.
                if rate > best {
                    best = rate;
                    stats = s;
                }
            }
            measurements.push(Measurement {
                mode,
                shards,
                max_batch,
                budget_us,
                fixes_per_sec: best,
                shard_stats: stats,
            });
            Ok((registry, best))
        };

        // Shard workers and client threads already use every core; letting
        // each coalesced matmul *also* fan out over scoped threads
        // oversubscribes the box and erases the batching win (NOBLE_THREADS
        // still governs training above and the exp_throughput sweep).
        // Serve with intra-op parallelism pinned to one worker; the guard
        // restores the override even if a mode errors out mid-sweep.
        let pin = ThreadPin::pin_to_one();
        // Single-request serving: synchronous request/response, one fix in
        // flight per client, one inference call per fix.
        let (reg, single_rate) = run_mode(&mut measurements, "single", 1, 0, false, registry)?;
        // Streaming without coalescing isolates how much of the win comes
        // from pipelining alone vs. from the stacked inference call.
        let (reg, _) = run_mode(&mut measurements, "pipelined", 1, 0, true, reg)?;
        registry = reg;
        let mut best_batched = 0.0f64;
        for &max_batch in &max_batches {
            for &budget in &budgets_us {
                let (reg, rate) = run_mode(
                    &mut measurements,
                    "batched",
                    max_batch,
                    budget,
                    true,
                    registry,
                )?;
                registry = reg;
                best_batched = best_batched.max(rate);
            }
        }
        drop(pin);
        if shards == reference_shards {
            single_at_reference = single_rate;
            speedup_at_reference = best_batched / single_rate.max(f64::MIN_POSITIVE);
        }
        drop(registry);
    }

    // --- Mixed WiFi+IMU traffic (ROADMAP "IMU serving path"): one IMU
    // tracker shard rides the same BatchServer as the per-building WiFi
    // shards; a quarter of the fix stream is IMU path features. ---
    {
        let imu_dataset = ImuDataset::generate(&imu_config(Scale::Quick))?;
        let imu_cfg = ImuNobleConfig {
            epochs: if scale == Scale::Quick { 6 } else { 20 },
            ..ImuNobleConfig::small()
        };
        let imu_model = ImuNoble::train(&imu_dataset, &imu_cfg)?;
        let imu_refs: Vec<&ImuPathSample> = imu_dataset.test.iter().collect();
        let imu_features = imu_model.path_features(&imu_refs);
        let imu_key = ShardKey::building(1000); // disjoint from campus buildings

        let mut registry = ShardedRegistry::train_wifi(
            &campaign,
            &model_cfg,
            &RegistryConfig::default(), // per-building WiFi shards
        )?;
        let wifi_shards = registry.len();
        registry.insert(imu_key, Box::new(imu_model));

        let wifi_features = campaign.features(&campaign.test);
        let fixes: Vec<(ShardKey, Vec<f64>)> = (0..total_fixes)
            .map(|i| {
                if i % 4 == 3 {
                    let j = i % imu_features.rows();
                    (imu_key, imu_features.row(j).to_vec())
                } else {
                    let j = i % wifi_features.rows();
                    (
                        ShardPolicy::PerBuilding.key_of(&campaign.test[j]),
                        wifi_features.row(j).to_vec(),
                    )
                }
            })
            .collect();

        let pin = ThreadPin::pin_to_one();
        let max_batch = *max_batches.last().unwrap_or(&256);
        let budget_us = *budgets_us.last().unwrap_or(&200);
        let mut best = 0.0f64;
        let mut stats = Vec::new();
        for _ in 0..reps {
            let server = BatchServer::start(
                registry,
                BatchConfig {
                    max_batch,
                    latency_budget: Duration::from_micros(budget_us),
                },
            )?;
            let rate = drive(&server, &fixes, clients, true)?;
            let (s, recovered) = server.shutdown_with_registry();
            registry = recovered;
            if rate > best {
                best = rate;
                stats = s;
            }
        }
        drop(pin);
        measurements.push(Measurement {
            mode: "mixed-wifi-imu",
            shards: wifi_shards + 1,
            max_batch,
            budget_us,
            fixes_per_sec: best,
            shard_stats: stats,
        });
    }

    let mut out = String::new();
    out.push_str("SERVING: sharded micro-batching pipeline, fixes/sec end-to-end\n");
    out.push_str(&format!(
        "(hidden_dim={}, waps={}, clients={clients}, total_fixes={total_fixes}, \
         available_parallelism={available})\n\n",
        model_cfg.hidden_dim,
        campaign.num_waps()
    ));
    let mut table = TextTable::new(vec![
        "MODE".into(),
        "SHARDS".into(),
        "MAX_BATCH".into(),
        "BUDGET_US".into(),
        "FIXES/SEC".into(),
        "MEAN_BATCH".into(),
    ]);
    for m in &measurements {
        let mean_batch = if m.shard_stats.is_empty() {
            0.0
        } else {
            m.shard_stats
                .iter()
                .map(|(_, s)| s.mean_batch())
                .sum::<f64>()
                / m.shard_stats.len() as f64
        };
        table.add_row(vec![
            m.mode.to_uppercase(),
            m.shards.to_string(),
            m.max_batch.to_string(),
            m.budget_us.to_string(),
            format!("{:.0}", m.fixes_per_sec),
            format!("{mean_batch:.1}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nat {reference_shards} shard(s): batched (max_batch >= 64) = {speedup_at_reference:.2}x \
         single-request serving ({:.0} vs {:.0} fixes/sec)\n",
        speedup_at_reference * single_at_reference,
        single_at_reference,
    ));

    let json = format!(
        "{{\n  \"available_parallelism\": {available},\n  \"hidden_dim\": {},\n  \
         \"num_waps\": {},\n  \"clients\": {clients},\n  \"total_fixes\": {total_fixes},\n  \
         \"reference_shards\": {reference_shards},\n  \
         \"speedup_batched_vs_single\": {speedup_at_reference:.3},\n  \
         \"measurements\": [\n{}\n  ]\n}}\n",
        model_cfg.hidden_dim,
        campaign.num_waps(),
        measurements
            .iter()
            .map(Measurement::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = write_artifact("BENCH_serving.json", &json)?;
    out.push_str(&format!("wrote {}\n", path.display()));

    println!("{out}");
    Ok(out)
}
