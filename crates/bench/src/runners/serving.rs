//! Sharded serving throughput: the micro-batching pipeline under client
//! load.
//!
//! `exp_throughput` measured the raw inference engine; this runner
//! measures the *serving* seam above it — N client threads firing WiFi
//! fixes at a [`noble_serve::BatchServer`] over 1/2/4 shards, with the
//! coalescing knobs swept:
//!
//! - **single** — synchronous request/response serving: each client keeps
//!   one fix in flight, `max_batch = 1`, one inference call per fix (the
//!   naive serving loop),
//! - **pipelined** — clients stream their fixes (submit-all-then-wait)
//!   but the worker still serves one fix per call, isolating the win of
//!   asynchrony alone,
//! - **batched** — streaming clients *and* coalescing: `max_batch >= 64`
//!   at several latency budgets, so the backlog rides stacked
//!   `localize_batch` calls.
//!
//! A precision family rides the same batched discipline with
//! [`noble_serve::BatchConfig::precision`] set to each tier — workers
//! serve f32/int8 lowered twins — and gates every tier's answers
//! against the exact tier inline (exact bit-identical across reps, f32
//! within 1e-4 position error, int8 within its calibrated decode
//! bound). A gate failure aborts the runner.
//!
//! A second measurement family covers **demand-paged** serving
//! ([`noble_serve::BatchServer::start_paged`]): an oversubscribed
//! catalog (16 shards under a budget of 4 resident models at full
//! scale) driven with uniform-rotation and popularity-skewed traffic,
//! recording fault / drain / spin-down counts and cold-vs-warm latency
//! percentiles — with every answer asserted bit-identical to the
//! fully-resident server inline.
//!
//! Serving results are bit-identical across all modes (the kernel
//! dispatch is per-row; `noble-serve`'s parity suite pins it), so the
//! sweep is purely a throughput story. Results go to stdout and
//! `results/BENCH_serving.json`. [`Scale::Quick`] shrinks the sweep for
//! CI smoke runs.

use crate::config::{imu_config, uji_config};
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::report::TextTable;
use noble::wifi::WifiNobleConfig;
use noble_datasets::{uji_campaign, ImuDataset, ImuPathSample, WifiSample};
use noble_geo::Point;
use noble_serve::{
    BatchConfig, BatchServer, CatalogBudget, CatalogStats, MemStore, ModelCatalog, RegistryConfig,
    ShardKey, ShardPolicy, ShardStats, ShardedRegistry,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One serving measurement.
struct Measurement {
    mode: &'static str,
    precision: &'static str,
    shards: usize,
    max_batch: usize,
    budget_us: u64,
    fixes_per_sec: f64,
    shard_stats: Vec<(ShardKey, ShardStats)>,
}

impl Measurement {
    fn json(&self) -> String {
        let shards: Vec<String> = self
            .shard_stats
            .iter()
            .map(|(key, s)| {
                format!(
                    "{{\"shard\": \"{key}\", \"requests\": {}, \"batches\": {}, \
                     \"mean_batch\": {:.2}, \"max_batch\": {}, \"mean_latency_us\": {:.1}, \
                     \"max_latency_us\": {}, \"busy_us\": {}}}",
                    s.requests,
                    s.batches,
                    s.mean_batch(),
                    s.max_batch,
                    s.mean_latency_us(),
                    s.max_latency_us,
                    s.busy_us
                )
            })
            .collect();
        format!
            (
            "    {{\"mode\": \"{}\", \"precision\": \"{}\", \"shards\": {}, \"max_batch\": {}, \"budget_us\": {}, \"fixes_per_sec\": {:.1}, \"shard_stats\": [{}]}}",
            self.mode, self.precision, self.shards, self.max_batch, self.budget_us, self.fixes_per_sec, shards.join(", ")
        )
    }
}

/// Latency percentile summary of one request class (cold or warm).
struct LatencySummary {
    count: usize,
    p50_us: u128,
    p99_us: u128,
    max_us: u128,
}

impl LatencySummary {
    /// Summarizes a set of per-request latencies (microseconds).
    fn of(mut samples: Vec<u128>) -> Self {
        samples.sort_unstable();
        let pick = |pct: f64| -> u128 {
            if samples.is_empty() {
                0
            } else {
                samples[((samples.len() - 1) as f64 * pct).round() as usize]
            }
        };
        LatencySummary {
            count: samples.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count, self.p50_us, self.p99_us, self.max_us
        )
    }
}

/// One demand-paged (oversubscribed) serving measurement.
struct PagedMeasurement {
    mode: &'static str,
    shards: usize,
    budget: usize,
    fixes: usize,
    fixes_per_sec: f64,
    /// Bit-identical to the fully-resident server (asserted inline; a
    /// mismatch aborts the runner, so a written row is always `true`).
    parity: bool,
    faults: u64,
    idle_spin_downs: u64,
    drains: u64,
    parked_requests: u64,
    catalog: CatalogStats,
    cold: LatencySummary,
    warm: LatencySummary,
}

impl PagedMeasurement {
    fn json(&self) -> String {
        format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"budget\": {}, \"fixes\": {}, \
             \"fixes_per_sec\": {:.1}, \"parity\": {}, \"faults\": {}, \
             \"idle_spin_downs\": {}, \"drains\": {}, \"parked_requests\": {}, \
             \"catalog\": {{\"hits\": {}, \"misses\": {}, \"hydrations\": {}, \
             \"retrains\": {}, \"evictions\": {}, \"pinned\": {}}}, \
             \"cold\": {}, \"warm\": {}}}",
            self.mode,
            self.shards,
            self.budget,
            self.fixes,
            self.fixes_per_sec,
            self.parity,
            self.faults,
            self.idle_spin_downs,
            self.drains,
            self.parked_requests,
            self.catalog.hits,
            self.catalog.misses,
            self.catalog.hydrations,
            self.catalog.retrains,
            self.catalog.evictions,
            self.catalog.pinned,
            self.cold.json(),
            self.warm.json()
        )
    }
}

/// Per-fix observations of [`drive_collect`]: answers aligned to the fix
/// stream's submission order, `(cold, latency_us)` samples, and the
/// overall fixes/second.
type DriveObservations = (Vec<Point>, Vec<(bool, u128)>, f64);

/// Drives `fixes` through the server from `clients` synchronous
/// request/response threads, collecting each fix's answer (in submission
/// order), its cold flag and its end-to-end latency — the per-request
/// view the demand-paged measurement needs to split cold-start tails
/// from steady-state percentiles.
fn drive_collect(
    server: &BatchServer,
    fixes: &[(ShardKey, Vec<f64>)],
    clients: usize,
) -> Result<DriveObservations, Box<dyn std::error::Error>> {
    type Record = (usize, Point, bool, u128);
    let slices: Vec<Vec<(usize, ShardKey, Vec<f64>)>> = (0..clients)
        .map(|c| {
            fixes
                .iter()
                .enumerate()
                .skip(c)
                .step_by(clients)
                .map(|(i, (key, row))| (i, *key, row.clone()))
                .collect()
        })
        .collect();
    let started = Instant::now();
    let mut collected: Vec<Record> = Vec::with_capacity(fixes.len());
    std::thread::scope(|s| -> Result<(), noble_serve::ServeError> {
        let mut handles = Vec::new();
        for mine in slices {
            let client = server.client();
            handles.push(
                s.spawn(move || -> Result<Vec<Record>, noble_serve::ServeError> {
                    let mut out = Vec::with_capacity(mine.len());
                    for (i, key, row) in mine {
                        let submitted = Instant::now();
                        let pending = client.submit(key, row)?;
                        let cold = pending.cold();
                        let point = pending.wait()?;
                        out.push((i, point, cold, submitted.elapsed().as_micros()));
                    }
                    Ok(out)
                }),
            );
        }
        for h in handles {
            collected.extend(h.join().expect("client thread")?);
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let mut answers = vec![Point::new(f64::NAN, f64::NAN); fixes.len()];
    let mut samples = Vec::with_capacity(fixes.len());
    for (i, point, cold, latency) in collected {
        answers[i] = point;
        samples.push((cold, latency));
    }
    Ok((answers, samples, fixes.len() as f64 / elapsed))
}

/// Per-run catalog counters: the paged server reports cumulative catalog
/// stats (the catalog round-trips between measurement modes), so each
/// row records the delta across its own drive.
fn catalog_delta(after: CatalogStats, before: CatalogStats) -> CatalogStats {
    CatalogStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        hydrations: after.hydrations - before.hydrations,
        retrains: after.retrains - before.retrains,
        evictions: after.evictions - before.evictions,
        pinned: after.pinned - before.pinned,
    }
}

/// Restores the process-wide intra-op thread override on scope exit, so
/// an error mid-sweep cannot leave the rest of `exp_all` silently pinned
/// to one matmul worker.
struct ThreadPin {
    restore_to: usize,
}

impl ThreadPin {
    fn pin_to_one() -> Self {
        let configured = noble_linalg::num_threads();
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        noble_linalg::set_num_threads(1);
        ThreadPin {
            // A configured count equal to detected parallelism is
            // indistinguishable from "no override"; restore to unset.
            restore_to: if configured == available {
                0
            } else {
                configured
            },
        }
    }
}

impl Drop for ThreadPin {
    fn drop(&mut self) {
        noble_linalg::set_num_threads(self.restore_to);
    }
}

/// Drives `fixes` through the server from `clients` threads and returns
/// the wall-clock fixes/second.
///
/// With `pipeline` the clients stream: every fix is submitted before any
/// reply is awaited (devices posting asynchronously — the backlog is what
/// the worker coalesces). Without it each client is a synchronous
/// request/response loop, one fix in flight at a time — the classic
/// single-request serving discipline.
fn drive(
    server: &BatchServer,
    fixes: &[(ShardKey, Vec<f64>)],
    clients: usize,
    pipeline: bool,
) -> Result<f64, Box<dyn std::error::Error>> {
    // Pre-clone each client's slice so the timed region measures serving,
    // not allocation of the request stream.
    let slices: Vec<Vec<(ShardKey, Vec<f64>)>> = (0..clients)
        .map(|c| fixes.iter().skip(c).step_by(clients).cloned().collect())
        .collect();
    let started = Instant::now();
    std::thread::scope(|s| -> Result<(), noble_serve::ServeError> {
        let mut handles = Vec::new();
        for mine in slices {
            let client = server.client();
            handles.push(s.spawn(move || -> Result<(), noble_serve::ServeError> {
                if pipeline {
                    let pending: Result<Vec<_>, _> = mine
                        .into_iter()
                        .map(|(key, row)| client.submit(key, row))
                        .collect();
                    for p in pending? {
                        p.wait()?;
                    }
                } else {
                    for (key, row) in mine {
                        client.localize(key, row)?;
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("client thread")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(fixes.len() as f64 / elapsed)
}

/// Runs the sweep and writes `results/BENCH_serving.json`.
///
/// # Errors
///
/// Propagates dataset, training, serving and artifact-I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    // Serving cost is dominated by the fixed-width forward pass; train
    // briefly on the quick campaign but keep the paper's hidden width.
    let campaign = uji_campaign(&uji_config(Scale::Quick))?;
    let model_cfg = WifiNobleConfig {
        hidden_dim: 128,
        epochs: if scale == Scale::Quick { 2 } else { 4 },
        patience: None,
        ..WifiNobleConfig::small()
    };

    let floors = campaign
        .map
        .buildings()
        .iter()
        .map(|b| b.floors())
        .max()
        .unwrap_or(1);
    let (shard_counts, budgets_us, total_fixes, clients, reps): (
        Vec<usize>,
        Vec<u64>,
        usize,
        usize,
        usize,
    ) = match scale {
        Scale::Quick => (vec![1, 2], vec![200], 1024, 8, 2),
        Scale::Full => (vec![1, 2, 4], vec![0, 200, 1000], 4096, 8, 3),
    };
    let reference_shards = *shard_counts.last().unwrap_or(&1);
    let max_batches: Vec<usize> = match scale {
        Scale::Quick => vec![256],
        Scale::Full => vec![64, 256],
    };

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut speedup_at_reference = 0.0f64;
    let mut single_at_reference = 0.0f64;
    for &shards in &shard_counts {
        // Round-robin building-floor zones onto `shards` groups; requests
        // route with the same keyer.
        let keyer = move |s: &WifiSample| {
            if shards == 1 {
                ShardPolicy::SingleSite.key_of(s)
            } else {
                ShardKey::building((s.building * floors + s.floor) % shards)
            }
        };
        let mut registry = ShardedRegistry::train_wifi_with(
            &campaign,
            keyer,
            &model_cfg,
            &RegistryConfig::default(),
        )?;

        // Replicate test fingerprints up to the request volume.
        let features = campaign.features(&campaign.test);
        let fixes: Vec<(ShardKey, Vec<f64>)> = (0..total_fixes)
            .map(|i| {
                let j = i % features.rows();
                (keyer(&campaign.test[j]), features.row(j).to_vec())
            })
            .collect();

        let run_mode = |measurements: &mut Vec<Measurement>,
                        mode: &'static str,
                        max_batch: usize,
                        budget_us: u64,
                        pipeline: bool,
                        registry: ShardedRegistry|
         -> Result<(ShardedRegistry, f64), Box<dyn std::error::Error>> {
            let mut best = 0.0f64;
            let mut stats = Vec::new();
            let mut registry = registry;
            for _ in 0..reps {
                let server = BatchServer::start(
                    registry,
                    BatchConfig {
                        max_batch,
                        latency_budget: Duration::from_micros(budget_us),
                        idle_ttl: None,
                        ..BatchConfig::default()
                    },
                )?;
                let rate = drive(&server, &fixes, clients, pipeline)?;
                let (s, recovered) = server.shutdown_with_registry();
                registry = recovered;
                // Keep the stats of the *best* repetition so the JSON's
                // rate and batch/latency columns describe the same run.
                if rate > best {
                    best = rate;
                    stats = s;
                }
            }
            measurements.push(Measurement {
                mode,
                precision: "exact",
                shards,
                max_batch,
                budget_us,
                fixes_per_sec: best,
                shard_stats: stats,
            });
            Ok((registry, best))
        };

        // Shard workers and client threads already use every core; letting
        // each coalesced matmul *also* fan out over scoped threads
        // oversubscribes the box and erases the batching win (NOBLE_THREADS
        // still governs training above and the exp_throughput sweep).
        // Serve with intra-op parallelism pinned to one worker; the guard
        // restores the override even if a mode errors out mid-sweep.
        let pin = ThreadPin::pin_to_one();
        // Single-request serving: synchronous request/response, one fix in
        // flight per client, one inference call per fix.
        let (reg, single_rate) = run_mode(&mut measurements, "single", 1, 0, false, registry)?;
        // Streaming without coalescing isolates how much of the win comes
        // from pipelining alone vs. from the stacked inference call.
        let (reg, _) = run_mode(&mut measurements, "pipelined", 1, 0, true, reg)?;
        registry = reg;
        let mut best_batched = 0.0f64;
        for &max_batch in &max_batches {
            for &budget in &budgets_us {
                let (reg, rate) = run_mode(
                    &mut measurements,
                    "batched",
                    max_batch,
                    budget,
                    true,
                    registry,
                )?;
                registry = reg;
                best_batched = best_batched.max(rate);
            }
        }
        drop(pin);
        if shards == reference_shards {
            single_at_reference = single_rate;
            speedup_at_reference = best_batched / single_rate.max(f64::MIN_POSITIVE);
        }
        drop(registry);
    }

    // --- Mixed WiFi+IMU traffic (ROADMAP "IMU serving path"): one IMU
    // tracker shard rides the same BatchServer as the per-building WiFi
    // shards; a quarter of the fix stream is IMU path features. ---
    {
        let imu_dataset = ImuDataset::generate(&imu_config(Scale::Quick))?;
        let imu_cfg = ImuNobleConfig {
            epochs: if scale == Scale::Quick { 6 } else { 20 },
            ..ImuNobleConfig::small()
        };
        let imu_model = ImuNoble::train(&imu_dataset, &imu_cfg)?;
        let imu_refs: Vec<&ImuPathSample> = imu_dataset.test.iter().collect();
        let imu_features = imu_model.path_features(&imu_refs);
        let imu_key = ShardKey::building(1000); // disjoint from campus buildings

        let mut registry = ShardedRegistry::train_wifi(
            &campaign,
            &model_cfg,
            &RegistryConfig::default(), // per-building WiFi shards
        )?;
        let wifi_shards = registry.len();
        registry.insert(imu_key, Box::new(imu_model));

        let wifi_features = campaign.features(&campaign.test);
        let fixes: Vec<(ShardKey, Vec<f64>)> = (0..total_fixes)
            .map(|i| {
                if i % 4 == 3 {
                    let j = i % imu_features.rows();
                    (imu_key, imu_features.row(j).to_vec())
                } else {
                    let j = i % wifi_features.rows();
                    (
                        ShardPolicy::PerBuilding.key_of(&campaign.test[j]),
                        wifi_features.row(j).to_vec(),
                    )
                }
            })
            .collect();

        let pin = ThreadPin::pin_to_one();
        let max_batch = *max_batches.last().unwrap_or(&256);
        let budget_us = *budgets_us.last().unwrap_or(&200);
        let mut best = 0.0f64;
        let mut stats = Vec::new();
        for _ in 0..reps {
            let server = BatchServer::start(
                registry,
                BatchConfig {
                    max_batch,
                    latency_budget: Duration::from_micros(budget_us),
                    idle_ttl: None,
                    ..BatchConfig::default()
                },
            )?;
            let rate = drive(&server, &fixes, clients, true)?;
            let (s, recovered) = server.shutdown_with_registry();
            registry = recovered;
            if rate > best {
                best = rate;
                stats = s;
            }
        }
        drop(pin);
        measurements.push(Measurement {
            mode: "mixed-wifi-imu",
            precision: "exact",
            shards: wifi_shards + 1,
            max_batch,
            budget_us,
            fixes_per_sec: best,
            shard_stats: stats,
        });
    }

    // --- Reduced-precision serving (`BatchConfig::precision`): the same
    // streaming-batched discipline with the workers serving lowered
    // twins. Every tier's answers are gated against the exact tier
    // inline — exact must be bit-identical across reps, f32 within the
    // 1e-4 position gate, int8 within its calibrated decode bound — so
    // the `NOBLE_QUICK=1` CI smoke enforces the accuracy deltas on every
    // push, not just the throughput story. ---
    let mut f32_serving_delta = 0.0f64;
    let mut i8_serving_matches = 1.0f64;
    let mut i8_serving_mean = 0.0f64;
    {
        use noble::InferencePrecision;
        let mut registry =
            ShardedRegistry::train_wifi(&campaign, &model_cfg, &RegistryConfig::default())?;
        let precision_shards = registry.len();
        let wifi_features = campaign.features(&campaign.test);
        let fixes: Vec<(ShardKey, Vec<f64>)> = (0..total_fixes)
            .map(|i| {
                let j = i % wifi_features.rows();
                (
                    ShardPolicy::PerBuilding.key_of(&campaign.test[j]),
                    wifi_features.row(j).to_vec(),
                )
            })
            .collect();

        let pin = ThreadPin::pin_to_one();
        let max_batch = *max_batches.last().unwrap_or(&256);
        let budget_us = *budgets_us.last().unwrap_or(&200);
        let mut exact_answers: Vec<Point> = Vec::new();
        for (precision, label) in [
            (InferencePrecision::Exact, "exact"),
            (InferencePrecision::F32, "f32"),
            (InferencePrecision::Int8, "int8"),
        ] {
            let mut best = 0.0f64;
            let mut stats = Vec::new();
            for _ in 0..reps {
                let server = BatchServer::start(
                    registry,
                    BatchConfig {
                        max_batch,
                        latency_budget: Duration::from_micros(budget_us),
                        idle_ttl: None,
                        precision,
                        ..BatchConfig::default()
                    },
                )?;
                let (answers, _, rate) = drive_collect(&server, &fixes, clients)?;
                let (s, recovered) = server.shutdown_with_registry();
                // stop() hands back the exact progenitors, so each tier
                // lowers fresh from f64 state — twins never re-lower.
                registry = recovered;
                match precision {
                    InferencePrecision::Exact => {
                        if exact_answers.is_empty() {
                            exact_answers = answers;
                        } else if answers != exact_answers {
                            return Err("exact serving answers diverged between repetitions".into());
                        }
                    }
                    InferencePrecision::F32 => {
                        let delta = answers
                            .iter()
                            .zip(&exact_answers)
                            .map(|(a, b)| a.distance(*b))
                            .fold(0.0, f64::max);
                        f32_serving_delta = f32_serving_delta.max(delta);
                        if delta > 1e-4 {
                            return Err(format!(
                                "f32 serving gate failed: max position delta {delta} > 1e-4"
                            )
                            .into());
                        }
                    }
                    InferencePrecision::Int8 => {
                        let hits = answers
                            .iter()
                            .zip(&exact_answers)
                            .filter(|(a, b)| a == b)
                            .count();
                        let matches = hits as f64 / answers.len().max(1) as f64;
                        let mean = answers
                            .iter()
                            .zip(&exact_answers)
                            .map(|(a, b)| a.distance(*b))
                            .sum::<f64>()
                            / answers.len().max(1) as f64;
                        i8_serving_matches = i8_serving_matches.min(matches);
                        i8_serving_mean = i8_serving_mean.max(mean);
                        if matches < 0.9 || mean > 0.5 {
                            return Err(format!(
                                "int8 serving gate failed: match fraction {matches:.3} \
                                 (need >= 0.9), mean position delta {mean:.3} m (need <= 0.5)"
                            )
                            .into());
                        }
                    }
                }
                if rate > best {
                    best = rate;
                    stats = s;
                }
            }
            measurements.push(Measurement {
                mode: "batched",
                precision: label,
                shards: precision_shards,
                max_batch,
                budget_us,
                fixes_per_sec: best,
                shard_stats: stats,
            });
        }
        drop(pin);
        drop(registry);
    }

    // --- Demand-paged oversubscribed serving (ROADMAP "store-aware
    // BatchServer"): many more shards than the catalog budget allows
    // resident. Shard workers fault models in through the shared catalog
    // and spin down under budget pressure (LRU drains) or the idle TTL;
    // answers are asserted bit-identical to the fully-resident server
    // inline, and the JSON rows record fault / spin-down counts plus
    // cold-vs-warm latency percentiles. ---
    let mut paged_rows: Vec<PagedMeasurement> = Vec::new();
    let (paged_shards_target, paged_budget) = match scale {
        Scale::Quick => (8usize, 2usize),
        Scale::Full => (16, 4),
    };
    {
        let paged_fixes = match scale {
            Scale::Quick => 768usize,
            Scale::Full => 4096,
        };
        let shard_total = paged_shards_target;
        // Oversplit the campus into `shard_total` shards: building-floor
        // zones, each further quartered by the low mantissa bits of the
        // sample position (deterministic, and consistent between train
        // and test samples recorded at the same spot).
        let keyer = move |s: &WifiSample| {
            let zone = s.building * floors + s.floor;
            let sub = (((s.position.x.to_bits() & 1) << 1) | (s.position.y.to_bits() & 1)) as usize;
            ShardKey::building((zone * 4 + sub) % shard_total)
        };
        let registry = ShardedRegistry::train_wifi_with(
            &campaign,
            keyer,
            &model_cfg,
            &RegistryConfig::default(),
        )?;
        let registry_keys = registry.keys();
        let shard_count = registry_keys.len();

        // Snapshot every trained shard into the store the paged catalog
        // will fault from (hydration is bit-identical, so the paged
        // server serves the *same models* the resident control serves).
        let store = MemStore::new();
        registry.save_to(&store)?;
        let mut catalog = Some(ModelCatalog::with_store(
            CatalogBudget::Count(paged_budget),
            Box::new(store),
        )?);

        // Per-shard test rows under the same keyer.
        let features = campaign.features(&campaign.test);
        let mut by_shard: BTreeMap<ShardKey, Vec<Vec<f64>>> = BTreeMap::new();
        for (i, sample) in campaign.test.iter().enumerate() {
            let key = keyer(sample);
            if registry_keys.contains(&key) {
                by_shard
                    .entry(key)
                    .or_default()
                    .push(features.row(i).to_vec());
            }
        }
        let shard_keys: Vec<ShardKey> = by_shard.keys().copied().collect();

        // Uniform: blocks of `clients * 4` consecutive fixes per shard,
        // rotating round-robin — every shard revisit past the budget is
        // an evict-then-refault, with warm riders inside each block.
        let uniform: Vec<(ShardKey, Vec<f64>)> = (0..paged_fixes)
            .map(|i| {
                let key = shard_keys[(i / (clients * 4)) % shard_keys.len()];
                let rows = &by_shard[&key];
                (key, rows[i % rows.len()].clone())
            })
            .collect();
        // Skewed: shard popularity ~ 1/(rank+1) over a deterministic
        // stride — popular shards stay resident, the tail keeps faulting.
        let weights: Vec<usize> = (0..shard_keys.len()).map(|r| 1000 / (r + 1)).collect();
        let total_weight: usize = weights.iter().sum();
        let skewed: Vec<(ShardKey, Vec<f64>)> = (0..paged_fixes)
            .map(|i| {
                let mut t = (i * 7919 + 13) % total_weight;
                let mut idx = shard_keys.len() - 1;
                for (j, w) in weights.iter().enumerate() {
                    if t < *w {
                        idx = j;
                        break;
                    }
                    t -= w;
                }
                let key = shard_keys[idx];
                let rows = &by_shard[&key];
                (key, rows[i % rows.len()].clone())
            })
            .collect();

        let serve_cfg = BatchConfig {
            max_batch: 64,
            latency_budget: Duration::from_micros(200),
            idle_ttl: Some(Duration::from_millis(20)),
            ..BatchConfig::default()
        };
        let pin = ThreadPin::pin_to_one();
        let resident = BatchServer::start(registry, serve_cfg)?;
        for (mode, fixes) in [("paged-uniform", &uniform), ("paged-skewed", &skewed)] {
            let (expected, _, _) = drive_collect(&resident, fixes, clients)?;
            let paged_server =
                BatchServer::start_paged(catalog.take().expect("catalog round-trips"), serve_cfg)?;
            let catalog_before = paged_server.paged_stats().expect("paged server").catalog;
            let (answers, samples, rate) = drive_collect(&paged_server, fixes, clients)?;
            if answers != expected {
                return Err(format!(
                    "{mode}: demand-paged answers diverged from the fully-resident server"
                )
                .into());
            }
            let pstats = paged_server.paged_stats().expect("paged server");
            let (_, recovered) = paged_server.shutdown_with_catalog()?;
            catalog = Some(recovered);
            paged_rows.push(PagedMeasurement {
                mode,
                shards: shard_count,
                budget: paged_budget,
                fixes: fixes.len(),
                fixes_per_sec: rate,
                parity: true,
                faults: pstats.faults,
                idle_spin_downs: pstats.idle_spin_downs,
                drains: pstats.drains,
                parked_requests: pstats.parked_requests,
                catalog: catalog_delta(pstats.catalog, catalog_before),
                cold: LatencySummary::of(
                    samples
                        .iter()
                        .filter(|(c, _)| *c)
                        .map(|(_, l)| *l)
                        .collect(),
                ),
                warm: LatencySummary::of(
                    samples
                        .iter()
                        .filter(|(c, _)| !*c)
                        .map(|(_, l)| *l)
                        .collect(),
                ),
            });
        }
        drop(pin);
        resident.shutdown();
    }

    let mut out = String::new();
    out.push_str("SERVING: sharded micro-batching pipeline, fixes/sec end-to-end\n");
    out.push_str(&format!(
        "(hidden_dim={}, waps={}, clients={clients}, total_fixes={total_fixes}, \
         available_parallelism={available})\n\n",
        model_cfg.hidden_dim,
        campaign.num_waps()
    ));
    let mut table = TextTable::new(vec![
        "MODE".into(),
        "PRECISION".into(),
        "SHARDS".into(),
        "MAX_BATCH".into(),
        "BUDGET_US".into(),
        "FIXES/SEC".into(),
        "MEAN_BATCH".into(),
    ]);
    for m in &measurements {
        let mean_batch = if m.shard_stats.is_empty() {
            0.0
        } else {
            m.shard_stats
                .iter()
                .map(|(_, s)| s.mean_batch())
                .sum::<f64>()
                / m.shard_stats.len() as f64
        };
        table.add_row(vec![
            m.mode.to_uppercase(),
            m.precision.to_string(),
            m.shards.to_string(),
            m.max_batch.to_string(),
            m.budget_us.to_string(),
            format!("{:.0}", m.fixes_per_sec),
            format!("{mean_batch:.1}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nat {reference_shards} shard(s): batched (max_batch >= 64) = {speedup_at_reference:.2}x \
         single-request serving ({:.0} vs {:.0} fixes/sec)\n",
        speedup_at_reference * single_at_reference,
        single_at_reference,
    ));
    out.push_str(&format!(
        "precision gates: exact bit-identical across reps, f32 max delta \
         {f32_serving_delta:.2e} m (<= 1e-4), int8 match {i8_serving_matches:.3} (>= 0.9) \
         mean delta {i8_serving_mean:.3} m (<= 0.5)\n"
    ));
    if let Some(first) = paged_rows.first() {
        out.push_str(&format!(
            "\nDEMAND-PAGED (oversubscribed): {} shards under a budget of {} resident models, \
             answers bit-identical to the fully-resident server\n",
            first.shards, first.budget
        ));
        for row in &paged_rows {
            out.push_str(&format!(
                "  {:>13}: {:>7.0} fixes/sec | faults={} drains={} idle_spin_downs={} \
                 hydrations={} | cold p50/p99 = {}/{} us ({} fixes) | \
                 warm p50/p99 = {}/{} us ({} fixes)\n",
                row.mode,
                row.fixes_per_sec,
                row.faults,
                row.drains,
                row.idle_spin_downs,
                row.catalog.hydrations,
                row.cold.p50_us,
                row.cold.p99_us,
                row.cold.count,
                row.warm.p50_us,
                row.warm.p99_us,
                row.warm.count,
            ));
        }
    }

    let json = format!(
        "{{\n  \"available_parallelism\": {available},\n  \"hidden_dim\": {},\n  \
         \"num_waps\": {},\n  \"clients\": {clients},\n  \"total_fixes\": {total_fixes},\n  \
         \"reference_shards\": {reference_shards},\n  \
         \"speedup_batched_vs_single\": {speedup_at_reference:.3},\n  \
         \"precision_gates\": {{\"f32_max_position_delta\": {f32_serving_delta:.6e}, \
         \"int8_match_fraction\": {i8_serving_matches:.4}, \
         \"int8_mean_position_delta\": {i8_serving_mean:.4}}},\n  \
         \"measurements\": [\n{}\n  ],\n  \
         \"paged_budget\": {paged_budget},\n  \
         \"paged\": [\n{}\n  ]\n}}\n",
        model_cfg.hidden_dim,
        campaign.num_waps(),
        measurements
            .iter()
            .map(Measurement::json)
            .collect::<Vec<_>>()
            .join(",\n"),
        paged_rows
            .iter()
            .map(PagedMeasurement::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = write_artifact("BENCH_serving.json", &json)?;
    out.push_str(&format!("wrote {}\n", path.display()));

    println!("{out}");
    Ok(out)
}
