//! Table III: IMU tracking end-position errors.
//!
//! Paper values: Deep Regression 10.41/10.05, map-heuristic system \[8\]
//! 4.3/–, NObLe 2.52/0.4 (mean/median meters). Shape criteria: NObLe <
//! map-assisted dead reckoning < deep regression; NObLe median ≪ mean.

use crate::config::{imu_config, imu_noble_config, imu_regression_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::imu::baselines::{DeadReckoning, ImuDeepRegression, MapAssistedDeadReckoning};
use noble::imu::ImuNoble;
use noble::report::{meters, TextTable};
use noble_datasets::ImuDataset;

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run(scale: Scale) -> RunnerResult {
    let dataset = ImuDataset::generate(&imu_config(scale))?;

    let mut regression = ImuDeepRegression::train(&dataset, &imu_regression_config(scale))?;
    let regression_summary = regression.evaluate(&dataset.test)?;

    let dead_reckoning = DeadReckoning::evaluate(&dataset.test)?;
    let map_assisted = MapAssistedDeadReckoning::evaluate(&dataset, &dataset.test)?;

    let mut noble_model = ImuNoble::train(&dataset, &imu_noble_config(scale))?;
    let noble_report = noble_model.evaluate(&dataset, &dataset.test)?;

    let mut table = TextTable::new(vec![
        "MODEL".into(),
        "MEAN".into(),
        "MEDIAN".into(),
        "PAPER MEAN".into(),
        "PAPER MEDIAN".into(),
    ]);
    table.add_row(vec![
        "DEEP REGRESSION MODEL".into(),
        meters(regression_summary.mean),
        meters(regression_summary.median),
        "10.41".into(),
        "10.05".into(),
    ]);
    table.add_row(vec![
        "DEAD RECKONING (ref)".into(),
        meters(dead_reckoning.mean),
        meters(dead_reckoning.median),
        "-".into(),
        "-".into(),
    ]);
    table.add_row(vec![
        "MAP-ASSISTED DR (paper [8])".into(),
        meters(map_assisted.mean),
        meters(map_assisted.median),
        "4.30".into(),
        "N/A".into(),
    ]);
    table.add_row(vec![
        "NOBLE".into(),
        meters(noble_report.position_error.mean),
        meters(noble_report.position_error.median),
        "2.52".into(),
        "0.40".into(),
    ]);

    let mut out = String::new();
    out.push_str("TABLE III: position error distance (m) for IMU tracking\n");
    out.push_str(&format!(
        "paths: train={} val={} test={} | refs={} | end classes={}\n\n",
        dataset.train.len(),
        dataset.val.len(),
        dataset.test.len(),
        dataset.reference_points.len(),
        noble_model.quantizer().num_classes()
    ));
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "NObLe end-class accuracy {:.2}% | structure: {}\n",
        noble_report.class_accuracy * 100.0,
        noble_report.structure
    ));
    println!("{out}");
    Ok(out)
}
