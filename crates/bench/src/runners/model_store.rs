//! Model-lifecycle economics: cold-train vs hydrate-from-disk vs
//! resident-hit, and the cost of eviction thrash.
//!
//! The sharded serving engine can now retire cold shard models to a
//! [`noble_serve::ModelStore`] and bring them back on demand. This
//! runner prices the three ways a request can find its model:
//!
//! - **cold-train** — no snapshot anywhere: train from the `TrainSpec`
//!   (the price every shard paid before the model lifecycle existed),
//! - **hydrate** — read + checksum + decode a snapshot from an
//!   [`noble_serve::FsStore`] ([`noble::hydrate`] is bit-identical to
//!   the trained model, so this is pure speedup),
//! - **resident hit** — the model is already in memory.
//!
//! Each shard also saves under the compact
//! [`noble::ParamEncoding::F32`] snapshot encoding; the row records the
//! shrink factor and the runner aborts unless the compact round trip
//! stays within the 1e-4 position gate.
//!
//! Plus the failure mode budgets must be sized against: **eviction
//! thrash**, a [`noble_serve::ModelCatalog`] with budget 1 serving
//! round-robin traffic over N shards (every request faults), compared
//! with a budget of N (every request hits). Results go to stdout and
//! `results/BENCH_model_store.json`. [`Scale::Quick`] shrinks the sweep
//! for CI smoke runs.

use crate::config::uji_config;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::report::TextTable;
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::{hydrate, Localizer, ParamEncoding, SnapshotLocalizer};
use noble_datasets::uji_campaign;
use noble_serve::{
    partition_campaign, shard_seed, CatalogBudget, FsStore, ModelCatalog, ModelStore,
    RegistryConfig, ShardKey, ShardPolicy, TrainSpec,
};
use std::time::Instant;

/// Per-shard lifecycle timings (milliseconds).
struct ShardMeasurement {
    key: ShardKey,
    train_ms: f64,
    save_ms: f64,
    snapshot_bytes: usize,
    /// Same model under [`ParamEncoding::F32`] (compact parameter
    /// blobs); gated to round-trip within 1e-4 position error.
    compact_bytes: usize,
    compact_max_delta: f64,
    hydrate_ms: f64,
    resident_localize_us: f64,
}

/// Catalog throughput under a budget (single-fix requests/second).
struct ThrashMeasurement {
    budget: usize,
    shards: usize,
    fixes_per_sec: f64,
    hydrations: u64,
    retrains: u64,
    evictions: u64,
}

/// Runs the sweep and writes `results/BENCH_model_store.json`.
///
/// # Errors
///
/// Propagates dataset, training, store and artifact-I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(Scale::Quick))?;
    let model_cfg = WifiNobleConfig {
        epochs: if scale == Scale::Quick { 2 } else { 6 },
        patience: None,
        ..WifiNobleConfig::small()
    };
    let reg_cfg = RegistryConfig::default();
    let thrash_rounds = if scale == Scale::Quick { 3 } else { 10 };

    // Scratch store under target/ (never committed, safe to clobber).
    let store_dir = std::path::Path::new("target").join("tmp-model-store-bench");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = FsStore::open(&store_dir)?;

    let parts = partition_campaign(
        &campaign,
        |s| ShardPolicy::PerBuilding.key_of(s),
        reg_cfg.max_train_samples_per_shard,
    );
    let features = campaign.features(&campaign.test);
    let probe = features.clone();

    // --- Per-shard lifecycle: train, save, hydrate, serve. ---
    let mut shard_rows: Vec<ShardMeasurement> = Vec::new();
    for (key, shard) in &parts {
        let mut cfg = model_cfg.clone();
        cfg.seed = shard_seed(model_cfg.seed, *key);

        let t0 = Instant::now();
        let mut model = WifiNoble::train(shard, &cfg)?;
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let snapshot = SnapshotLocalizer::snapshot(&model);
        store.put(*key, &snapshot)?;
        let save_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let restored = store.get(*key)?.expect("just stored");
        let mut twin = hydrate(&restored)?;
        let hydrate_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Parity is pinned by the test suites; assert cheaply here so a
        // benchmark run can never silently measure a divergent model.
        let a = Localizer::localize_batch(&mut model, &probe)?;
        let b = twin.localize_batch(&probe)?;
        assert_eq!(a, b, "hydrated shard {key} diverged from trained model");

        // Compact f32 parameter encoding: the snapshot shrinks to
        // roughly half (parameter blobs dominate the payload) and the
        // round trip must stay inside the f32 position gate — a
        // violation aborts the runner, so the CI smoke enforces it.
        let compact = model.snapshot_with(ParamEncoding::F32);
        let compact_bytes = compact.encoded_len();
        let mut compact_twin = hydrate(&compact)?;
        let c = compact_twin.localize_batch(&probe)?;
        let compact_max_delta = a
            .iter()
            .zip(&c)
            .map(|(x, y)| x.distance(*y))
            .fold(0.0, f64::max);
        if compact_max_delta > 1e-4 {
            return Err(format!(
                "shard {key}: compact f32 snapshot round trip drifted \
                 {compact_max_delta} m (> 1e-4 gate)"
            )
            .into());
        }

        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            twin.localize_batch(&probe)?;
        }
        let resident_localize_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);

        shard_rows.push(ShardMeasurement {
            key: *key,
            train_ms,
            save_ms,
            snapshot_bytes: snapshot.encoded_len(),
            compact_bytes,
            compact_max_delta,
            hydrate_ms,
            resident_localize_us,
        });
    }

    // --- Eviction thrash: budget 1 (every request faults and evicts)
    //     vs budget N (every request hits). The store already holds all
    //     shards, so budget-1 faults hydrate rather than retrain. ---
    let shard_count = parts.len();
    let single_fixes: Vec<(ShardKey, Vec<f64>)> = (0..(shard_count * thrash_rounds))
        .map(|i| {
            let key = *parts.keys().nth(i % shard_count).expect("key in range");
            let row = features.row(i % features.rows()).to_vec();
            (key, row)
        })
        .collect();
    let mut thrash_rows: Vec<ThrashMeasurement> = Vec::new();
    for budget in [1usize, shard_count] {
        let mut catalog = ModelCatalog::with_store(
            CatalogBudget::Count(budget),
            Box::new(FsStore::open(&store_dir)?),
        )?;
        // Register specs too so the runner exercises the full fallback
        // chain (store first, spec only if the store were emptied).
        for (key, shard) in &parts {
            catalog.register_spec(
                *key,
                TrainSpec::Wifi {
                    campaign: shard.clone(),
                    cfg: model_cfg.clone(),
                },
            );
        }
        let t0 = Instant::now();
        for (key, row) in &single_fixes {
            let m = noble_linalg::Matrix::from_rows(std::slice::from_ref(row))
                .expect("one well-formed row");
            catalog.localize(*key, &m)?;
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        let stats = catalog.stats();
        thrash_rows.push(ThrashMeasurement {
            budget,
            shards: shard_count,
            fixes_per_sec: single_fixes.len() as f64 / elapsed,
            hydrations: stats.hydrations,
            retrains: stats.retrains,
            evictions: stats.evictions,
        });
    }

    // --- Report. ---
    let mut out = String::new();
    out.push_str("MODEL STORE: cold-train vs hydrate-from-disk vs resident-hit\n");
    out.push_str(&format!(
        "(shards={shard_count}, test_fixes={}, store={})\n\n",
        features.rows(),
        store_dir.display()
    ));
    let mut table = TextTable::new(vec![
        "SHARD".into(),
        "TRAIN_MS".into(),
        "SAVE_MS".into(),
        "SNAP_KB".into(),
        "F32_KB".into(),
        "SHRINK".into(),
        "HYDRATE_MS".into(),
        "SPEEDUP".into(),
        "LOCALIZE_US".into(),
    ]);
    for m in &shard_rows {
        table.add_row(vec![
            m.key.to_string(),
            format!("{:.1}", m.train_ms),
            format!("{:.2}", m.save_ms),
            format!("{:.1}", m.snapshot_bytes as f64 / 1024.0),
            format!("{:.1}", m.compact_bytes as f64 / 1024.0),
            format!(
                "{:.2}x",
                m.snapshot_bytes as f64 / m.compact_bytes.max(1) as f64
            ),
            format!("{:.2}", m.hydrate_ms),
            format!("{:.0}x", m.train_ms / m.hydrate_ms.max(1e-9)),
            format!("{:.0}", m.resident_localize_us),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut table = TextTable::new(vec![
        "BUDGET".into(),
        "SHARDS".into(),
        "FIXES/SEC".into(),
        "HYDRATIONS".into(),
        "RETRAINS".into(),
        "EVICTIONS".into(),
    ]);
    for t in &thrash_rows {
        table.add_row(vec![
            t.budget.to_string(),
            t.shards.to_string(),
            format!("{:.0}", t.fixes_per_sec),
            t.hydrations.to_string(),
            t.retrains.to_string(),
            t.evictions.to_string(),
        ]);
    }
    out.push_str(&table.render());
    println!("{out}");

    let shard_json: Vec<String> = shard_rows
        .iter()
        .map(|m| {
            format!(
                "    {{\"shard\": \"{}\", \"train_ms\": {:.3}, \"save_ms\": {:.3}, \
                 \"snapshot_bytes\": {}, \"compact_f32_bytes\": {}, \
                 \"compact_f32_max_position_delta\": {:.6e}, \"hydrate_ms\": {:.3}, \
                 \"hydrate_speedup\": {:.1}, \"resident_localize_us\": {:.1}}}",
                m.key,
                m.train_ms,
                m.save_ms,
                m.snapshot_bytes,
                m.compact_bytes,
                m.compact_max_delta,
                m.hydrate_ms,
                m.train_ms / m.hydrate_ms.max(1e-9),
                m.resident_localize_us
            )
        })
        .collect();
    let thrash_json: Vec<String> = thrash_rows
        .iter()
        .map(|t| {
            format!(
                "    {{\"budget\": {}, \"shards\": {}, \"fixes_per_sec\": {:.1}, \
                 \"hydrations\": {}, \"retrains\": {}, \"evictions\": {}}}",
                t.budget, t.shards, t.fixes_per_sec, t.hydrations, t.retrains, t.evictions
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"model_store\",\n  \"shards\": [\n{}\n  ],\n  \
         \"thrash\": [\n{}\n  ]\n}}\n",
        shard_json.join(",\n"),
        thrash_json.join(",\n")
    );
    write_artifact("BENCH_model_store.json", &json)?;

    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(out)
}
