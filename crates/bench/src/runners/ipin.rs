//! §IV-B (text numbers): the IPIN-like single-building site.
//!
//! Paper values: NObLe mean 1.13 m / median 0.046 m; Deep Regression mean
//! 3.83 m; site leaderboard best 3.71 m. Shape criteria: NObLe mean well
//! below Deep Regression; NObLe median near zero.

use crate::config::{ipin_config, regression_config, wifi_noble_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::report::{meters, TextTable};
use noble::wifi::baselines::DeepRegression;
use noble::wifi::WifiNoble;
use noble_datasets::ipin_campaign;

/// Runs the experiment and renders the report.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = ipin_campaign(&ipin_config(scale))?;

    let mut noble_cfg = wifi_noble_config(scale);
    // Single small building: finer grid is affordable.
    noble_cfg.tau = match scale {
        Scale::Full => 0.5,
        Scale::Quick => 2.0,
    };
    noble_cfg.coarse_l = Some(noble_cfg.tau * 8.0);
    let mut noble_model = WifiNoble::train(&campaign, &noble_cfg)?;
    let noble_report = noble_model.evaluate(&campaign, &campaign.test)?;

    let mut regression = DeepRegression::train(&campaign, &regression_config(scale))?;
    let regression_summary = regression.evaluate(&campaign, &campaign.test, false)?;

    let mut table = TextTable::new(vec![
        "MODEL".into(),
        "MEAN".into(),
        "MEDIAN".into(),
        "PAPER MEAN".into(),
        "PAPER MEDIAN".into(),
    ]);
    table.add_row(vec![
        "NOBLE".into(),
        meters(noble_report.position_error.mean),
        meters(noble_report.position_error.median),
        "1.13".into(),
        "0.046".into(),
    ]);
    table.add_row(vec![
        "DEEP REGRESSION".into(),
        meters(regression_summary.mean),
        meters(regression_summary.median),
        "3.83".into(),
        "-".into(),
    ]);

    let mut out = String::new();
    out.push_str("IPIN-like single building (paper §IV-B text)\n");
    out.push_str(&format!(
        "train={} test={} waps={} | site leaderboard best (paper): 3.71 m mean\n\n",
        campaign.train.len(),
        campaign.test.len(),
        campaign.num_waps()
    ));
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "building acc {:.2}% floor acc {:.2}% | structure: {}\n",
        noble_report.building_accuracy * 100.0,
        noble_report.floor_accuracy * 100.0,
        noble_report.structure
    ));
    println!("{out}");
    Ok(out)
}
