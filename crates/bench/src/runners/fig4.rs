//! Fig. 4: predicted-coordinate scatter of the four models.
//!
//! The paper shows Deep Regression spraying predictions off-map (including
//! into courtyards), Regression Projection and Isomap regression
//! intermediate, and NObLe tracing the building rings sharply. This runner
//! dumps one CSV per model and prints the structure metrics that make the
//! visual claim quantitative: on-map fraction and mean off-map distance.
//! Expected ordering: NObLe ≈ Projection > Isomap ≈ LLE > Deep Regression
//! on on-map fraction.

use crate::config::{manifold_config, regression_config, uji_config, wifi_noble_config};
use crate::runners::fig1::csv_points;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::eval::StructureReport;
use noble::report::TextTable;
use noble::wifi::baselines::{DeepRegression, ManifoldKind, ManifoldRegression};
use noble::wifi::WifiNoble;
use noble_datasets::uji_campaign;
use noble_geo::Point;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates dataset, training and I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let features = campaign.features(&campaign.test);

    let mut regression = DeepRegression::train(&campaign, &regression_config(scale))?;
    let raw = regression.predict(&features)?;
    let projected = regression.predict_projected(&features, &campaign)?;

    let mut isomap =
        ManifoldRegression::train(&campaign, &manifold_config(scale, ManifoldKind::Isomap))?;
    let isomap_preds = isomap.predict(&features)?;

    let mut noble_model = WifiNoble::train(&campaign, &wifi_noble_config(scale))?;
    let noble_preds: Vec<Point> = noble_model
        .predict(&features)?
        .into_iter()
        .map(|p| p.position)
        .collect();

    let models: Vec<(&str, &Vec<Point>)> = vec![
        ("deep_regression", &raw),
        ("regression_projection", &projected),
        ("isomap_regression", &isomap_preds),
        ("noble", &noble_preds),
    ];

    let mut table = TextTable::new(vec![
        "MODEL (Fig. 4 panel)".into(),
        "ON-MAP %".into(),
        "MEAN OFF-MAP (M)".into(),
        "MAX OFF-MAP (M)".into(),
    ]);
    let mut out = String::new();
    out.push_str("FIG 4: predicted coordinates, structure metrics per panel\n\n");
    for (name, preds) in &models {
        let csv = csv_points("x,y", preds);
        let path = write_artifact(&format!("fig4_{name}.csv"), &csv)?;
        let report = StructureReport::compute(preds, &campaign.map)?;
        table.add_row(vec![
            name.to_string(),
            format!("{:.1}", report.on_map_fraction * 100.0),
            format!("{:.2}", report.mean_off_map_distance),
            format!("{:.2}", report.max_off_map_distance),
        ]);
        out.push_str(&format!("csv: {}\n", path.display()));
    }
    out.push('\n');
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}
