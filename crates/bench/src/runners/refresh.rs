//! Online refresh under fingerprint drift: does live retraining buy
//! accuracy back, and what does the swap cost the serving path?
//!
//! Production WiFi maps drift — APs are moved, re-tuned, obstructed —
//! and a frozen model's error grows. The serving stack's answer is the
//! versioned refresh loop ([`noble_serve::Refresher`]): corrections
//! stream into a bounded buffer, a retrain runs off the serving path,
//! and the new version swaps in atomically at a batch boundary. This
//! runner measures the whole loop on one shard:
//!
//! - **accuracy vs drift** — a deterministic per-WAP RSSI bias is
//!   injected into the online fingerprints; the frozen (version 0)
//!   model and the refreshed (version 1) model are both evaluated on
//!   the drifted and the clean held-out splits. Gate: the refreshed
//!   model must beat the frozen model on drifted traffic.
//! - **swap cost** — the off-path retrain+activate time, plus the
//!   *pickup* time from activation until the hot worker demonstrably
//!   serves the new version (its canary answer flips).
//! - **serving p99 during refresh** — client threads hammer the shard
//!   throughout the concurrent retrain; the p99 must stay bounded
//!   (gate: < 250 ms), because refresh runs entirely off-path and the
//!   swap itself is one pending-slot pickup at a batch boundary.
//! - **rollback parity** — rolling back to version 0 must reproduce the
//!   frozen canary answer bit-for-bit.
//!
//! Results go to stdout and `results/BENCH_refresh.json`.
//! [`Scale::Quick`] shrinks the workload for CI smoke runs.

use crate::config::uji_config;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::report::TextTable;
use noble::wifi::WifiNobleConfig;
use noble_datasets::{uji_campaign, WifiCampaign, WifiSample};
use noble_serve::{
    partition_campaign, BatchConfig, BatchServer, CatalogBudget, ModelCatalog, RefreshConfig,
    Refresher, RegistryConfig, ServeClient, ShardKey, ShardPolicy,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Deterministic per-WAP drift bias in dB (SplitMix64-style hash of the
/// WAP index), in `[-drift_db, drift_db)`. No RNG state: the same WAP
/// always drifts the same way, so every phase sees the identical world.
fn wap_bias(wap: usize, drift_db: f64) -> f64 {
    let mut z = (wap as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    (unit * 2.0 - 1.0) * drift_db
}

/// Applies the drift field to a sample's raw RSSI.
fn drifted(sample: &WifiSample, drift_db: f64) -> WifiSample {
    let mut s = sample.clone();
    for (w, v) in s.rssi.iter_mut().enumerate() {
        *v += wap_bias(w, drift_db);
    }
    s
}

/// Mean position error of serving `samples` (featurized by `campaign`)
/// through the live server.
fn mean_error(
    client: &ServeClient,
    campaign: &WifiCampaign,
    key: ShardKey,
    samples: &[WifiSample],
) -> Result<f64, Box<dyn std::error::Error>> {
    let features = campaign.features(samples);
    let mut total = 0.0;
    for (i, sample) in samples.iter().enumerate() {
        let fix = client.localize(key, features.row(i).to_vec())?;
        total += fix.distance(sample.position);
    }
    Ok(total / samples.len().max(1) as f64)
}

/// Latency percentile summary of one serving phase.
struct LatencySummary {
    count: usize,
    p50_us: u128,
    p99_us: u128,
    max_us: u128,
}

impl LatencySummary {
    fn of(mut samples: Vec<u128>) -> Self {
        samples.sort_unstable();
        let pick = |pct: f64| -> u128 {
            if samples.is_empty() {
                return 0;
            }
            let idx = ((samples.len() as f64 - 1.0) * pct).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        LatencySummary {
            count: samples.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count, self.p50_us, self.p99_us, self.max_us
        )
    }
}

/// Hammers `key` with rotating probes until `stop` is set, recording
/// per-request end-to-end latencies.
fn hammer(
    client: &ServeClient,
    key: ShardKey,
    probes: &[Vec<f64>],
    stop: &AtomicBool,
) -> Vec<u128> {
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        if client
            .localize(key, probes[i % probes.len()].clone())
            .is_err()
        {
            break;
        }
        latencies.push(t0.elapsed().as_micros());
        i += 1;
    }
    latencies
}

/// Runs the drift/refresh sweep and writes `results/BENCH_refresh.json`.
///
/// # Errors
///
/// Propagates dataset, training, serving and artifact-I/O failures, and
/// aborts when a gate fails: refreshed accuracy must beat the frozen
/// model under drift, the swap must be picked up promptly, serving p99
/// must stay bounded during the concurrent retrain, and rollback must
/// be bit-exact.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let model_cfg = WifiNobleConfig {
        epochs: if scale == Scale::Quick { 2 } else { 6 },
        patience: None,
        ..WifiNobleConfig::small()
    };
    let reg_cfg = RegistryConfig::default();
    let drift_db = 5.0;
    let (eval_n, correction_n, clients) = match scale {
        Scale::Quick => (40, 120, 2),
        Scale::Full => (150, 400, 4),
    };

    // One refreshed shard; the partition mirrors the registry policy so
    // the shard's own splits drive both corrections and evaluation.
    let parts = partition_campaign(
        &campaign,
        |s| ShardPolicy::PerBuilding.key_of(s),
        reg_cfg.max_train_samples_per_shard,
    );
    let (key, shard) = parts.iter().next().ok_or("campaign produced no shards")?;
    let key = *key;

    let clean_eval: Vec<WifiSample> = shard.test.iter().take(eval_n).cloned().collect();
    let drifted_eval: Vec<WifiSample> = clean_eval.iter().map(|s| drifted(s, drift_db)).collect();
    // Corrections: a surveyor re-walking the reference points in the
    // drifted world — drifted fingerprints with surveyed true positions.
    let corrections: Vec<WifiSample> = shard
        .train
        .iter()
        .take(correction_n)
        .map(|s| drifted(s, drift_db))
        .collect();
    if clean_eval.is_empty() || corrections.is_empty() {
        return Err("shard has no evaluation or correction samples".into());
    }

    let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded)?;
    catalog.register_wifi_campaign(&campaign, &model_cfg, &reg_cfg)?;
    let server = BatchServer::start_paged(
        catalog,
        BatchConfig {
            max_batch: 16,
            latency_budget: Duration::from_micros(200),
            ..BatchConfig::default()
        },
    )?;
    let refresher: Refresher = server.refresher(RefreshConfig::default())?;
    let client = server.client();

    // --- Frozen model (version 0) under drift. ---
    let frozen_clean = mean_error(&client, &campaign, key, &clean_eval)?;
    let frozen_drifted = mean_error(&client, &campaign, key, &drifted_eval)?;
    let canary = campaign.features(&drifted_eval[..1]).row(0).to_vec();
    let canary_v0 = client.localize(key, canary.clone())?;

    // --- Baseline serving latency (no refresh in flight). ---
    let storm_probes: Vec<Vec<f64>> = {
        let features = campaign.features(&drifted_eval);
        (0..drifted_eval.len())
            .map(|i| features.row(i).to_vec())
            .collect()
    };
    let baseline = {
        let stop = AtomicBool::new(false);
        let lat: Vec<Vec<u128>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|_| {
                    let c = server.client();
                    let (probes, stop) = (&storm_probes, &stop);
                    scope.spawn(move || hammer(&c, key, probes, stop))
                })
                .collect();
            std::thread::sleep(Duration::from_millis(if scale == Scale::Quick {
                150
            } else {
                600
            }));
            stop.store(true, Ordering::Relaxed);
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        LatencySummary::of(lat.into_iter().flatten().collect())
    };

    // --- Concurrent refresh: retrain + activate while clients hammer. -
    for s in &corrections {
        refresher.observe_correction(key, s.rssi.clone(), s.position)?;
    }
    let stop = AtomicBool::new(false);
    let mut refresh_ms = 0.0;
    let mut swap_pickup_us: u128 = 0;
    let mut outcome_version = 0;
    let lat: Vec<Vec<u128>> = std::thread::scope(
        |scope| -> Result<Vec<Vec<u128>>, Box<dyn std::error::Error>> {
            let workers: Vec<_> = (0..clients)
                .map(|_| {
                    let c = server.client();
                    let (probes, stop) = (&storm_probes, &stop);
                    scope.spawn(move || hammer(&c, key, probes, stop))
                })
                .collect();
            let t0 = Instant::now();
            let outcome = refresher.refresh(key)?;
            refresh_ms = t0.elapsed().as_secs_f64() * 1e3;
            outcome_version = outcome.version;
            // Pickup: poll the canary until the hot worker's answer
            // flips to the new generation (swap at a batch boundary).
            let t0 = Instant::now();
            loop {
                if client.localize(key, canary.clone())? != canary_v0 {
                    swap_pickup_us = t0.elapsed().as_micros();
                    break;
                }
                if t0.elapsed() > Duration::from_secs(5) {
                    return Err("swap not picked up within 5 s (gate)".into());
                }
            }
            stop.store(true, Ordering::Relaxed);
            Ok(workers
                .into_iter()
                .map(|w| w.join().expect("hammer thread"))
                .collect())
        },
    )?;
    let during = LatencySummary::of(lat.into_iter().flatten().collect());

    // --- Refreshed model (version 1) under the same drift. ---
    let refreshed_clean = mean_error(&client, &campaign, key, &clean_eval)?;
    let refreshed_drifted = mean_error(&client, &campaign, key, &drifted_eval)?;

    // --- Rollback parity: version 0's canary answer, bit-for-bit. ---
    refresher.rollback(key, 0)?;
    let rolled = client.localize(key, canary.clone())?;
    if rolled != canary_v0 {
        return Err(format!(
            "rollback broke bit-parity: canary {rolled} != frozen {canary_v0} (gate)"
        )
        .into());
    }
    refresher.rollback(key, outcome_version)?;
    let versions = refresher.versions(key)?;

    // --- Gates. ---
    if refreshed_drifted >= frozen_drifted {
        return Err(format!(
            "refresh did not recover drift accuracy: refreshed {refreshed_drifted:.2} m \
             >= frozen {frozen_drifted:.2} m (gate)"
        )
        .into());
    }
    if during.p99_us > 250_000 {
        return Err(format!(
            "serving p99 during refresh {} us exceeds the 250 ms gate",
            during.p99_us
        )
        .into());
    }

    // --- Report. ---
    let mut out = String::new();
    out.push_str("ONLINE REFRESH: accuracy under drift, swap cost, serving impact\n");
    out.push_str(&format!(
        "(shard={key}, drift={drift_db} dB, corrections={}, eval={}, clients={clients})\n\n",
        corrections.len(),
        clean_eval.len()
    ));
    let mut table = TextTable::new(vec![
        "MODEL".into(),
        "VERSION".into(),
        "CLEAN_ERR_M".into(),
        "DRIFTED_ERR_M".into(),
    ]);
    table.add_row(vec![
        "frozen".into(),
        "0".into(),
        format!("{frozen_clean:.2}"),
        format!("{frozen_drifted:.2}"),
    ]);
    table.add_row(vec![
        "refreshed".into(),
        outcome_version.to_string(),
        format!("{refreshed_clean:.2}"),
        format!("{refreshed_drifted:.2}"),
    ]);
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&format!(
        "refresh (off-path retrain+activate): {refresh_ms:.1} ms; \
         swap pickup at batch boundary: {swap_pickup_us} us\n"
    ));
    out.push_str(&format!(
        "serving p99: baseline {} us -> during refresh {} us (gate < 250000)\n",
        baseline.p99_us, during.p99_us
    ));
    out.push_str(&format!("archived versions: {versions:?}\n"));
    println!("{out}");

    let json = format!(
        "{{\n  \"experiment\": \"refresh\",\n  \"shard\": \"{key}\",\n  \
         \"drift_db\": {drift_db},\n  \"corrections\": {},\n  \"eval_samples\": {},\n  \
         \"accuracy\": [\n    {{\"phase\": \"frozen\", \"version\": 0, \
         \"clean_err_m\": {frozen_clean:.4}, \"drifted_err_m\": {frozen_drifted:.4}}},\n    \
         {{\"phase\": \"refreshed\", \"version\": {outcome_version}, \
         \"clean_err_m\": {refreshed_clean:.4}, \"drifted_err_m\": {refreshed_drifted:.4}}}\n  ],\n  \
         \"refresh\": {{\"train_activate_ms\": {refresh_ms:.2}, \
         \"swap_pickup_us\": {swap_pickup_us}, \"archived_versions\": {versions:?}, \
         \"refresh_swaps\": {}}},\n  \
         \"latency\": {{\"baseline\": {}, \"during_refresh\": {}}}\n}}\n",
        corrections.len(),
        clean_eval.len(),
        server.paged_stats().map_or(0, |p| p.refresh_swaps),
        baseline.json(),
        during.json()
    );
    write_artifact("BENCH_refresh.json", &json)?;
    server.shutdown();
    Ok(out)
}
