//! Network-edge overload behavior: open-loop goodput and shed curves.
//!
//! `exp_serving` measures the batch tier from in-process clients that
//! politely wait their turn; this runner measures the wire-protocol
//! edge (`noble-net`) the way production traffic hits it — **open
//! loop**, with Poisson arrivals that keep coming whether or not the
//! server is keeping up. The backend is capacity-pinned: each shard's
//! localizer costs a fixed `busy` sleep per fix, so peak service rate
//! is known exactly (`service_threads / busy`) and the sweep's offered
//! loads are expressed as multiples of it.
//!
//! Two measurement families:
//!
//! 1. **Overload sweep** — one tenant offers 0.25x … 3x of capacity
//!    through a `NetServer` with a bounded admission queue. Per point:
//!    offered/served/shed counts, goodput, and accepted-request latency
//!    percentiles (p50/p99/p999). Past saturation the edge must *shed*,
//!    not queue: the *SLO gate* asserts — not just plots — that every
//!    ≥2x point sheds with typed rejections, keeps goodput at ≥80% of
//!    the sweep's peak, and holds accepted p99 under the queueing bound
//!    implied by the admission watermark.
//! 2. **Fairness pair** — a quiet tenant (5% of capacity) shares the
//!    edge with a 30x-hotter tenant driving it past saturation. The
//!    deficit-round-robin dispatcher plus per-tenant quotas must keep
//!    the quiet tenant's goodput ≥80% while the hot tenant takes all
//!    the quota sheds — also asserted.
//!
//! Results go to stdout and `results/BENCH_net.json`. [`Scale::Quick`]
//! shrinks durations and rates for CI smoke runs.

use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::{Localizer, LocalizerInfo, NobleError};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_net::{
    run_open_loop, Backend, LoadConfig, NetConfig, NetServer, StatsResponse, TenantLoad,
    TenantOutcome, WireShard,
};
use noble_serve::{BatchConfig, BatchServer, ShardKey, ShardedRegistry};
use std::time::Duration;

/// Fixed-cost localizer: every fix burns exactly `busy` of wall clock,
/// pinning the backend's service rate so offered-load multipliers mean
/// what they say.
struct FixedCostLocalizer {
    dim: usize,
    busy: Duration,
}

impl Localizer for FixedCostLocalizer {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "fixed-cost",
            site: "bench".into(),
            feature_dim: self.dim,
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        std::thread::sleep(self.busy);
        Ok(vec![Point::new(1.0, 2.0); features.rows()])
    }
}

/// Sweep sizing at a given scale.
struct NetBenchConfig {
    /// Per-fix service cost.
    busy: Duration,
    /// Edge service workers (the in-flight window into the batch tier).
    service_threads: usize,
    /// Global admission watermark.
    max_queue: usize,
    /// Per-tenant queue bound for the sweep.
    tenant_queue: usize,
    /// Open-loop schedule length per sweep point.
    point_duration: Duration,
    /// Fairness run schedule length.
    fairness_duration: Duration,
}

impl NetBenchConfig {
    fn at(scale: Scale) -> Self {
        match scale {
            // ~1000 fixes/s capacity, 400 ms points: seconds total.
            Scale::Quick => NetBenchConfig {
                busy: Duration::from_millis(2),
                service_threads: 2,
                max_queue: 32,
                tenant_queue: 32,
                point_duration: Duration::from_millis(400),
                fairness_duration: Duration::from_millis(600),
            },
            // ~4000 fixes/s capacity, 2 s points.
            Scale::Full => NetBenchConfig {
                busy: Duration::from_millis(1),
                service_threads: 4,
                max_queue: 64,
                tenant_queue: 64,
                point_duration: Duration::from_secs(2),
                fairness_duration: Duration::from_secs(3),
            },
        }
    }

    /// Deterministic peak service rate, fixes/second.
    fn capacity_rps(&self) -> f64 {
        self.service_threads as f64 / self.busy.as_secs_f64()
    }

    /// Accepted-request p99 bound: worst admission-queue drain time
    /// (`max_queue` requests across the worker pool) plus the service
    /// cost, with generous slack for socket and scheduler jitter.
    fn p99_bound_us(&self) -> u64 {
        let queue_drain = self.busy.as_micros() as u64
            * (self.max_queue as u64 / self.service_threads as u64 + 1);
        5 * queue_drain + 100_000
    }
}

const FEATURE_DIM: usize = 8;

/// Starts a capacity-pinned backend plus edge; caller shuts both down.
///
/// One shard per edge service worker: the batch tier runs one worker
/// per shard, so fewer shards would serialize below the nominal
/// `service_threads / busy` capacity the sweep is calibrated against.
fn start_edge(
    cfg: &NetBenchConfig,
    net: NetConfig,
) -> Result<(NetServer, BatchServer), Box<dyn std::error::Error>> {
    let mut registry = ShardedRegistry::new();
    for building in 0..cfg.service_threads {
        registry.insert(
            ShardKey::building(building),
            Box::new(FixedCostLocalizer {
                dim: FEATURE_DIM,
                busy: cfg.busy,
            }),
        );
    }
    let backend = BatchServer::start(
        registry,
        BatchConfig {
            max_batch: 1,
            latency_budget: Duration::ZERO,
            ..BatchConfig::default()
        },
    )?;
    let edge = NetServer::bind_tcp(
        "127.0.0.1:0".parse().expect("loopback addr"),
        Backend::Fix(backend.client()),
        net,
    )?;
    Ok((edge, backend))
}

/// Latency percentile summary (microseconds).
struct LatencySummary {
    count: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

impl LatencySummary {
    fn of(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let pick = |pct: f64| -> u64 {
            if samples.is_empty() {
                0
            } else {
                samples[((samples.len() - 1) as f64 * pct).round() as usize]
            }
        };
        LatencySummary {
            count: samples.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            p999_us: pick(0.999),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
            self.count, self.p50_us, self.p99_us, self.p999_us, self.max_us
        )
    }
}

/// One sweep point's outcome.
struct SweepPoint {
    multiplier: f64,
    offered_rps: f64,
    outcome: TenantOutcome,
    latency: LatencySummary,
    served_rps: f64,
    edge_stats: StatsResponse,
}

impl SweepPoint {
    fn shed(&self) -> u64 {
        self.outcome.shed_overload + self.outcome.shed_quota
    }

    fn json(&self) -> String {
        format!(
            "{{\"multiplier\": {:.2}, \"offered_rps\": {:.1}, \"offered\": {}, \
             \"served\": {}, \"shed_overload\": {}, \"shed_quota\": {}, \"errors\": {}, \
             \"goodput_ratio\": {:.4}, \"served_rps\": {:.1}, \"latency\": {}}}",
            self.multiplier,
            self.offered_rps,
            self.outcome.offered,
            self.outcome.served,
            self.outcome.shed_overload,
            self.outcome.shed_quota,
            self.outcome.errors,
            self.outcome.goodput_ratio(),
            self.served_rps,
            self.latency.json(),
        )
    }
}

fn tenant_json(o: &TenantOutcome, latency: &LatencySummary) -> String {
    format!(
        "{{\"tenant\": \"{}\", \"offered\": {}, \"served\": {}, \"shed_overload\": {}, \
         \"shed_quota\": {}, \"errors\": {}, \"goodput_ratio\": {:.4}, \"latency\": {}}}",
        o.tenant,
        o.offered,
        o.served,
        o.shed_overload,
        o.shed_quota,
        o.errors,
        o.goodput_ratio(),
        latency.json(),
    )
}

/// Runs the open-loop overload sweep and fairness pair; writes
/// `results/BENCH_net.json`.
///
/// # Errors
///
/// Fails on transport errors, artifact I/O, or an SLO gate violation
/// (missing sheds, goodput collapse past saturation, unbounded accepted
/// p99, or a starved quiet tenant).
pub fn run(scale: Scale) -> RunnerResult {
    let cfg = NetBenchConfig::at(scale);
    let capacity = cfg.capacity_rps();
    // One shard per backend worker; the load generator round-robins
    // across them, keeping every worker busy at saturation.
    let shards: Vec<WireShard> = (0..cfg.service_threads as u32)
        .map(|building| WireShard {
            building,
            floor: None,
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "network edge, open loop: capacity {capacity:.0} fixes/s \
         ({} workers x {}us/fix), admission queue {}\n\n",
        cfg.service_threads,
        cfg.busy.as_micros(),
        cfg.max_queue,
    ));

    // --- Overload sweep: one tenant, offered load as a multiple of
    // capacity, fresh edge per point so shed counters are per-point.
    const MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 3.0];
    let mut sweep = Vec::new();
    for (i, &multiplier) in MULTIPLIERS.iter().enumerate() {
        let (edge, backend) = start_edge(
            &cfg,
            NetConfig {
                max_queue: cfg.max_queue,
                tenant_queue: cfg.tenant_queue,
                quantum: 8,
                service_threads: cfg.service_threads,
            },
        )?;
        let offered_rps = capacity * multiplier;
        let load = LoadConfig {
            duration: cfg.point_duration,
            tenants: vec![TenantLoad {
                tenant: "sweep".into(),
                rate: offered_rps,
                seed: 0x5EED_0000 + i as u64,
            }],
            shards: shards.clone(),
            fingerprint: vec![0.5; FEATURE_DIM],
        };
        let outcome = run_open_loop(edge.endpoint(), &load)?
            .into_iter()
            .next()
            .expect("one tenant, one outcome");
        let edge_stats = edge.shutdown();
        backend.shutdown();
        let latency = LatencySummary::of(outcome.latencies_us.clone());
        let served_rps = outcome.served as f64 / cfg.point_duration.as_secs_f64();
        sweep.push(SweepPoint {
            multiplier,
            offered_rps,
            outcome,
            latency,
            served_rps,
            edge_stats,
        });
    }

    out.push_str(
        "  mult  offered/s  served/s  goodput  shed_over  shed_quota  p50_us  p99_us  p999_us\n",
    );
    for p in &sweep {
        out.push_str(&format!(
            "  {:>4.2}  {:>9.1}  {:>8.1}  {:>7.3}  {:>9}  {:>10}  {:>6}  {:>6}  {:>7}\n",
            p.multiplier,
            p.offered_rps,
            p.served_rps,
            p.outcome.goodput_ratio(),
            p.outcome.shed_overload,
            p.outcome.shed_quota,
            p.latency.p50_us,
            p.latency.p99_us,
            p.latency.p999_us,
        ));
    }

    // --- SLO gate over the sweep (asserted, not just plotted).
    let peak_served_rps = sweep.iter().map(|p| p.served_rps).fold(0.0, f64::max);
    let p99_bound_us = cfg.p99_bound_us();
    let mut gate_failures = Vec::new();
    for p in &sweep {
        if p.outcome.errors != 0 {
            gate_failures.push(format!(
                "{}x: {} typed serve errors (expected none)",
                p.multiplier, p.outcome.errors
            ));
        }
        let accounted = p.outcome.served + p.shed() + p.outcome.errors;
        if accounted != p.outcome.offered {
            gate_failures.push(format!(
                "{}x: {} of {} offered requests unaccounted for",
                p.multiplier,
                p.outcome.offered - accounted.min(p.outcome.offered),
                p.outcome.offered
            ));
        }
        if p.edge_stats.accepted != p.edge_stats.completed {
            gate_failures.push(format!(
                "{}x: edge leaked admitted requests ({} accepted, {} completed)",
                p.multiplier, p.edge_stats.accepted, p.edge_stats.completed
            ));
        }
        if p.multiplier < 2.0 {
            continue;
        }
        if p.shed() == 0 {
            gate_failures.push(format!(
                "{}x capacity: no typed sheds under overload",
                p.multiplier
            ));
        }
        if p.served_rps < 0.8 * peak_served_rps {
            gate_failures.push(format!(
                "{}x capacity: goodput {:.1}/s fell below 80% of peak {:.1}/s",
                p.multiplier, p.served_rps, peak_served_rps
            ));
        }
        if p.latency.p99_us > p99_bound_us {
            gate_failures.push(format!(
                "{}x capacity: accepted p99 {}us exceeds bound {}us",
                p.multiplier, p.latency.p99_us, p99_bound_us
            ));
        }
    }

    // --- Fairness: quiet tenant vs a 30x-hotter one past saturation.
    // Large global watermark so the per-tenant quota (plus DRR) is the
    // policy under test, small quota so the hot tenant hits it.
    let (edge, backend) = start_edge(
        &cfg,
        NetConfig {
            max_queue: 4096,
            tenant_queue: 8,
            quantum: 2,
            service_threads: cfg.service_threads,
        },
    )?;
    let quiet_rate = capacity * 0.05;
    let hot_rate = capacity * 1.5;
    let load = LoadConfig {
        duration: cfg.fairness_duration,
        tenants: vec![
            TenantLoad {
                tenant: "quiet".into(),
                rate: quiet_rate,
                seed: 0xFA1F_0001,
            },
            TenantLoad {
                tenant: "hot".into(),
                rate: hot_rate,
                seed: 0xFA1F_0002,
            },
        ],
        shards: shards.clone(),
        fingerprint: vec![0.5; FEATURE_DIM],
    };
    let outcomes = run_open_loop(edge.endpoint(), &load)?;
    edge.shutdown();
    backend.shutdown();
    let quiet = &outcomes[0];
    let hot = &outcomes[1];
    let quiet_latency = LatencySummary::of(quiet.latencies_us.clone());
    let hot_latency = LatencySummary::of(hot.latencies_us.clone());
    out.push_str(&format!(
        "\nfairness: quiet {:.0}/s goodput {:.3} (p99 {}us), \
         hot {:.0}/s goodput {:.3}, hot quota sheds {}\n",
        quiet_rate,
        quiet.goodput_ratio(),
        quiet_latency.p99_us,
        hot_rate,
        hot.goodput_ratio(),
        hot.shed_quota,
    ));
    if quiet.goodput_ratio() < 0.8 {
        gate_failures.push(format!(
            "fairness: quiet tenant goodput {:.3} below 0.8 fair share",
            quiet.goodput_ratio()
        ));
    }
    if hot.shed_quota == 0 {
        gate_failures.push("fairness: hot tenant never hit its quota".into());
    }
    if hot.served <= quiet.served {
        gate_failures.push(format!(
            "fairness: hot tenant served {} <= quiet {} (DRR should not invert)",
            hot.served, quiet.served
        ));
    }

    let slo_pass = gate_failures.is_empty();
    out.push_str(&format!(
        "SLO gate: sheds typed past 2x, goodput >= 80% of peak {peak_served_rps:.1}/s, \
         accepted p99 <= {p99_bound_us}us, quiet tenant >= 0.8 goodput -> {}\n",
        if slo_pass { "pass" } else { "FAIL" },
    ));
    for failure in &gate_failures {
        out.push_str(&format!("  SLO violation: {failure}\n"));
    }

    let sweep_json: Vec<String> = sweep.iter().map(SweepPoint::json).collect();
    let json = format!(
        "{{\n  \"scale\": \"{:?}\",\n  \"capacity_rps\": {capacity:.1},\n  \
         \"busy_us\": {},\n  \"service_threads\": {},\n  \
         \"admission\": {{\"max_queue\": {}, \"tenant_queue\": {}, \"quantum\": 8}},\n  \
         \"sweep\": [\n    {}\n  ],\n  \
         \"fairness\": {{\"quiet\": {}, \"hot\": {}}},\n  \
         \"slo\": {{\"peak_served_rps\": {peak_served_rps:.1}, \
         \"min_overload_goodput_frac\": 0.8, \"p99_bound_us\": {p99_bound_us}, \
         \"pass\": {slo_pass}}}\n}}\n",
        scale,
        cfg.busy.as_micros(),
        cfg.service_threads,
        cfg.max_queue,
        cfg.tenant_queue,
        sweep_json.join(",\n    "),
        tenant_json(quiet, &quiet_latency),
        tenant_json(hot, &hot_latency),
    );
    let path = write_artifact("BENCH_net.json", &json)?;
    out.push_str(&format!("wrote {}\n", path.display()));

    println!("{out}");
    if !slo_pass {
        return Err(format!("exp_net SLO gate failed:\n{}", gate_failures.join("\n")).into());
    }
    Ok(out)
}
