//! One runner per paper table/figure. Each `run` function prints its
//! report to stdout and returns it as a string (so integration tests can
//! assert on the content without capturing stdout).

pub mod ablation;
pub mod energy;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod ipin;
pub mod model_store;
pub mod net;
pub mod refresh;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod throughput;
pub mod tracking;

/// Shared error type of the runners.
pub type RunnerResult = Result<String, Box<dyn std::error::Error>>;
