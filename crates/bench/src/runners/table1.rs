//! Table I: NObLe classification accuracies and position errors on the
//! UJI-like campaign.
//!
//! Paper values (real UJIIndoorLoc): building 99.74 %, floor 94.25 %,
//! quantize class 61.63 %; mean 4.45 m, median 0.23 m. Shape criteria:
//! building ≥ floor ≫ class accuracy; median ≪ mean.

use crate::config::{uji_config, wifi_noble_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::report::{meters, percent, TextTable};
use noble::wifi::WifiNoble;
use noble_datasets::uji_campaign;

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run(scale: Scale) -> RunnerResult {
    let campaign = uji_campaign(&uji_config(scale))?;
    let cfg = wifi_noble_config(scale);
    let mut model = WifiNoble::train(&campaign, &cfg)?;
    let report = model.evaluate(&campaign, &campaign.test)?;

    let mut out = String::new();
    out.push_str("TABLE I: NObLe performance on the UJI-like campaign\n");
    out.push_str(&format!(
        "(synthetic stand-in; paper values on real UJIIndoorLoc in parentheses)\n\
         train={} val={} test={} waps={} fine-classes={}\n\n",
        campaign.train.len(),
        campaign.val.len(),
        campaign.test.len(),
        campaign.num_waps(),
        model.fine_quantizer().num_classes()
    ));

    let mut acc = TextTable::new(vec![
        "CLASSIFICATION".into(),
        "ACCURACY (%)".into(),
        "PAPER (%)".into(),
    ]);
    acc.add_row(vec![
        "BUILDING".into(),
        percent(report.building_accuracy),
        "99.74".into(),
    ]);
    acc.add_row(vec![
        "FLOOR".into(),
        percent(report.floor_accuracy),
        "94.25".into(),
    ]);
    acc.add_row(vec![
        "QUANTIZE CLASS".into(),
        percent(report.class_accuracy),
        "61.63".into(),
    ]);
    out.push_str(&acc.render());
    out.push('\n');

    let mut err = TextTable::new(vec![
        "POSITION ERROR (M)".into(),
        "MEASURED".into(),
        "PAPER".into(),
    ]);
    err.add_row(vec![
        "MEAN".into(),
        meters(report.position_error.mean),
        "4.45".into(),
    ]);
    err.add_row(vec![
        "MEDIAN".into(),
        meters(report.position_error.median),
        "0.23".into(),
    ]);
    err.add_row(vec![
        "RMSE".into(),
        meters(report.position_error.rmse),
        "-".into(),
    ]);
    err.add_row(vec![
        "P90".into(),
        meters(report.position_error.p90),
        "-".into(),
    ]);
    out.push_str(&err.render());
    out.push('\n');
    out.push_str(&format!("structure: {}\n", report.structure));

    println!("{out}");
    Ok(out)
}
