//! Fig. 5 (b–d): IMU test paths and predicted end positions.
//!
//! Panel (b) plots test-path ground truth along the walkway; panels (c)
//! and (d) contrast Deep Regression's scattered end-point predictions with
//! NObLe's structure-respecting ones. This runner dumps the corresponding
//! CSVs and prints structure metrics over the walkway band.

use crate::config::{imu_config, imu_noble_config, imu_regression_config};
use crate::runners::fig1::csv_points;
use crate::runners::RunnerResult;
use crate::{write_artifact, Scale};
use noble::eval::StructureReport;
use noble::imu::baselines::{DeadReckoning, ImuDeepRegression};
use noble::imu::ImuNoble;
use noble::report::TextTable;
use noble_datasets::{ImuDataset, ImuPathSample};
use noble_geo::Point;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates dataset, training and I/O failures.
pub fn run(scale: Scale) -> RunnerResult {
    let dataset = ImuDataset::generate(&imu_config(scale))?;
    let truth: Vec<Point> = dataset.test.iter().map(|p| p.end_position).collect();

    let mut regression = ImuDeepRegression::train(&dataset, &imu_regression_config(scale))?;
    let refs: Vec<&ImuPathSample> = dataset.test.iter().collect();
    let regression_preds = regression.predict(&refs)?;

    let dr_preds: Vec<Point> = dataset
        .test
        .iter()
        .map(DeadReckoning::predict_one)
        .collect();

    let mut noble_model = ImuNoble::train(&dataset, &imu_noble_config(scale))?;
    let noble_preds = noble_model.predict(&refs)?;

    let panels: Vec<(&str, &Vec<Point>)> = vec![
        ("ground_truth", &truth),
        ("deep_regression", &regression_preds),
        ("dead_reckoning", &dr_preds),
        ("noble", &noble_preds),
    ];
    let mut table = TextTable::new(vec![
        "PANEL".into(),
        "ON-WALKWAY %".into(),
        "MEAN OFF (M)".into(),
        "MAX OFF (M)".into(),
    ]);
    let mut out = String::new();
    out.push_str("FIG 5: IMU end-position predictions along the walkway\n\n");
    for (name, preds) in &panels {
        let path = write_artifact(&format!("fig5_{name}.csv"), &csv_points("x,y", preds))?;
        let report = StructureReport::compute(preds, &dataset.walkway)?;
        table.add_row(vec![
            name.to_string(),
            format!("{:.1}", report.on_map_fraction * 100.0),
            format!("{:.2}", report.mean_off_map_distance),
            format!("{:.2}", report.max_off_map_distance),
        ]);
        out.push_str(&format!("csv: {}\n", path.display()));
    }
    out.push('\n');
    out.push_str(&table.render());
    println!("{out}");
    Ok(out)
}
