//! Energy measurements (paper §IV-C and §V-D), via the analytical TX2-like
//! model.
//!
//! Paper values: WiFi inference 0.00518 J at 2 ms; IMU inference 0.08599 J
//! at 5 ms, plus 0.1356 J of sensor energy per 8 s window, against a GPS
//! fix at 5.925 J — a ~27x advantage. Shape criteria: mJ-scale inference,
//! ms-scale latency, ≥20x advantage over GPS.

use crate::config::{imu_config, imu_noble_config, uji_config, wifi_noble_config};
use crate::runners::RunnerResult;
use crate::Scale;
use noble::imu::ImuNoble;
use noble::report::TextTable;
use noble::wifi::WifiNoble;
use noble_datasets::{uji_campaign, ImuDataset};
use noble_energy::{
    mac_count, Battery, BatteryLife, EnergyModel, SensorConstants, TrackingEnergyReport,
};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates dataset and training failures.
pub fn run(scale: Scale) -> RunnerResult {
    let device = EnergyModel::jetson_tx2();

    // WiFi model (§IV-C).
    let campaign = uji_campaign(&uji_config(scale))?;
    let wifi_model = WifiNoble::train(&campaign, &wifi_noble_config(scale))?;
    let wifi_profile = device.profile(mac_count(&wifi_model.dense_shapes()));

    // IMU model (§V-D).
    let dataset = ImuDataset::generate(&imu_config(scale))?;
    let imu_model = ImuNoble::train(&dataset, &imu_noble_config(scale))?;
    let imu_profile = device.profile(mac_count(&imu_model.dense_shapes()));
    let tracking = TrackingEnergyReport::compare(imu_profile, SensorConstants::default(), 8.0);

    let mut table = TextTable::new(vec!["QUANTITY".into(), "MEASURED".into(), "PAPER".into()]);
    table.add_row(vec![
        "WIFI INFERENCE ENERGY (J)".into(),
        format!("{:.5}", wifi_profile.energy_j),
        "0.00518".into(),
    ]);
    table.add_row(vec![
        "WIFI INFERENCE LATENCY (MS)".into(),
        format!("{:.2}", wifi_profile.latency_s * 1e3),
        "2".into(),
    ]);
    table.add_row(vec![
        "IMU INFERENCE ENERGY (J)".into(),
        format!("{:.5}", tracking.inference_j),
        "0.08599".into(),
    ]);
    table.add_row(vec![
        "IMU SENSING ENERGY / 8S (J)".into(),
        format!("{:.4}", tracking.sensing_j),
        "0.1356".into(),
    ]);
    table.add_row(vec![
        "NOBLE TOTAL / 8S (J)".into(),
        format!("{:.4}", tracking.noble_total_j),
        "0.22159".into(),
    ]);
    table.add_row(vec![
        "GPS FIX (J)".into(),
        format!("{:.3}", tracking.gps_j),
        "5.925".into(),
    ]);
    table.add_row(vec![
        "ADVANTAGE OVER GPS (X)".into(),
        format!("{:.0}", tracking.advantage),
        "27".into(),
    ]);

    let mut out = String::new();
    out.push_str("ENERGY (paper §IV-C / §V-D) — analytical TX2-like model\n");
    out.push_str(&format!(
        "wifi model MACs={} | imu model MACs={}\n",
        wifi_profile.macs, imu_profile.macs
    ));
    out.push_str(
        "note: our featurized IMU frontend is smaller than the paper's raw-signal\n\
         projection, so IMU inference energy is lower and the GPS advantage larger.\n\n",
    );
    out.push_str(&table.render());

    // Beyond the paper: what the advantage means in battery life.
    let life = BatteryLife::project(
        Battery::phone(),
        imu_profile,
        SensorConstants::default(),
        8.0,
    );
    out.push_str(&format!(
        "\nbattery projection (15 Wh phone, one fix per 8 s): NObLe {:.0} h vs GPS {:.1} h ({:.0}x)\n",
        life.noble_hours,
        life.gps_hours,
        life.advantage()
    ));
    println!("{out}");
    Ok(out)
}
