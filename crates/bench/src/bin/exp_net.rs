//! Network-edge open-loop overload sweep (`results/BENCH_net.json`).

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::net::run(scale) {
        eprintln!("exp_net failed: {e}");
        std::process::exit(1);
    }
}
