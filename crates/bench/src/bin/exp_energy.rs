//! Regenerates the paper artifact; see `noble_bench::runners::energy`.
//! Set `NOBLE_QUICK=1` for a fast reduced-scale run.

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::energy::run(scale) {
        eprintln!("exp_energy failed: {e}");
        std::process::exit(1);
    }
}
