//! Sharded serving throughput sweep (`results/BENCH_serving.json`).

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::serving::run(scale) {
        eprintln!("exp_serving failed: {e}");
        std::process::exit(1);
    }
}
