//! Measures serving-scale inference throughput (single vs batched vs
//! batched+threaded fixes/sec) and writes `results/BENCH_throughput.json`;
//! see `noble_bench::runners::throughput`. Set `NOBLE_QUICK=1` for the CI
//! smoke sweep and `NOBLE_THREADS=n` to cap the worker count.

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::throughput::run(scale) {
        eprintln!("exp_throughput failed: {e}");
        std::process::exit(1);
    }
}
