//! Model-lifecycle sweep: cold-train vs hydrate vs resident-hit plus
//! eviction-thrash throughput (`results/BENCH_model_store.json`).

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::model_store::run(scale) {
        eprintln!("exp_model_store failed: {e}");
        std::process::exit(1);
    }
}
