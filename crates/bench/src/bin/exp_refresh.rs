//! Online refresh under fingerprint drift: frozen vs refreshed accuracy,
//! swap cost and serving p99 during the concurrent retrain
//! (`results/BENCH_refresh.json`).

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::refresh::run(scale) {
        eprintln!("exp_refresh failed: {e}");
        std::process::exit(1);
    }
}
