//! Runs every experiment in sequence (the full reproduction pass used to
//! fill EXPERIMENTS.md). Set `NOBLE_QUICK=1` for a fast smoke pass.

type Experiment = (
    &'static str,
    fn(noble_bench::Scale) -> noble_bench::runners::RunnerResult,
);

fn main() {
    let scale = noble_bench::Scale::from_env();
    let experiments: Vec<Experiment> = vec![
        ("fig1", noble_bench::runners::fig1::run),
        ("table1", noble_bench::runners::table1::run),
        ("table2", noble_bench::runners::table2::run),
        ("ipin", noble_bench::runners::ipin::run),
        ("table3", noble_bench::runners::table3::run),
        ("fig4", noble_bench::runners::fig4::run),
        ("fig5", noble_bench::runners::fig5::run),
        ("energy", noble_bench::runners::energy::run),
        ("throughput", noble_bench::runners::throughput::run),
        ("serving", noble_bench::runners::serving::run),
        ("model_store", noble_bench::runners::model_store::run),
        ("tracking", noble_bench::runners::tracking::run),
        ("net", noble_bench::runners::net::run),
        ("refresh", noble_bench::runners::refresh::run),
        (
            "ablation_tau",
            noble_bench::runners::ablation::run_tau_sweep,
        ),
        (
            "ablation_labels",
            noble_bench::runners::ablation::run_labels,
        ),
        ("ablation_heads", noble_bench::runners::ablation::run_heads),
        (
            "ablation_decode",
            noble_bench::runners::ablation::run_decode,
        ),
    ];
    let mut failures = 0;
    for (name, run) in experiments {
        println!("=== {name} ===");
        let start = std::time::Instant::now();
        match run(scale) {
            Ok(_) => println!(
                "--- {name} done in {:.1}s ---\n",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("--- {name} FAILED: {e} ---\n");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
