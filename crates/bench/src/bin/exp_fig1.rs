//! Regenerates the paper artifact; see `noble_bench::runners::fig1`.
//! Set `NOBLE_QUICK=1` for a fast reduced-scale run.

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::fig1::run(scale) {
        eprintln!("exp_fig1 failed: {e}");
        std::process::exit(1);
    }
}
