//! Label-construction ablation; see `noble_bench::runners::ablation`.

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::ablation::run_labels(scale) {
        eprintln!("exp_ablation_labels failed: {e}");
        std::process::exit(1);
    }
}
