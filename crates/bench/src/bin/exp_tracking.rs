//! Tracking-session capacity drive (`results/BENCH_tracking.json`).

fn main() {
    let scale = noble_bench::Scale::from_env();
    if let Err(e) = noble_bench::runners::tracking::run(scale) {
        eprintln!("exp_tracking failed: {e}");
        std::process::exit(1);
    }
}
