//! Edge-device energy modeling (paper §IV-C and §V-D).
//!
//! The paper measures inference energy on an Nvidia Jetson TX2 and argues
//! NObLe's total tracking energy (inference + inertial sensors) is ~27x
//! cheaper than GPS fixes. We cannot run a TX2 here, so this crate supplies
//! the standard analytical substitute: count multiply-accumulates through
//! the network, convert to latency through an effective throughput, and to
//! energy through the device's active power. The
//! [`EnergyModel::jetson_tx2`] preset is calibrated so the paper's WiFi
//! model lands at its reported ~2 ms / ~5 mJ operating point; the GPS and
//! IMU sensor constants come from the paper's reference \[8\].
//!
//! # Example
//!
//! ```
//! use noble_energy::{EnergyModel, mac_count};
//!
//! let shapes = vec![(520, 128), (128, 128), (128, 1000)];
//! let profile = EnergyModel::jetson_tx2().profile(mac_count(&shapes));
//! assert!(profile.energy_j > 0.0);
//! assert!(profile.latency_s > 0.0);
//! ```

mod battery;
mod device;
mod ops;
mod sensors;

pub use battery::{Battery, BatteryLife};
pub use device::{EnergyModel, InferenceProfile};
pub use ops::{mac_count, mac_count_with_batch};
pub use sensors::{SensorConstants, TrackingEnergyReport};
