//! Battery-life projection: what the §V-D energy advantage means in hours.
//!
//! The paper's argument stops at joules per window; deployments care about
//! battery life. This module projects continuous-tracking runtimes from a
//! battery capacity and a tracking duty cycle, for both the NObLe stack
//! (inference + inertial sensing) and periodic GPS fixes.

use crate::{InferenceProfile, SensorConstants};

/// A battery, in watt-hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable capacity in watt-hours.
    pub capacity_wh: f64,
}

impl Battery {
    /// A phone-class 15 Wh battery.
    pub fn phone() -> Self {
        Battery { capacity_wh: 15.0 }
    }

    /// A wearable-class 1 Wh battery.
    pub fn wearable() -> Self {
        Battery { capacity_wh: 1.0 }
    }

    /// Usable energy in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_wh * 3600.0
    }
}

/// Continuous-tracking battery projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryLife {
    /// Hours of continuous NObLe tracking (inference + IMU sensing).
    pub noble_hours: f64,
    /// Hours of continuous GPS tracking at the same fix interval.
    pub gps_hours: f64,
}

impl BatteryLife {
    /// Projects tracking lifetime on `battery`, producing one position fix
    /// per `window_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive.
    pub fn project(
        battery: Battery,
        inference: InferenceProfile,
        sensors: SensorConstants,
        window_s: f64,
    ) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        let noble_per_window = inference.energy_j + sensors.imu_energy_j(window_s);
        let gps_per_window = sensors.gps_fix_energy_j;
        let capacity = battery.capacity_j();
        BatteryLife {
            noble_hours: capacity / noble_per_window * window_s / 3600.0,
            gps_hours: capacity / gps_per_window * window_s / 3600.0,
        }
    }

    /// How many times longer NObLe tracks than GPS.
    pub fn advantage(&self) -> f64 {
        self.noble_hours / self.gps_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyModel;

    fn profile() -> InferenceProfile {
        EnergyModel::jetson_tx2().profile(250_000)
    }

    #[test]
    fn noble_outlasts_gps() {
        let life =
            BatteryLife::project(Battery::phone(), profile(), SensorConstants::default(), 8.0);
        assert!(life.noble_hours > life.gps_hours);
        assert!(life.advantage() > 20.0, "advantage {}", life.advantage());
    }

    #[test]
    fn paper_scale_sanity() {
        // GPS at 5.925 J per 8 s window on a 15 Wh battery:
        // 54000 J / 5.925 J ≈ 9113 windows ≈ 20.3 h.
        let life =
            BatteryLife::project(Battery::phone(), profile(), SensorConstants::default(), 8.0);
        assert!(
            (life.gps_hours - 20.25).abs() < 0.5,
            "gps hours {}",
            life.gps_hours
        );
    }

    #[test]
    fn bigger_battery_scales_linearly() {
        let small = BatteryLife::project(
            Battery::wearable(),
            profile(),
            SensorConstants::default(),
            8.0,
        );
        let big =
            BatteryLife::project(Battery::phone(), profile(), SensorConstants::default(), 8.0);
        assert!((big.noble_hours / small.noble_hours - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        BatteryLife::project(Battery::phone(), profile(), SensorConstants::default(), 0.0);
    }

    #[test]
    fn battery_presets() {
        assert!(Battery::phone().capacity_j() > Battery::wearable().capacity_j());
        assert_eq!(Battery::wearable().capacity_j(), 3600.0);
    }
}
