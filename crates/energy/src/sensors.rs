//! Sensor and GPS energy constants, and the paper's §V-D comparison.

use crate::InferenceProfile;

/// Measured sensor/GPS constants, taken from the paper (which cites its
/// reference \[8\] for the GPS figure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConstants {
    /// Inertial sensor energy for an 8-second window, joules (paper:
    /// 0.1356 J / 8 s).
    pub imu_energy_per_8s_j: f64,
    /// Energy of one GPS fix cycle, joules (paper: 5.925 J).
    pub gps_fix_energy_j: f64,
}

impl Default for SensorConstants {
    fn default() -> Self {
        SensorConstants {
            imu_energy_per_8s_j: 0.1356,
            gps_fix_energy_j: 5.925,
        }
    }
}

impl SensorConstants {
    /// IMU sensor energy for an arbitrary window length.
    pub fn imu_energy_j(&self, duration_s: f64) -> f64 {
        self.imu_energy_per_8s_j * duration_s / 8.0
    }
}

/// The §V-D comparison: NObLe inference + IMU sensing vs a GPS fix for the
/// same tracking window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingEnergyReport {
    /// Tracking window length, seconds.
    pub duration_s: f64,
    /// Model inference energy, joules.
    pub inference_j: f64,
    /// Inertial sensing energy over the window, joules.
    pub sensing_j: f64,
    /// NObLe total (inference + sensing), joules.
    pub noble_total_j: f64,
    /// GPS energy for the same window, joules.
    pub gps_j: f64,
    /// `gps_j / noble_total_j` — the paper's headline is ~27x.
    pub advantage: f64,
}

impl TrackingEnergyReport {
    /// Builds the comparison for one tracking window.
    pub fn compare(inference: InferenceProfile, sensors: SensorConstants, duration_s: f64) -> Self {
        let sensing_j = sensors.imu_energy_j(duration_s);
        let noble_total_j = inference.energy_j + sensing_j;
        TrackingEnergyReport {
            duration_s,
            inference_j: inference.energy_j,
            sensing_j,
            noble_total_j,
            gps_j: sensors.gps_fix_energy_j,
            advantage: sensors.gps_fix_energy_j / noble_total_j,
        }
    }
}

impl std::fmt::Display for TrackingEnergyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window {:.1}s: inference {:.5} J + sensing {:.4} J = {:.4} J vs GPS {:.3} J ({:.0}x)",
            self.duration_s,
            self.inference_j,
            self.sensing_j,
            self.noble_total_j,
            self.gps_j,
            self.advantage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyModel;

    #[test]
    fn paper_operating_point_reproduces_large_advantage() {
        // Paper §V-D: inference 0.08599 J + sensors 0.1356 J = 0.22159 J
        // vs GPS 5.925 J -> ~27x. With the paper's own numbers:
        let inference = InferenceProfile {
            macs: 0,
            latency_s: 5e-3,
            energy_j: 0.08599,
        };
        let r = TrackingEnergyReport::compare(inference, SensorConstants::default(), 8.0);
        assert!((r.noble_total_j - 0.22159).abs() < 1e-5);
        assert!(
            (r.advantage - 26.74).abs() < 0.1,
            "advantage {}",
            r.advantage
        );
    }

    #[test]
    fn smaller_models_only_increase_advantage() {
        let m = EnergyModel::jetson_tx2();
        let small =
            TrackingEnergyReport::compare(m.profile(100_000), SensorConstants::default(), 8.0);
        let big =
            TrackingEnergyReport::compare(m.profile(50_000_000), SensorConstants::default(), 8.0);
        assert!(small.advantage > big.advantage);
        assert!(
            small.advantage > 20.0,
            "small advantage {}",
            small.advantage
        );
    }

    #[test]
    fn sensing_scales_with_duration() {
        let s = SensorConstants::default();
        assert!((s.imu_energy_j(8.0) - 0.1356).abs() < 1e-12);
        assert!((s.imu_energy_j(16.0) - 0.2712).abs() < 1e-12);
        assert_eq!(s.imu_energy_j(0.0), 0.0);
    }

    #[test]
    fn display_contains_ratio() {
        let m = EnergyModel::jetson_tx2();
        let r = TrackingEnergyReport::compare(m.profile(1000), SensorConstants::default(), 8.0);
        assert!(r.to_string().contains('x'));
    }
}
