//! The analytical edge-device model.

/// Latency and energy of one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceProfile {
    /// Multiply-accumulates executed.
    pub macs: u64,
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

/// An edge device as `latency = overhead + macs/throughput`,
/// `energy = active_power * latency`.
///
/// The throughput is an *effective* number for small-batch MLP inference —
/// far below the device's peak FLOPS because tiny kernels are launch- and
/// memory-bound; that is also why the overhead term dominates for the
/// paper's 2-hidden-layer models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fixed per-inference overhead (kernel launches, memory traffic), s.
    pub overhead_s: f64,
    /// Effective MAC throughput, MACs/s.
    pub macs_per_second: f64,
    /// Active power draw during inference, W.
    pub active_power_w: f64,
}

impl EnergyModel {
    /// Jetson-TX2-like preset, calibrated so the paper's WiFi model
    /// (520→128→128→~900, ≈0.2 MMAC) reproduces its measured ~2 ms
    /// latency and ~5.2 mJ energy (§IV-C).
    pub fn jetson_tx2() -> Self {
        EnergyModel {
            overhead_s: 1.6e-3,
            macs_per_second: 0.9e9,
            active_power_w: 2.6,
        }
    }

    /// A generic microcontroller-class preset (no GPU): three orders of
    /// magnitude less throughput, one less power.
    pub fn cortex_m7() -> Self {
        EnergyModel {
            overhead_s: 0.2e-3,
            macs_per_second: 3.0e6,
            active_power_w: 0.25,
        }
    }

    /// Profiles one inference of `macs` multiply-accumulates.
    pub fn profile(&self, macs: u64) -> InferenceProfile {
        let latency_s = self.overhead_s + macs as f64 / self.macs_per_second;
        InferenceProfile {
            macs,
            latency_s,
            energy_j: self.active_power_w * latency_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac_count;

    #[test]
    fn tx2_calibration_matches_paper_operating_point() {
        // Paper §IV-C: UJIIndoorLoc inference 0.00518 J at 2 ms.
        // The paper's model: 520 inputs -> 128 -> 128 -> O(900) outputs.
        let shapes = [(520usize, 128usize), (128, 128), (128, 900)];
        let p = EnergyModel::jetson_tx2().profile(mac_count(&shapes));
        assert!(
            (1.0e-3..4.0e-3).contains(&p.latency_s),
            "latency {} should be ~2 ms",
            p.latency_s
        );
        assert!(
            (3.0e-3..8.0e-3).contains(&p.energy_j),
            "energy {} should be ~5 mJ",
            p.energy_j
        );
    }

    #[test]
    fn zero_mac_inference_costs_overhead_only() {
        let m = EnergyModel::jetson_tx2();
        let p = m.profile(0);
        assert_eq!(p.latency_s, m.overhead_s);
        assert!(p.energy_j > 0.0);
    }

    #[test]
    fn bigger_models_cost_more() {
        let m = EnergyModel::jetson_tx2();
        assert!(m.profile(10_000_000).energy_j > m.profile(10_000).energy_j);
    }

    #[test]
    fn microcontroller_is_slower_but_lower_power() {
        let tx2 = EnergyModel::jetson_tx2();
        let mcu = EnergyModel::cortex_m7();
        let macs = 1_000_000;
        assert!(mcu.profile(macs).latency_s > tx2.profile(macs).latency_s);
        assert!(mcu.active_power_w < tx2.active_power_w);
    }
}
