//! Multiply-accumulate counting for dense networks.

/// MACs of one forward pass through a stack of dense layers given their
/// `(in_dim, out_dim)` shapes. Batch-norm and activation costs are folded
/// in as one extra op per affected unit (they are negligible next to the
/// matmuls but not zero).
pub fn mac_count(dense_shapes: &[(usize, usize)]) -> u64 {
    let mut macs = 0u64;
    for &(i, o) in dense_shapes {
        macs += (i as u64) * (o as u64); // matmul
        macs += o as u64; // bias
        macs += 2 * o as u64; // batchnorm scale/shift + activation, amortized
    }
    macs
}

/// MACs for a batch of `batch` inference passes.
pub fn mac_count_with_batch(dense_shapes: &[(usize, usize)], batch: usize) -> u64 {
    mac_count(dense_shapes) * batch as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_matmul_dominated() {
        let macs = mac_count(&[(100, 10)]);
        assert_eq!(macs, 1000 + 10 + 20);
    }

    #[test]
    fn empty_network_is_free() {
        assert_eq!(mac_count(&[]), 0);
    }

    #[test]
    fn batch_scales_linearly() {
        let shapes = [(64, 32), (32, 8)];
        assert_eq!(mac_count_with_batch(&shapes, 10), 10 * mac_count(&shapes));
    }

    #[test]
    fn deeper_nets_cost_more() {
        assert!(mac_count(&[(128, 128), (128, 128)]) > mac_count(&[(128, 128)]));
    }
}
