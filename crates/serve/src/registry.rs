//! Shard-routed model registry: partitions a campaign by building/floor
//! key, trains (or accepts) one [`Localizer`] per shard, and routes
//! feature batches to the owning shard.

use crate::{CatalogBudget, ModelCatalog, ModelStore, ServeError};
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::{Localizer, LocalizerInfo};
use noble_datasets::{WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_nn::derive_seed;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one serving shard: a building, optionally narrowed to a
/// single floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardKey {
    /// Building index.
    pub building: usize,
    /// Floor index, when sharding per building-floor.
    pub floor: Option<usize>,
}

impl ShardKey {
    /// A per-building shard key.
    pub fn building(building: usize) -> Self {
        ShardKey {
            building,
            floor: None,
        }
    }

    /// A per-building-floor shard key.
    pub fn building_floor(building: usize, floor: usize) -> Self {
        ShardKey {
            building,
            floor: Some(floor),
        }
    }

    /// A stable stream index for [`derive_seed`]: distinct keys map to
    /// distinct streams regardless of how many shards exist or in which
    /// order they train.
    fn seed_stream(self) -> u64 {
        let floor = self.floor.map_or(0, |f| f as u64 + 1);
        ((self.building as u64) << 32) | floor
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.floor {
            Some(floor) => write!(f, "b{}/f{floor}", self.building),
            None => write!(f, "b{}", self.building),
        }
    }
}

/// How a campaign is partitioned into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One shard for the whole campaign (the unsharded reference point).
    SingleSite,
    /// One shard per building.
    PerBuilding,
    /// One shard per building-floor pair (DevLoc-style zone scoping).
    PerBuildingFloor,
}

impl ShardPolicy {
    /// The shard key a sample routes to under this policy.
    pub fn key_of(self, sample: &WifiSample) -> ShardKey {
        match self {
            ShardPolicy::SingleSite => ShardKey::building(0),
            ShardPolicy::PerBuilding => ShardKey::building(sample.building),
            ShardPolicy::PerBuildingFloor => {
                ShardKey::building_floor(sample.building, sample.floor)
            }
        }
    }
}

/// Registry-level configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Partitioning policy.
    pub policy: ShardPolicy,
    /// Per-shard training-set cap. Shards never hold more than this many
    /// offline fingerprints, bounding per-shard model and radio-map memory
    /// as sites multiply (`None` = unbounded).
    pub max_train_samples_per_shard: Option<usize>,
    /// Train shards concurrently on scoped threads (worker count from
    /// [`noble_linalg::num_threads`]). Per-shard seeds are derived from
    /// the shard key, so the result is bit-identical either way.
    pub parallel_training: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            policy: ShardPolicy::PerBuilding,
            max_train_samples_per_shard: None,
            parallel_training: true,
        }
    }
}

/// The seed the registry trains shard `key` with, derived order-free from
/// the base configuration seed (exposed so parity tests can train the
/// identical model outside the registry).
pub fn shard_seed(base: u64, key: ShardKey) -> u64 {
    derive_seed(base, key.seed_stream())
}

/// Splits a campaign into per-shard sub-campaigns under `keyer`, keeping
/// the shared map/WAP/channel context and capping each shard's training
/// set at `max_train` samples.
///
/// Shards are keyed by the *training* samples; validation and test
/// samples routed to a shard with no training data are dropped with it.
pub fn partition_campaign(
    campaign: &WifiCampaign,
    keyer: impl Fn(&WifiSample) -> ShardKey,
    max_train: Option<usize>,
) -> BTreeMap<ShardKey, WifiCampaign> {
    let mut shards: BTreeMap<ShardKey, WifiCampaign> = BTreeMap::new();
    let empty_shell = || {
        let mut shell = campaign.clone();
        shell.train.clear();
        shell.val.clear();
        shell.test.clear();
        shell
    };
    for sample in &campaign.train {
        let shard = shards.entry(keyer(sample)).or_insert_with(empty_shell);
        if max_train.is_none_or(|cap| shard.train.len() < cap) {
            shard.train.push(sample.clone());
        }
    }
    for sample in &campaign.val {
        if let Some(shard) = shards.get_mut(&keyer(sample)) {
            shard.val.push(sample.clone());
        }
    }
    for sample in &campaign.test {
        if let Some(shard) = shards.get_mut(&keyer(sample)) {
            shard.test.push(sample.clone());
        }
    }
    shards
}

/// A keyed collection of per-shard localizers — now a thin façade over
/// the capacity-managed [`ModelCatalog`], kept so existing call sites
/// and suites compile unchanged.
///
/// **Deprecated as a primary API**: the registry keeps *every* model
/// resident (an unbounded catalog), which is exactly the grow-only
/// memory behavior [`ModelCatalog`] was built to replace — and it is
/// invisible to the versioned-model machinery: model version lineage
/// (activation, rollback, archived snapshots) lives solely in the
/// shared catalog behind a demand-paged server, so registry-served
/// shards are frozen at their training-time weights with no online
/// refresh. Migrate in two steps:
///
/// 1. build a [`ModelCatalog`] with a [`CatalogBudget`] and usually a
///    [`crate::FsStore`] — either directly
///    ([`ModelCatalog::register_wifi_campaign`] /
///    [`ModelCatalog::register_imu_campaign`] for lazy training) or via
///    [`ShardedRegistry::into_catalog`] for an already-trained registry;
/// 2. serve it demand-paged with [`crate::BatchServer::start_paged`],
///    which replaces the one-worker-per-shard assumption of
///    [`crate::BatchServer::start`] with request-driven shard
///    spin-up/spin-down under the same budget — and is the only serving
///    discipline that supports live model refresh
///    ([`crate::BatchServer::refresher`] / [`crate::Refresher`]).
///
/// Routing is by exact [`ShardKey`]; an unknown key is the typed
/// [`ServeError::UnknownShard`], never a panic. The registry is the
/// hand-off point to [`crate::BatchServer`], which moves each shard's
/// model onto its own worker thread.
pub struct ShardedRegistry {
    catalog: ModelCatalog,
}

impl Default for ShardedRegistry {
    fn default() -> Self {
        ShardedRegistry {
            catalog: ModelCatalog::new(CatalogBudget::Unbounded)
                // noble-lint: allow(panic-path, "CatalogBudget::Unbounded is a unit variant ModelCatalog::new always accepts; Default cannot return Result")
                .expect("an unbounded budget is always valid"),
        }
    }
}

impl fmt::Debug for ShardedRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRegistry")
            .field("shards", &self.keys())
            .finish()
    }
}

impl From<ShardedRegistry> for ModelCatalog {
    fn from(registry: ShardedRegistry) -> Self {
        registry.catalog
    }
}

impl ShardedRegistry {
    /// An empty registry; populate with [`ShardedRegistry::insert`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Trains one [`WifiNoble`] per shard of `campaign` under the
    /// registry configuration. Each shard trains with the order-free seed
    /// [`shard_seed`]`(cfg.seed, key)`, so shard models are reproducible
    /// whether training runs serially or concurrently.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] when the campaign has no training
    /// samples; otherwise the first shard training failure.
    pub fn train_wifi(
        campaign: &WifiCampaign,
        cfg: &WifiNobleConfig,
        reg: &RegistryConfig,
    ) -> Result<Self, ServeError> {
        Self::train_wifi_with(campaign, |s| reg.policy.key_of(s), cfg, reg)
    }

    /// Like [`ShardedRegistry::train_wifi`] with a custom partitioning
    /// function (e.g. grouping buildings onto a fixed shard count).
    ///
    /// # Errors
    ///
    /// As [`ShardedRegistry::train_wifi`].
    pub fn train_wifi_with(
        campaign: &WifiCampaign,
        keyer: impl Fn(&WifiSample) -> ShardKey,
        cfg: &WifiNobleConfig,
        reg: &RegistryConfig,
    ) -> Result<Self, ServeError> {
        let parts: Vec<(ShardKey, WifiCampaign)> =
            partition_campaign(campaign, keyer, reg.max_train_samples_per_shard)
                .into_iter()
                .collect();
        if parts.is_empty() {
            return Err(ServeError::NoShards);
        }
        let train_one = |(key, shard): &(ShardKey, WifiCampaign)| {
            let mut shard_cfg = cfg.clone();
            shard_cfg.seed = shard_seed(cfg.seed, *key);
            WifiNoble::train(shard, &shard_cfg)
                .map(|model| (*key, model))
                .map_err(ServeError::from)
        };
        let threads = if reg.parallel_training {
            noble_linalg::num_threads()
        } else {
            1
        };
        let trained: Vec<Result<(ShardKey, WifiNoble), ServeError>> =
            noble_linalg::parallel_map_ranges(parts.len(), threads, |range| {
                range.map(|i| train_one(&parts[i])).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut registry = ShardedRegistry::new();
        for result in trained {
            let (key, model) = result?;
            registry.insert(key, Box::new(model));
        }
        Ok(registry)
    }

    /// Registers (or replaces) the localizer serving `key`, relabeling its
    /// site metadata with the shard key.
    pub fn insert(&mut self, key: ShardKey, localizer: Box<dyn Localizer>) {
        self.catalog
            .insert(key, localizer)
            // noble-lint: allow(panic-path, "insert only fails on write-through eviction, which an unbounded catalog never performs; the facade's public signature predates ServeError")
            .expect("an unbounded catalog never evicts, so insert cannot fail");
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.catalog.resident_len()
    }

    /// Whether the registry holds no shards.
    pub fn is_empty(&self) -> bool {
        self.catalog.resident_len() == 0
    }

    /// Shard keys in sorted order.
    pub fn keys(&self) -> Vec<ShardKey> {
        self.catalog.resident_keys()
    }

    /// Metadata of every shard, in key order.
    pub fn info(&self) -> Vec<LocalizerInfo> {
        self.catalog.info()
    }

    /// Mutable access to the localizer serving `key`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] when no shard owns `key`.
    pub fn get_mut(&mut self, key: ShardKey) -> Result<&mut (dyn Localizer + '_), ServeError> {
        self.catalog.get_mut(key)
    }

    /// Routes a feature batch to its shard and localizes it (the direct,
    /// unbatched serving path; [`crate::BatchServer`] is the coalescing
    /// one).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] on an unroutable key; propagates model
    /// failures as [`ServeError::Model`].
    pub fn localize(&mut self, key: ShardKey, features: &Matrix) -> Result<Vec<Point>, ServeError> {
        self.catalog.localize(key, features)
    }

    /// Snapshots every shard model into `store` so a later
    /// [`crate::BatchServer::start_from_store`] can warm-restart serving
    /// without retraining. Returns how many snapshots were written.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotSnapshotable`] when a shard's model cannot
    /// serialize itself; propagates store failures.
    pub fn save_to(&self, store: &dyn ModelStore) -> Result<usize, ServeError> {
        self.catalog.export_to(store)
    }

    /// Upgrades the registry into a capacity-managed [`ModelCatalog`]
    /// (the migration path off this façade): every trained shard moves
    /// into the catalog, which then enforces `budget` against `store`.
    ///
    /// # Errors
    ///
    /// As [`ModelCatalog::adopt`].
    pub fn into_catalog(
        self,
        budget: CatalogBudget,
        store: Box<dyn ModelStore>,
    ) -> Result<ModelCatalog, ServeError> {
        ModelCatalog::adopt(self, budget, store)
    }

    /// Consumes the registry into `(key, localizer)` pairs for the batch
    /// server's per-shard workers.
    pub fn into_shards(self) -> Vec<(ShardKey, Box<dyn Localizer>)> {
        self.catalog.into_shards()
    }

    /// Rebuilds a registry from already-sited shards handed back by a
    /// stopping [`crate::BatchServer`] (no re-wrapping, no relabeling).
    pub(crate) fn restore(shards: Vec<(ShardKey, Box<dyn Localizer>)>) -> Self {
        let mut registry = ShardedRegistry::new();
        for (key, model) in shards {
            registry
                .catalog
                .insert_sited(key, model)
                // noble-lint: allow(panic-path, "insert only fails on write-through eviction, which an unbounded catalog never performs; restore rebuilds a registry that held these models")
                .expect("an unbounded catalog never evicts, so insert cannot fail");
        }
        registry
    }
}
