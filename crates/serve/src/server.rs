//! The micro-batching request pipeline, in two serving disciplines.
//!
//! [`BatchServer::start`] is the **fully-resident** server: one std
//! worker thread per shard, every model materialized up front. Clients
//! submit fingerprints tagged with a [`ShardKey`]; the shard's worker
//! coalesces whatever arrives within a **latency budget** (or up to a
//! **max batch size**) into one stacked [`Localizer::localize_batch`]
//! call and fans the results back through per-request reply channels.
//!
//! [`BatchServer::start_paged`] is the **demand-paged** server: it
//! serves every shard of a [`crate::ModelCatalog`] — resident, stored,
//! or merely spec-registered — while keeping only the catalog's
//! [`crate::CatalogBudget`] worth of models (and worker threads) alive.
//! Each shard walks a four-state lifecycle:
//!
//! ```text
//!          submit() to a cold shard              lease() done
//!   COLD ───────────────────────────► WARMING ───────────────► HOT
//!    ▲         (worker spawned;        (model faulting in:      │
//!    │          requests park in        store hydration or      │ Drain /
//!    │          its queue)              spec retrain)           │ idle TTL
//!    │                                                          ▼
//!    └───────────────────────────────────────────────────── DRAINING
//!              (serves its parked backlog, writes the model
//!               back through the store, worker thread exits)
//! ```
//!
//! - **COLD → WARMING**: the first request to a cold shard spawns its
//!   worker and *parks* in the worker's queue; the worker leases the
//!   model from the shared [`crate::SharedCatalog`] (hydrate or retrain,
//!   outside any global lock, so concurrently warming shards overlap).
//! - **HOT → DRAINING**: a worker retires when it has been idle for
//!   [`BatchConfig::idle_ttl`], or when a *colder* shard needs its
//!   budget slot (the least-recently-active hot worker is drained — the
//!   LRU spin-down policy). Draining writes the model back through the
//!   store first, so nothing is ever lost and a later re-fault hydrates
//!   the identical bits.
//! - Requests racing a spin-down are never dropped: the retiring worker
//!   serves everything already queued, and anything newer re-warms the
//!   shard through a fresh worker.
//!
//! Because model snapshot round-trips and key-derived retrains are
//! bit-identical (pinned by the `snapshot_roundtrip` and `model_store`
//! suites), a demand-paged server returns the **exact bits** the
//! fully-resident server returns — oversubscription buys memory, never
//! changes answers (pinned by `serving_parity`).
//!
//! The container targets offline std-only builds, so there is no async
//! runtime: blocking `mpsc` channels plus `recv_timeout` implement the
//! budgeted coalescing loop, and [`noble_linalg::num_threads`] /
//! `NOBLE_THREADS` still govern intra-batch matmul parallelism on top of
//! the inter-shard parallelism this module adds.
//!
//! # Examples
//!
//! Serve six shards with at most two models resident — the catalog
//! budget is the *memory* bound, not the *serving* bound:
//!
//! ```
//! use noble::wifi::KnnFingerprint;
//! use noble_datasets::{uji_campaign, UjiConfig};
//! use noble_serve::{BatchConfig, BatchServer, CatalogBudget, ModelCatalog, ShardKey};
//! use std::time::Duration;
//!
//! let campaign = uji_campaign(&UjiConfig::small())?;
//! let mut catalog = ModelCatalog::new(CatalogBudget::Count(2))?;
//! for i in 0..6 {
//!     let model = KnnFingerprint::fit(&campaign, i + 1)?;
//!     catalog.insert(ShardKey::building(i), Box::new(model))?;
//! }
//!
//! let server = BatchServer::start_paged(
//!     catalog,
//!     BatchConfig {
//!         idle_ttl: Some(Duration::from_millis(50)),
//!         ..BatchConfig::default()
//!     },
//! )?;
//! let client = server.client();
//! // Every shard answers, faulting its model in on first touch.
//! for i in 0..6 {
//!     let fix = client.localize(ShardKey::building(i), vec![0.0; campaign.num_waps()])?;
//!     println!("b{i}: {fix}");
//! }
//! let paged = server.paged_stats().expect("paged server");
//! assert!(paged.faults >= 6);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::catalog::SharedCatalog;
use crate::refresh::{RefreshConfig, Refresher};
use crate::sync::{relock, rewait_timeout};
use crate::{
    CatalogBudget, CatalogStats, ModelCatalog, ModelStore, ServeError, ShardKey, ShardedRegistry,
};
use noble::{InferencePrecision, Localizer};
use noble_geo::Point;
use noble_linalg::Matrix;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching and lifecycle knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest batch one shard inference call may carry.
    pub max_batch: usize,
    /// How long a shard worker holds an open batch waiting for riders
    /// after the first request arrives. `ZERO` disables coalescing
    /// waits (each batch is whatever is already queued).
    pub latency_budget: Duration,
    /// Demand-paged servers only ([`BatchServer::start_paged`]): how
    /// long a hot shard worker sits with an empty queue before spinning
    /// itself down (writing its model back through the store and
    /// exiting). `None` — the default — means idle shards stay hot and
    /// spin down only under budget pressure (the LRU drain policy).
    pub idle_ttl: Option<Duration>,
    /// Tracking-session servers only ([`crate::TrackingServer`]): number
    /// of independently locked shards the per-device session table is
    /// split across. Plain [`BatchServer`]s ignore it.
    pub session_shards: usize,
    /// Tracking-session servers only: how many *consecutive* fixes must
    /// agree on a device's new zone before the session commits the
    /// transition and emits entered/left events (the zone-stability
    /// hysteresis window). Plain [`BatchServer`]s ignore it.
    pub stability_k: u32,
    /// Tracking-session servers only: logical-time units (the `at`
    /// stamps callers submit with) a session may sit without an
    /// observation before a sweep marks it away (emitting `Left` if it
    /// was in a zone) and a later sweep evicts it. `None` — the default
    /// — keeps silent sessions forever. Plain [`BatchServer`]s ignore
    /// it.
    pub away_timeout: Option<u64>,
    /// Inference tier shards serve in. `Exact` — the default — serves
    /// the f64 models untouched (bit-identical to every earlier
    /// release). `F32` / `Int8` lower each model once, off the hot path
    /// (at resident startup, or right after a paged fault-in), via
    /// [`Localizer::try_lower`]; models that cannot lower (e.g. the kNN
    /// radio map) keep serving exact. Lowered shards stay within the
    /// tier's accuracy gate, and persistence write-through always
    /// carries the exact f64 snapshot.
    pub precision: InferencePrecision,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 128,
            latency_budget: Duration::from_micros(500),
            idle_ttl: None,
            session_shards: 16,
            stability_k: 3,
            away_timeout: None,
            precision: InferencePrecision::Exact,
        }
    }
}

/// Lowers a leased model into `precision` when requested and possible,
/// *discarding* the exact progenitor; models that cannot lower (or an
/// `Exact` config) serve unchanged. Paged workers use this at fault-in —
/// dropping the f64 model is the point (only the lowered twin stays
/// resident), and persistence is safe because the twin's snapshot is the
/// progenitor's exact state. The fully-resident server stashes the
/// progenitor instead (see [`BatchServer::start`]) so shutdown hands
/// exact models back.
fn lower_for_serving(
    model: Box<dyn Localizer>,
    precision: InferencePrecision,
) -> Box<dyn Localizer> {
    if precision == InferencePrecision::Exact {
        return model;
    }
    match model.try_lower(precision) {
        Some(lowered) => lowered,
        None => model,
    }
}

/// Live per-shard queue gauges, shared between the submit paths and the
/// shard worker. Unlike the cumulative [`ShardStats`] counters these go
/// *down* again — they are the admission-control watermark inputs the
/// network front end (`noble-net`) reads on its shedding path, so they
/// are plain atomics rather than another mutex.
#[derive(Debug, Default)]
struct ShardGauges {
    /// Requests submitted but not yet picked into an inference batch.
    queued: AtomicU64,
    /// Requests submitted but not yet replied to (queued + in service).
    in_flight: AtomicU64,
}

impl ShardGauges {
    /// Balanced decrement: every submit's increment is matched by exactly
    /// one decrement on the dequeue/reply path, but a server tearing down
    /// mid-submit can retire a job the worker never saw — saturate rather
    /// than wrap so a shutdown race can only under-report, never poison
    /// the gauge.
    fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
    }
}

/// Whole-server queue gauge snapshot ([`BatchServer::server_stats`] /
/// [`ServeClient::server_stats`]): the load picture an admission layer
/// needs — how much work is waiting and how much is in flight right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests submitted but not yet picked into an inference batch,
    /// summed over every shard.
    pub queue_depth: u64,
    /// Requests submitted but not yet replied to, summed over every
    /// shard.
    pub in_flight: u64,
    /// Shards being served.
    pub shards: usize,
}

/// Per-shard serving counters, readable live via [`BatchServer::stats`]
/// and returned at [`BatchServer::shutdown`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Fixes served (successfully or with a per-request error reply).
    pub requests: u64,
    /// Inference calls issued.
    pub batches: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Largest coalesced batch.
    pub max_batch: usize,
    /// Total request latency (enqueue to reply) in microseconds.
    pub total_latency_us: u128,
    /// Worst single-request latency in microseconds.
    pub max_latency_us: u128,
    /// Time spent inside the model's `localize_batch` in microseconds.
    pub busy_us: u128,
    /// Gauge snapshot: requests queued (submitted, not yet batched) at
    /// the moment the stats were read. Always `0` in the final stats a
    /// graceful shutdown returns.
    pub queue_depth: u64,
    /// Gauge snapshot: requests in flight (submitted, not yet replied)
    /// at the moment the stats were read.
    pub in_flight: u64,
}

impl ShardStats {
    /// Mean coalesced batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean request latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }
}

/// Demand-paging lifecycle counters ([`BatchServer::paged_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedStats {
    /// Worker spin-ups: a request found its shard cold and faulted it in.
    pub faults: u64,
    /// Workers that retired after [`BatchConfig::idle_ttl`] with an
    /// empty queue.
    pub idle_spin_downs: u64,
    /// Workers drained under budget pressure (LRU victim retired so a
    /// colder shard could warm).
    pub drains: u64,
    /// Requests that arrived while their shard was cold or still warming
    /// and parked in the worker's queue until the model was resident.
    pub parked_requests: u64,
    /// Workers currently holding (or faulting in) a model — never more
    /// than a [`CatalogBudget::Count`] allows.
    pub hot_shards: usize,
    /// Model-version swaps picked up by hot workers at a batch boundary
    /// (an activation or rollback landed while the shard was serving).
    pub refresh_swaps: u64,
    /// The shared catalog's lifecycle counters (hits / hydrations /
    /// retrains / evictions / pinned).
    pub catalog: CatalogStats,
}

/// One queued request or lifecycle marker.
enum Job {
    Fix {
        fingerprint: Vec<f64>,
        enqueued: Instant,
        reply: Sender<Result<Point, ServeError>>,
    },
    /// Paged only: retire after serving everything queued ahead of this
    /// marker; write the model back through the store and free it.
    Drain,
    /// Retire after serving the backlog. A static worker returns its
    /// model to the caller; a paged worker parks it in the shared
    /// catalog.
    Shutdown,
}

/// An in-flight fix: redeem with [`PendingFix::wait`].
#[derive(Debug)]
pub struct PendingFix {
    rx: Receiver<Result<Point, ServeError>>,
    cold: bool,
}

impl PendingFix {
    /// Blocks until the shard worker replies.
    ///
    /// # Errors
    ///
    /// The serving error the worker sent, or [`ServeError::ShuttingDown`]
    /// when the worker exited without replying.
    pub fn wait(self) -> Result<Point, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Whether this fix found its shard cold (or still warming) and had
    /// to park while the model faulted in — always `false` on a
    /// fully-resident server. Latency-sensitive callers use this to
    /// split cold-start tails from steady-state percentiles.
    pub fn cold(&self) -> bool {
        self.cold
    }
}

/// One fully-resident shard's submission route: its worker's sender plus
/// the gauges the submit path ticks.
#[derive(Clone)]
struct StaticRoute {
    tx: Sender<Job>,
    gauges: Arc<ShardGauges>,
}

/// Routing table behind a [`ServeClient`] (and the server itself).
#[derive(Clone)]
enum Router {
    /// Fixed sender per shard, workers alive for the server's lifetime.
    Static(BTreeMap<ShardKey, StaticRoute>),
    /// Dynamic: senders appear and disappear as shards spin up and down.
    Paged(Arc<PagedEngine>),
}

/// A cloneable submission handle onto a running [`BatchServer`].
#[derive(Clone)]
pub struct ServeClient {
    router: Router,
}

impl ServeClient {
    /// Enqueues one fingerprint for `key`'s shard and returns the pending
    /// reply without blocking (clients pipeline by submitting many fixes
    /// before waiting — that depth is what the worker coalesces). On a
    /// demand-paged server, a submit to a cold shard spins its worker up
    /// and parks the request while the model faults in.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for an unroutable key,
    /// [`ServeError::ShuttingDown`] when the server is stopping.
    pub fn submit(&self, key: ShardKey, fingerprint: Vec<f64>) -> Result<PendingFix, ServeError> {
        match &self.router {
            Router::Static(routes) => {
                let route = routes.get(&key).ok_or(ServeError::UnknownShard(key))?;
                let (tx, rx) = mpsc::channel();
                // Gauges tick up *before* the send so the worker's
                // matching decrement can never land first; a failed send
                // takes them back down.
                route.gauges.queued.fetch_add(1, Ordering::AcqRel);
                route.gauges.in_flight.fetch_add(1, Ordering::AcqRel);
                route
                    .tx
                    .send(Job::Fix {
                        fingerprint,
                        // noble-lint: allow(wall-clock, "enqueue stamp feeds latency metrics only; results never read it")
                        enqueued: Instant::now(),
                        reply: tx,
                    })
                    .map_err(|_| {
                        ShardGauges::dec(&route.gauges.queued);
                        ShardGauges::dec(&route.gauges.in_flight);
                        ServeError::ShuttingDown
                    })?;
                Ok(PendingFix { rx, cold: false })
            }
            Router::Paged(engine) => engine.submit(key, fingerprint),
        }
    }

    /// Submits and blocks for the result (the per-fix convenience path).
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`] plus whatever the worker replies.
    pub fn localize(&self, key: ShardKey, fingerprint: Vec<f64>) -> Result<Point, ServeError> {
        self.submit(key, fingerprint)?.wait()
    }

    /// Keys this client can route to.
    pub fn keys(&self) -> Vec<ShardKey> {
        match &self.router {
            Router::Static(routes) => routes.keys().copied().collect(),
            Router::Paged(engine) => engine.keys.iter().copied().collect(),
        }
    }

    /// Whole-server queue gauge snapshot (see
    /// [`BatchServer::server_stats`]). Exposed on the client handle so an
    /// admission layer holding only a [`ServeClient`] can read its
    /// watermarks without a reference to the server.
    pub fn server_stats(&self) -> ServerStats {
        match &self.router {
            Router::Static(routes) => sum_gauges(routes.values().map(|r| r.gauges.as_ref())),
            Router::Paged(engine) => sum_gauges(engine.gauges.values().map(Arc::as_ref)),
        }
    }
}

/// Sums per-shard gauges into a [`ServerStats`] snapshot.
fn sum_gauges<'a>(gauges: impl Iterator<Item = &'a ShardGauges>) -> ServerStats {
    let mut out = ServerStats::default();
    for g in gauges {
        out.queue_depth += g.queued.load(Ordering::Acquire);
        out.in_flight += g.in_flight.load(Ordering::Acquire);
        out.shards += 1;
    }
    out
}

/// A shard's routing slot. Absent from the map = COLD (no worker).
enum Slot {
    /// Worker spawned, model still faulting in; requests park in `tx`.
    Warming { tx: Sender<Job> },
    /// Worker serving; `last_active` orders LRU drain victims, `cost`
    /// is the model's budget cost (for drain-in-flight accounting).
    Hot {
        tx: Sender<Job>,
        last_active: u64,
        cost: usize,
    },
}

/// Slot map plus occupancy accounting (all under one short-held lock;
/// lock order where both are taken: `slots` before `paged`).
struct Slots {
    map: BTreeMap<ShardKey, Slot>,
    /// Workers currently holding (or faulting in) a model.
    occupancy: usize,
    /// Budget cost (encoded-snapshot bytes) of those models.
    occupied_bytes: usize,
    /// Drain markers sent whose workers have not yet released their
    /// occupancy — counted so budget decisions see the room already on
    /// its way instead of cascading drains while a victim is still
    /// writing its model back.
    draining: usize,
    /// Budget cost of those draining models.
    draining_bytes: usize,
    /// Logical activity clock for LRU victim selection.
    clock: u64,
    /// Handles of live (and recently finished) workers; reaped on spawn,
    /// joined at shutdown.
    workers: Vec<JoinHandle<()>>,
}

/// Shared state of a demand-paged server.
pub(crate) struct PagedEngine {
    pub(crate) catalog: SharedCatalog,
    cfg: BatchConfig,
    /// Routable keys, fixed at start (the catalog's keys).
    pub(crate) keys: BTreeSet<ShardKey>,
    /// Max workers holding a model at once ([`CatalogBudget::Count`]).
    max_hot: usize,
    /// Byte bound on held models ([`CatalogBudget::Bytes`]).
    byte_budget: Option<usize>,
    slots: Mutex<Slots>,
    /// Signals occupancy releases to warming workers waiting for room.
    room: Condvar,
    shutting_down: AtomicBool,
    stats: BTreeMap<ShardKey, Arc<Mutex<ShardStats>>>,
    gauges: BTreeMap<ShardKey, Arc<ShardGauges>>,
    paged: Mutex<PagedStats>,
}

impl PagedEngine {
    fn submit(
        self: &Arc<Self>,
        key: ShardKey,
        fingerprint: Vec<f64>,
    ) -> Result<PendingFix, ServeError> {
        if !self.keys.contains(&key) {
            return Err(ServeError::UnknownShard(key));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut slots = relock(&self.slots);
        // Checked under the lock: shutdown sets the flag and sweeps the
        // slot map while holding it, so a submit that sees the flag clear
        // here cannot enqueue onto a swept shard.
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        slots.clock += 1;
        let now = slots.clock;
        let (tx, cold) = match slots.map.get_mut(&key) {
            Some(Slot::Hot {
                tx, last_active, ..
            }) => {
                *last_active = now;
                (tx.clone(), false)
            }
            Some(Slot::Warming { tx }) => (tx.clone(), true),
            None => {
                let tx = self.spawn_worker(&mut slots, key)?;
                (tx, true)
            }
        };
        let gauges = &self.gauges[&key];
        gauges.queued.fetch_add(1, Ordering::AcqRel);
        gauges.in_flight.fetch_add(1, Ordering::AcqRel);
        // Sending under the lock orders every fix against the lifecycle
        // markers (Drain/Shutdown are also sent under it): a fix is
        // either ahead of the marker — served by the retiring worker —
        // or routed to a fresh successor. Never dropped.
        // noble-lint: allow(lock-discipline, "unbounded channel: send never blocks, and sending under the slots lock is the fix-vs-marker ordering argument above")
        tx.send(Job::Fix {
            fingerprint,
            // noble-lint: allow(wall-clock, "enqueue stamp feeds latency metrics only; results never read it")
            enqueued: Instant::now(),
            reply: reply_tx,
        })
        .map_err(|_| {
            ShardGauges::dec(&gauges.queued);
            ShardGauges::dec(&gauges.in_flight);
            ServeError::ShuttingDown
        })?;
        if cold {
            relock(&self.paged).parked_requests += 1;
        }
        Ok(PendingFix { rx: reply_rx, cold })
    }

    /// Spawns a shard worker in the WARMING state and returns its sender.
    /// Caller holds the slots lock.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] when the OS refuses the thread — the slot
    /// map is untouched on failure, so a later submit simply retries.
    fn spawn_worker(
        self: &Arc<Self>,
        slots: &mut Slots,
        key: ShardKey,
    ) -> Result<Sender<Job>, ServeError> {
        // Reap handles of workers that already spun down so a long-lived
        // server does not accumulate one handle per spin cycle.
        let mut i = 0;
        while i < slots.workers.len() {
            if slots.workers[i].is_finished() {
                let _ = slots.workers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let engine = Arc::clone(self);
        let shard_stats = Arc::clone(&self.stats[&key]);
        let shard_gauges = Arc::clone(&self.gauges[&key]);
        // Spawn before publishing the slot: a spawn failure must not
        // leave a WARMING entry whose worker never existed.
        let handle = std::thread::Builder::new()
            .name(format!("noble-page-{key}"))
            .spawn(move || paged_worker(engine, key, rx, shard_stats, shard_gauges))
            .map_err(|e| {
                ServeError::Internal(format!("cannot spawn worker for shard {key}: {e}"))
            })?;
        slots.map.insert(key, Slot::Warming { tx: tx.clone() });
        slots.workers.push(handle);
        relock(&self.paged).faults += 1;
        Ok(tx)
    }

    /// Whether a warming worker may claim an occupancy slot now.
    fn admit(&self, slots: &Slots) -> bool {
        if slots.occupancy == 0 {
            // A single model always serves, however large (mirrors the
            // catalog's byte-budget semantics).
            return true;
        }
        if slots.occupancy >= self.max_hot {
            return false;
        }
        match self.byte_budget {
            Some(bound) => slots.occupied_bytes < bound,
            None => true,
        }
    }

    /// Asks the least-recently-active HOT worker (never `except`) to
    /// drain: its slot goes cold immediately — newer requests re-warm
    /// through a successor — while the retiring worker serves everything
    /// already queued, writes its model back, and releases its occupancy
    /// slot. Returns whether a victim was found. Caller holds the slots
    /// lock.
    fn request_drain(&self, slots: &mut Slots, except: ShardKey) -> bool {
        let victim = slots
            .map
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Hot { last_active, .. } if *k != except => Some((*last_active, *k)),
                _ => None,
            })
            .min()
            .map(|(_, k)| k);
        let Some(victim) = victim else { return false };
        if let Some(Slot::Hot { tx, cost, .. }) = slots.map.remove(&victim) {
            let _ = tx.send(Job::Drain);
            slots.draining += 1;
            slots.draining_bytes += cost;
            relock(&self.paged).drains += 1;
            true
        } else {
            false
        }
    }

    /// Whether the budget will hold once the drains already in flight
    /// release — if so, a waiting warming worker should *not* request
    /// another victim (one cold fault must not cascade into retiring
    /// every hot shard while the first victim is still writing its model
    /// back through the store).
    fn room_already_coming(&self, slots: &Slots) -> bool {
        let occupancy = slots.occupancy.saturating_sub(slots.draining);
        if occupancy == 0 {
            return true;
        }
        if occupancy >= self.max_hot {
            return false;
        }
        match self.byte_budget {
            Some(bound) => slots.occupied_bytes.saturating_sub(slots.draining_bytes) < bound,
            None => true,
        }
    }
}

/// How a paged worker retires.
enum Retire {
    /// Write the model back through the store and free it. `requested`
    /// distinguishes a budget-pressure drain (counted in
    /// `Slots::draining` until the release lands) from an idle-TTL or
    /// vanished-slot spin-down.
    Cold { requested: bool },
    /// Park the model live in the shared catalog (server shutdown).
    Park,
}

/// A demand-paged shard worker: claim a budget slot (draining an LRU
/// victim if the server is at capacity), lease the model, serve batches,
/// retire. See the module docs for the state diagram.
fn paged_worker(
    engine: Arc<PagedEngine>,
    key: ShardKey,
    rx: Receiver<Job>,
    stats: Arc<Mutex<ShardStats>>,
    gauges: Arc<ShardGauges>,
) {
    // ---- WARMING: claim an occupancy slot under the budget. ----
    {
        let mut slots = relock(&engine.slots);
        loop {
            // A shutdown that lands while this worker is still waiting
            // for budget room must not fault a model in just to serve
            // the stragglers (a spec-only shard would *retrain* on the
            // shutdown path): reject everything parked behind the fault
            // with the typed error instead. The slot was already swept,
            // so nothing new can join the queue.
            if engine.shutting_down.load(Ordering::Acquire) {
                drop(slots);
                reject_parked(&rx, ServeError::ShuttingDown, &stats, &gauges);
                return;
            }
            if engine.admit(&slots) {
                slots.occupancy += 1;
                break;
            }
            // Ask for one victim at a time: while a drain is already in
            // flight (its worker is writing the model back), re-polls
            // must not keep retiring further hot shards.
            if !engine.room_already_coming(&slots) {
                engine.request_drain(&mut slots, key);
            }
            // Re-poll on a short timeout: the victim this round may still
            // be WARMING (undrainable) — once it turns HOT a later pass
            // drains it, so waiting must not be notification-only.
            let (guard, _) = rewait_timeout(&engine.room, slots, Duration::from_millis(5));
            slots = guard;
        }
    }

    // ---- WARMING: fault the model in (no engine lock held). ----
    let (model, cost, mut version) = match engine.catalog.lease(key) {
        Ok(leased) => leased,
        Err(e) => {
            fail_cold(&engine, key, &rx, e, &stats, &gauges);
            return;
        }
    };
    // Lowering happens here, once per fault, still off the hot path. The
    // lowered twin's snapshot is the progenitor's exact f64 state, so
    // drain write-through and shutdown parking stay full-precision.
    let mut model = lower_for_serving(model, engine.cfg.precision);
    // Budget accounting is pinned to the lease-time cost for the whole
    // worker lifetime (a mid-flight version swap of the same
    // architecture moves the estimate negligibly, and a stable figure
    // keeps the slots/draining books exact).
    let lease_cost = cost;
    let mut cost = cost;
    // The swap epoch this worker has observed; re-checked between
    // batches (one atomic load) so a version bump lands at a batch
    // boundary, never mid-batch.
    let mut epoch = engine.catalog.epoch();
    {
        let mut slots = relock(&engine.slots);
        slots.occupied_bytes += cost;
        slots.clock += 1;
        let now = slots.clock;
        if let Some(slot) = slots.map.get_mut(&key) {
            if let Slot::Warming { tx } = slot {
                let tx = tx.clone();
                *slot = Slot::Hot {
                    tx,
                    last_active: now,
                    cost,
                };
            }
        }
        // Byte budgets learn a model's cost only after the lease; shed
        // least-recently-active peers if this one pushed past the bound —
        // counting the bytes already draining, so one oversized lease
        // retires only as many victims as the overshoot needs.
        if let Some(bound) = engine.byte_budget {
            while slots.occupied_bytes.saturating_sub(slots.draining_bytes) > bound
                && engine.request_drain(&mut slots, key)
            {}
        }
    }

    // ---- HOT: the serve loop. ----
    let mut feature_dim = model.info().feature_dim;
    let retire = 'serve: loop {
        // First job of a batch, honoring the idle TTL.
        let job = match engine.cfg.idle_ttl {
            Some(ttl) => match rx.recv_timeout(ttl) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    // Idle: go cold — unless a submit raced the timeout.
                    // Submits send while holding the slots lock, so the
                    // emptiness check below is atomic with removing the
                    // slot.
                    let mut slots = relock(&engine.slots);
                    // noble-lint: allow(lock-discipline, "non-blocking try_recv, deliberately under the slots lock: the emptiness check must be atomic with removing the slot or a racing submit is dropped")
                    match rx.try_recv() {
                        Ok(job) => job,
                        Err(_) => {
                            slots.map.remove(&key);
                            drop(slots);
                            relock(&engine.paged).idle_spin_downs += 1;
                            break 'serve Retire::Cold { requested: false };
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    break 'serve Retire::Cold { requested: false }
                }
            },
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => break 'serve Retire::Cold { requested: false },
            },
        };
        let first = match job {
            Job::Fix {
                fingerprint,
                enqueued,
                reply,
            } => {
                ShardGauges::dec(&gauges.queued);
                (fingerprint, enqueued, reply)
            }
            Job::Drain => break 'serve Retire::Cold { requested: true },
            Job::Shutdown => break 'serve Retire::Park,
        };
        // Version check at the batch boundary: an activation or rollback
        // since the last batch swaps the model *here*, before anything of
        // this batch is served — every batch runs against exactly one
        // generation, and answers within a pinned version stay
        // bit-stable. An unchanged epoch is one atomic load.
        let now_epoch = engine.catalog.epoch();
        if now_epoch != epoch {
            epoch = now_epoch;
            if let Some((fresh, fresh_cost, fresh_version)) =
                engine.catalog.refresh_lease(key, version)
            {
                model = lower_for_serving(fresh, engine.cfg.precision);
                feature_dim = model.info().feature_dim;
                cost = fresh_cost;
                version = fresh_version;
                relock(&engine.paged).refresh_swaps += 1;
            }
        }
        let mut batch = vec![first];
        let mut retire_after = None;
        if engine.cfg.max_batch > 1 {
            // noble-lint: allow(wall-clock, "batching deadline only: batch boundaries never change answers (shape-invariant kernels)")
            let deadline = Instant::now() + engine.cfg.latency_budget;
            while batch.len() < engine.cfg.max_batch {
                // noble-lint: allow(wall-clock, "remaining-budget poll for the coalescing wait; never feeds a result")
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(Job::Fix {
                        fingerprint,
                        enqueued,
                        reply,
                    }) => {
                        ShardGauges::dec(&gauges.queued);
                        batch.push((fingerprint, enqueued, reply));
                    }
                    Ok(Job::Drain) => {
                        retire_after = Some(Retire::Cold { requested: true });
                        break;
                    }
                    Ok(Job::Shutdown) => {
                        retire_after = Some(Retire::Park);
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        retire_after = Some(Retire::Cold { requested: false });
                        break;
                    }
                }
            }
        }
        serve_batch(model.as_mut(), key, feature_dim, batch, &stats, &gauges);
        if let Some(retire) = retire_after {
            break 'serve retire;
        }
    };

    // ---- DRAINING: hand the model back, release the budget slot. ----
    match retire {
        Retire::Cold { .. } => engine.catalog.release_cold(key, model, cost, version),
        // A lowered twin never parks: parking would leave reduced-precision
        // state in the catalog's resident tier. Write it back through the
        // store instead (its snapshot is the progenitor's exact f64 state),
        // so the catalog only ever holds exact models.
        Retire::Park if engine.cfg.precision != InferencePrecision::Exact => {
            engine.catalog.release_cold(key, model, cost, version)
        }
        Retire::Park => engine.catalog.release_parked(key, model, cost, version),
    }
    let mut slots = relock(&engine.slots);
    slots.occupancy -= 1;
    slots.occupied_bytes -= lease_cost;
    if let Retire::Cold { requested: true } = retire {
        slots.draining = slots.draining.saturating_sub(1);
        slots.draining_bytes = slots.draining_bytes.saturating_sub(lease_cost);
    }
    engine.room.notify_all();
}

/// A warming worker whose lease failed: go cold and fail every request
/// parked behind the fault with the lease error.
fn fail_cold(
    engine: &Arc<PagedEngine>,
    key: ShardKey,
    rx: &Receiver<Job>,
    err: ServeError,
    stats: &Mutex<ShardStats>,
    gauges: &ShardGauges,
) {
    {
        let mut slots = relock(&engine.slots);
        slots.map.remove(&key);
        slots.occupancy -= 1;
        engine.room.notify_all();
    }
    // Everything parked before the slot was removed is in the queue;
    // nothing new can arrive (the sender in the map was the last route).
    reject_parked(rx, err, stats, gauges);
}

/// Replies to every request still parked in `rx` with the typed error —
/// a retiring worker must never just drop reply channels — tallying the
/// failures and settling the queue gauges. Lifecycle markers in the
/// queue are ignored. Drains and replies lock-free, then folds the
/// tallies in at the end.
fn reject_parked(
    rx: &Receiver<Job>,
    err: ServeError,
    stats: &Mutex<ShardStats>,
    gauges: &ShardGauges,
) {
    let mut failed: Vec<u128> = Vec::new();
    while let Ok(job) = rx.try_recv() {
        if let Job::Fix {
            enqueued, reply, ..
        } = job
        {
            ShardGauges::dec(&gauges.queued);
            // Gauge before reply, same as the served path: the reply
            // must never be observable while the gauges still count it.
            ShardGauges::dec(&gauges.in_flight);
            let _ = reply.send(Err(err.clone()));
            failed.push(enqueued.elapsed().as_micros());
        }
    }
    let mut tally = relock(stats);
    for waited in failed {
        tally.requests += 1;
        tally.errors += 1;
        tally.total_latency_us += waited;
        tally.max_latency_us = tally.max_latency_us.max(waited);
    }
}

/// The serving engine behind a [`BatchServer`].
enum Engine {
    Static {
        routes: BTreeMap<ShardKey, StaticRoute>,
        stats: BTreeMap<ShardKey, Arc<Mutex<ShardStats>>>,
        workers: Vec<(ShardKey, JoinHandle<Box<dyn Localizer>>)>,
        /// Exact progenitors of shards serving a lowered twin: held so
        /// shutdown hands back full-precision models, not the twins.
        exact: BTreeMap<ShardKey, Box<dyn Localizer>>,
    },
    Paged(Arc<PagedEngine>),
}

/// The running micro-batching server (see the module docs).
pub struct BatchServer {
    engine: Engine,
}

impl BatchServer {
    /// Moves every shard of `registry` onto its own worker thread and
    /// starts accepting requests (the fully-resident discipline — for
    /// more shards than fit in memory, see [`BatchServer::start_paged`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] for an empty registry,
    /// [`ServeError::InvalidConfig`] for a zero `max_batch`.
    pub fn start(registry: ShardedRegistry, cfg: BatchConfig) -> Result<Self, ServeError> {
        if registry.is_empty() {
            return Err(ServeError::NoShards);
        }
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        let mut routes = BTreeMap::new();
        let mut stats = BTreeMap::new();
        let mut workers = Vec::new();
        let mut exact = BTreeMap::new();
        for (key, localizer) in registry.into_shards() {
            // A lowered tier serves the twin but keeps the exact
            // progenitor parked: shutdown_with_registry must hand back
            // full-precision models (and a restart may pick a different
            // tier). Models that cannot lower keep serving exact.
            let localizer = if cfg.precision == InferencePrecision::Exact {
                localizer
            } else {
                match localizer.try_lower(cfg.precision) {
                    Some(twin) => {
                        exact.insert(key, localizer);
                        twin
                    }
                    None => localizer,
                }
            };
            let (tx, rx) = mpsc::channel::<Job>();
            let shard_stats = Arc::new(Mutex::new(ShardStats::default()));
            let worker_stats = Arc::clone(&shard_stats);
            let shard_gauges = Arc::new(ShardGauges::default());
            let worker_gauges = Arc::clone(&shard_gauges);
            // Workers spawned before a failure wind down on their own:
            // dropping `routes` disconnects their channels.
            let handle = std::thread::Builder::new()
                .name(format!("noble-serve-{key}"))
                .spawn(move || shard_worker(localizer, key, rx, cfg, &worker_stats, &worker_gauges))
                .map_err(|e| {
                    ServeError::Internal(format!("cannot spawn worker for shard {key}: {e}"))
                })?;
            routes.insert(
                key,
                StaticRoute {
                    tx,
                    gauges: shard_gauges,
                },
            );
            stats.insert(key, shard_stats);
            workers.push((key, handle));
        }
        Ok(BatchServer {
            engine: Engine::Static {
                routes,
                stats,
                workers,
                exact,
            },
        })
    }

    /// Starts a **demand-paged** server over every shard the catalog can
    /// serve — resident models, stored snapshots, and registered
    /// [`crate::TrainSpec`]s alike. Workers fault models in through the
    /// shared catalog on a shard's first request and spin down under the
    /// idle TTL or budget pressure (see the module docs), so one process
    /// serves strictly more shards than the catalog's
    /// [`crate::CatalogBudget`] allows resident, with answers
    /// bit-identical to the fully-resident server.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] for an empty catalog,
    /// [`ServeError::InvalidConfig`] for a zero `max_batch`.
    pub fn start_paged(catalog: ModelCatalog, cfg: BatchConfig) -> Result<Self, ServeError> {
        if catalog.is_empty() {
            return Err(ServeError::NoShards);
        }
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        let (max_hot, byte_budget) = match catalog.budget() {
            CatalogBudget::Unbounded => (usize::MAX, None),
            CatalogBudget::Count(n) => (n, None),
            CatalogBudget::Bytes(b) => (usize::MAX, Some(b)),
        };
        let shared = catalog.into_shared();
        let keys: BTreeSet<ShardKey> = shared.keys().into_iter().collect();
        let stats = keys
            .iter()
            .map(|k| (*k, Arc::new(Mutex::new(ShardStats::default()))))
            .collect();
        let gauges = keys
            .iter()
            .map(|k| (*k, Arc::new(ShardGauges::default())))
            .collect();
        Ok(BatchServer {
            engine: Engine::Paged(Arc::new(PagedEngine {
                catalog: shared,
                cfg,
                keys,
                max_hot,
                byte_budget,
                slots: Mutex::new(Slots {
                    map: BTreeMap::new(),
                    occupancy: 0,
                    occupied_bytes: 0,
                    draining: 0,
                    draining_bytes: 0,
                    clock: 0,
                    workers: Vec::new(),
                }),
                room: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                stats,
                gauges,
                paged: Mutex::new(PagedStats::default()),
            })),
        })
    }

    /// Warm restart: hydrates every snapshot in `store` back into a
    /// servable model ([`noble::hydrate`] — bit-identical to the model
    /// that was saved) and starts serving. A restarted process skips
    /// retraining entirely; combined with
    /// [`crate::ShardedRegistry::save_to`] /
    /// [`crate::ModelCatalog::export_to`] this closes the
    /// train → save → restart → serve loop.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] for an empty store,
    /// [`ServeError::BadSnapshot`] for a corrupt stored model, plus
    /// whatever [`BatchServer::start`] rejects.
    pub fn start_from_store(store: &dyn ModelStore, cfg: BatchConfig) -> Result<Self, ServeError> {
        let keys = store.list()?;
        if keys.is_empty() {
            return Err(ServeError::NoShards);
        }
        let mut registry = ShardedRegistry::new();
        for key in keys {
            let snapshot = store.get(key)?.ok_or(ServeError::UnknownShard(key))?;
            let model = noble::hydrate(&snapshot)?;
            registry.insert(key, model);
        }
        BatchServer::start(registry, cfg)
    }

    /// A new submission handle (cheap to clone per client thread).
    pub fn client(&self) -> ServeClient {
        ServeClient {
            router: match &self.engine {
                Engine::Static { routes, .. } => Router::Static(routes.clone()),
                Engine::Paged(engine) => Router::Paged(Arc::clone(engine)),
            },
        }
    }

    /// Shard keys being served.
    pub fn keys(&self) -> Vec<ShardKey> {
        match &self.engine {
            Engine::Static { routes, .. } => routes.keys().copied().collect(),
            Engine::Paged(engine) => engine.keys.iter().copied().collect(),
        }
    }

    /// Live per-shard statistics snapshot, in key order, with the queue
    /// gauges overlaid as of the read.
    pub fn stats(&self) -> Vec<(ShardKey, ShardStats)> {
        fn overlay(s: &Arc<Mutex<ShardStats>>, g: &ShardGauges) -> ShardStats {
            let mut snap = relock(s).clone();
            snap.queue_depth = g.queued.load(Ordering::Acquire);
            snap.in_flight = g.in_flight.load(Ordering::Acquire);
            snap
        }
        match &self.engine {
            Engine::Static { routes, stats, .. } => stats
                .iter()
                .map(|(k, s)| (*k, overlay(s, &routes[k].gauges)))
                .collect(),
            Engine::Paged(engine) => engine
                .stats
                .iter()
                .map(|(k, s)| (*k, overlay(s, &engine.gauges[k])))
                .collect(),
        }
    }

    /// Whole-server queue gauge snapshot: how much work is waiting and in
    /// flight right now, summed over every shard. This (via
    /// [`ServeClient::server_stats`]) is what the `noble-net` admission
    /// layer reads for its shedding watermarks.
    pub fn server_stats(&self) -> ServerStats {
        match &self.engine {
            Engine::Static { routes, .. } => sum_gauges(routes.values().map(|r| r.gauges.as_ref())),
            Engine::Paged(engine) => sum_gauges(engine.gauges.values().map(Arc::as_ref)),
        }
    }

    /// Demand-paging lifecycle counters; `None` on a fully-resident
    /// server.
    /// Builds the online-refresh companion of a demand-paged server: a
    /// [`Refresher`] sharing this server's catalog, through which
    /// buffered corrections become new model versions that workers pick
    /// up at batch boundaries (see [`Refresher`]'s docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for fully-resident servers
    /// ([`BatchServer::start`]) — live refresh needs the versioned
    /// catalog underneath [`BatchServer::start_paged`].
    pub fn refresher(&self, cfg: RefreshConfig) -> Result<Refresher, ServeError> {
        match &self.engine {
            Engine::Static { .. } => Err(ServeError::InvalidConfig(
                "online refresh requires a demand-paged server (BatchServer::start_paged)".into(),
            )),
            Engine::Paged(engine) => Ok(Refresher::new(Arc::clone(engine), cfg)),
        }
    }

    pub fn paged_stats(&self) -> Option<PagedStats> {
        match &self.engine {
            Engine::Static { .. } => None,
            Engine::Paged(engine) => {
                // Declared lock order: slots strictly before paged.
                let hot_shards = {
                    let slots = relock(&engine.slots);
                    slots.occupancy
                };
                let mut paged = {
                    let counters = relock(&engine.paged);
                    *counters
                };
                paged.hot_shards = hot_shards;
                paged.catalog = engine.catalog.stats();
                Some(paged)
            }
        }
    }

    /// Graceful shutdown: each worker finishes every request already
    /// queued ahead of the shutdown marker, then exits. Returns the final
    /// per-shard statistics.
    ///
    /// Clients still holding a [`ServeClient`] get
    /// [`ServeError::ShuttingDown`] on later submits.
    pub fn shutdown(mut self) -> Vec<(ShardKey, ShardStats)> {
        self.stop();
        self.stats()
    }

    /// Like [`BatchServer::shutdown`], but also hands the shard models
    /// back as a registry so a caller can restart serving under different
    /// batching knobs without retraining (the benchmark sweep's pattern).
    /// On a demand-paged server the registry holds the models that were
    /// live (hot or parked) at shutdown — shards that existed only as
    /// stored snapshots or train specs are dropped with the engine;
    /// prefer [`BatchServer::shutdown_with_catalog`], which keeps every
    /// tier.
    pub fn shutdown_with_registry(mut self) -> (Vec<(ShardKey, ShardStats)>, ShardedRegistry) {
        let mut shards = self.stop();
        let stats = self.stats();
        if let Engine::Paged(engine) = &self.engine {
            // Paged workers parked their models in the shared catalog at
            // shutdown rather than handing them through join handles.
            shards = engine.catalog.take_parked();
        }
        (stats, ShardedRegistry::restore(shards))
    }

    /// Shuts down and hands the whole model catalog back — resident
    /// models parked live, stored snapshots and train specs intact — so
    /// the caller can restart paged serving (or inspect the store)
    /// without losing a single tier.
    ///
    /// # Errors
    ///
    /// Propagates write-through failures while trimming the resident
    /// tier back under the catalog budget.
    pub fn shutdown_with_catalog(
        mut self,
    ) -> Result<(Vec<(ShardKey, ShardStats)>, ModelCatalog), ServeError> {
        let shards = self.stop();
        let stats = self.stats();
        let catalog = match &self.engine {
            Engine::Static { .. } => {
                let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded)?;
                for (key, model) in shards {
                    catalog.insert_sited(key, model)?;
                }
                catalog
            }
            Engine::Paged(engine) => engine.catalog.drain_into_catalog()?,
        };
        Ok((stats, catalog))
    }

    /// Sends the shutdown marker to every worker and joins them. Static
    /// workers hand their localizers back; paged workers park theirs in
    /// the shared catalog (and return an empty list here).
    fn stop(&mut self) -> Vec<(ShardKey, Box<dyn Localizer>)> {
        match &mut self.engine {
            Engine::Static {
                routes,
                workers,
                exact,
                ..
            } => {
                for route in routes.values() {
                    // A worker that already exited has dropped its
                    // receiver; that is fine — nothing left to drain.
                    let _ = route.tx.send(Job::Shutdown);
                }
                workers
                    .drain(..)
                    .filter_map(|(key, handle)| match handle.join() {
                        // A shard serving a lowered twin hands back its
                        // exact progenitor; the twin is dropped.
                        Ok(localizer) => Some((key, exact.remove(&key).unwrap_or(localizer))),
                        Err(panic) => {
                            // A panicked worker's model is gone; surface
                            // the cause instead of silently dropping the
                            // shard.
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".into());
                            eprintln!("noble-serve: shard {key} worker panicked: {msg}");
                            None
                        }
                    })
                    .collect()
            }
            Engine::Paged(engine) => {
                engine.shutting_down.store(true, Ordering::Release);
                let handles = {
                    let mut slots = relock(&engine.slots);
                    let keys: Vec<ShardKey> = slots.map.keys().copied().collect();
                    for key in keys {
                        if let Some(slot) = slots.map.remove(&key) {
                            let tx = match slot {
                                Slot::Warming { tx } | Slot::Hot { tx, .. } => tx,
                            };
                            // noble-lint: allow(lock-discipline, "unbounded channel: send never blocks; sweeping the map and sending markers under one lock guarantees no fix lands behind a shutdown marker")
                            let _ = tx.send(Job::Shutdown);
                        }
                    }
                    std::mem::take(&mut slots.workers)
                };
                for handle in handles {
                    let _ = handle.join();
                }
                Vec::new()
            }
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One fully-resident shard's serve loop: block for the first request,
/// hold the batch open under the latency budget, run one stacked
/// inference, reply.
fn shard_worker(
    mut localizer: Box<dyn Localizer>,
    key: ShardKey,
    rx: Receiver<Job>,
    cfg: BatchConfig,
    stats: &Mutex<ShardStats>,
    gauges: &ShardGauges,
) -> Box<dyn Localizer> {
    let feature_dim = localizer.info().feature_dim;
    loop {
        let first = match rx.recv() {
            Ok(Job::Fix {
                fingerprint,
                enqueued,
                reply,
            }) => {
                ShardGauges::dec(&gauges.queued);
                (fingerprint, enqueued, reply)
            }
            Ok(Job::Shutdown | Job::Drain) | Err(_) => {
                // Static submits are not ordered against the shutdown
                // marker (no lock on this path), so fixes can land behind
                // it: answer them with the typed rejection instead of
                // stranding their reply channels.
                reject_parked(&rx, ServeError::ShuttingDown, stats, gauges);
                return localizer;
            }
        };
        let mut batch = vec![first];
        let mut saw_shutdown = false;
        if cfg.max_batch > 1 {
            // noble-lint: allow(wall-clock, "batching deadline only: batch boundaries never change answers (shape-invariant kernels)")
            let deadline = Instant::now() + cfg.latency_budget;
            while batch.len() < cfg.max_batch {
                // noble-lint: allow(wall-clock, "remaining-budget poll for the coalescing wait; never feeds a result")
                let now = Instant::now();
                let wait = deadline.saturating_duration_since(now);
                // recv_timeout(ZERO) still drains already-queued jobs, so
                // a zero budget coalesces exactly the backlog.
                match rx.recv_timeout(wait) {
                    Ok(Job::Fix {
                        fingerprint,
                        enqueued,
                        reply,
                    }) => {
                        ShardGauges::dec(&gauges.queued);
                        batch.push((fingerprint, enqueued, reply));
                    }
                    Ok(Job::Shutdown | Job::Drain) => {
                        saw_shutdown = true;
                        break;
                    }
                    // Queue empty and the budget is spent (a zero `wait`
                    // still drains queued jobs, so past the deadline the
                    // loop keeps absorbing backlog without waiting until
                    // the queue runs dry or the batch fills).
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        saw_shutdown = true;
                        break;
                    }
                }
            }
        }
        serve_batch(localizer.as_mut(), key, feature_dim, batch, stats, gauges);
        if saw_shutdown {
            reject_parked(&rx, ServeError::ShuttingDown, stats, gauges);
            return localizer;
        }
    }
}

type QueuedFix = (Vec<f64>, Instant, Sender<Result<Point, ServeError>>);

/// Runs one coalesced batch through the shard's model and replies to every
/// rider. Width-mismatched fingerprints are rejected individually; the
/// rest still ride the stacked call (row independence makes the mixture
/// safe).
fn serve_batch(
    localizer: &mut dyn Localizer,
    key: ShardKey,
    feature_dim: usize,
    batch: Vec<QueuedFix>,
    stats: &Mutex<ShardStats>,
    gauges: &ShardGauges,
) {
    let mut valid: Vec<usize> = Vec::with_capacity(batch.len());
    let mut replies: Vec<Option<Result<Point, ServeError>>> = Vec::with_capacity(batch.len());
    for (i, (fingerprint, _, _)) in batch.iter().enumerate() {
        if fingerprint.len() == feature_dim {
            valid.push(i);
            replies.push(None);
        } else {
            replies.push(Some(Err(ServeError::FeatureDim {
                key,
                expected: feature_dim,
                found: fingerprint.len(),
            })));
        }
    }

    let mut busy = Duration::ZERO;
    if !valid.is_empty() {
        let mut data = Vec::with_capacity(valid.len() * feature_dim);
        for &i in &valid {
            data.extend_from_slice(&batch[i].0);
        }
        // Every width was checked above, so a length mismatch here (or a
        // model answering with the wrong row count below) is an internal
        // invariant failure — fail the riders, not the worker.
        let result = Matrix::from_vec(valid.len(), feature_dim, data)
            .map_err(|e| ServeError::from(noble::NobleError::from(e)))
            .and_then(|features| {
                let started = Instant::now(); // noble-lint: allow(wall-clock, "busy-time metric only; never feeds a result")
                let result = localizer
                    .localize_batch(&features)
                    .map_err(ServeError::from);
                busy = started.elapsed();
                result
            });
        match result {
            Ok(points) => {
                for (&i, point) in valid.iter().zip(points) {
                    replies[i] = Some(Ok(point));
                }
            }
            Err(e) => {
                for &i in &valid {
                    replies[i] = Some(Err(e.clone()));
                }
            }
        }
    }

    // Reply first, without the stats lock: a slow reply send must never
    // extend a critical section that stats readers also take.
    let batch_len = batch.len();
    let mut requests: u64 = 0;
    let mut errors: u64 = 0;
    let mut total_latency_us: u128 = 0;
    let mut max_latency_us: u128 = 0;
    for ((_, enqueued, reply), outcome) in batch.into_iter().zip(replies) {
        let outcome = outcome.unwrap_or_else(|| {
            Err(ServeError::Internal(format!(
                "shard {key} answered with too few predictions for its batch"
            )))
        });
        requests += 1;
        if outcome.is_err() {
            errors += 1;
        }
        // Release the gauge *before* the reply: whoever observes the
        // reply must observe the in-flight contribution already gone
        // (briefly undercounting is fine for the admission watermark;
        // lingering after the reply would make settled gauges racy).
        ShardGauges::dec(&gauges.in_flight);
        // A dropped PendingFix just means nobody is waiting; not an error.
        let _ = reply.send(outcome);
        let waited = enqueued.elapsed().as_micros();
        total_latency_us += waited;
        max_latency_us = max_latency_us.max(waited);
    }
    let mut tally = relock(stats);
    tally.batches += 1;
    tally.max_batch = tally.max_batch.max(batch_len);
    tally.busy_us += busy.as_micros();
    tally.requests += requests;
    tally.errors += errors;
    tally.total_latency_us += total_latency_us;
    tally.max_latency_us = tally.max_latency_us.max(max_latency_us);
}
