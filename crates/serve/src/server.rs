//! The micro-batching request pipeline.
//!
//! [`BatchServer`] owns one std worker thread per shard. Clients submit
//! fingerprints tagged with a [`ShardKey`]; the shard's worker coalesces
//! whatever arrives within a **latency budget** (or up to a **max batch
//! size**) into one stacked [`Localizer::localize_batch`] call and fans
//! the results back through per-request reply channels.
//!
//! Because the linalg substrate picks its matmul kernel per output row,
//! results are **bit-identical to unbatched serving no matter how
//! requests coalesce** — batching buys throughput, never changes answers
//! (pinned by the `serving_parity` integration test).
//!
//! The container targets offline std-only builds, so there is no async
//! runtime: blocking `mpsc` channels plus `recv_timeout` implement the
//! budgeted coalescing loop, and [`noble_linalg::num_threads`] /
//! `NOBLE_THREADS` still govern intra-batch matmul parallelism on top of
//! the inter-shard parallelism this module adds.

use crate::{ModelStore, ServeError, ShardKey, ShardedRegistry};
use noble::Localizer;
use noble_geo::Point;
use noble_linalg::Matrix;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest batch one shard inference call may carry.
    pub max_batch: usize,
    /// How long a shard worker holds an open batch waiting for riders
    /// after the first request arrives. `ZERO` disables coalescing
    /// waits (each batch is whatever is already queued).
    pub latency_budget: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 128,
            latency_budget: Duration::from_micros(500),
        }
    }
}

/// Per-shard serving counters, readable live via [`BatchServer::stats`]
/// and returned at [`BatchServer::shutdown`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Fixes served (successfully or with a per-request error reply).
    pub requests: u64,
    /// Inference calls issued.
    pub batches: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Largest coalesced batch.
    pub max_batch: usize,
    /// Total request latency (enqueue to reply) in microseconds.
    pub total_latency_us: u128,
    /// Worst single-request latency in microseconds.
    pub max_latency_us: u128,
    /// Time spent inside the model's `localize_batch` in microseconds.
    pub busy_us: u128,
}

impl ShardStats {
    /// Mean coalesced batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean request latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }
}

/// One queued request.
enum Job {
    Fix {
        fingerprint: Vec<f64>,
        enqueued: Instant,
        reply: Sender<Result<Point, ServeError>>,
    },
    Shutdown,
}

/// An in-flight fix: redeem with [`PendingFix::wait`].
#[derive(Debug)]
pub struct PendingFix {
    rx: Receiver<Result<Point, ServeError>>,
}

impl PendingFix {
    /// Blocks until the shard worker replies.
    ///
    /// # Errors
    ///
    /// The serving error the worker sent, or [`ServeError::ShuttingDown`]
    /// when the worker exited without replying.
    pub fn wait(self) -> Result<Point, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// A cloneable submission handle onto a running [`BatchServer`].
#[derive(Clone)]
pub struct ServeClient {
    senders: BTreeMap<ShardKey, Sender<Job>>,
}

impl ServeClient {
    /// Enqueues one fingerprint for `key`'s shard and returns the pending
    /// reply without blocking (clients pipeline by submitting many fixes
    /// before waiting — that depth is what the worker coalesces).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for an unroutable key,
    /// [`ServeError::ShuttingDown`] when the shard worker is gone.
    pub fn submit(&self, key: ShardKey, fingerprint: Vec<f64>) -> Result<PendingFix, ServeError> {
        let sender = self
            .senders
            .get(&key)
            .ok_or(ServeError::UnknownShard(key))?;
        let (tx, rx) = mpsc::channel();
        sender
            .send(Job::Fix {
                fingerprint,
                enqueued: Instant::now(),
                reply: tx,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        Ok(PendingFix { rx })
    }

    /// Submits and blocks for the result (the per-fix convenience path).
    ///
    /// # Errors
    ///
    /// As [`ServeClient::submit`] plus whatever the worker replies.
    pub fn localize(&self, key: ShardKey, fingerprint: Vec<f64>) -> Result<Point, ServeError> {
        self.submit(key, fingerprint)?.wait()
    }

    /// Keys this client can route to.
    pub fn keys(&self) -> Vec<ShardKey> {
        self.senders.keys().copied().collect()
    }
}

/// The running micro-batching server (see the module docs).
pub struct BatchServer {
    senders: BTreeMap<ShardKey, Sender<Job>>,
    stats: BTreeMap<ShardKey, Arc<Mutex<ShardStats>>>,
    workers: Vec<(ShardKey, JoinHandle<Box<dyn Localizer>>)>,
}

impl BatchServer {
    /// Moves every shard of `registry` onto its own worker thread and
    /// starts accepting requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] for an empty registry,
    /// [`ServeError::InvalidConfig`] for a zero `max_batch`.
    pub fn start(registry: ShardedRegistry, cfg: BatchConfig) -> Result<Self, ServeError> {
        if registry.is_empty() {
            return Err(ServeError::NoShards);
        }
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        let mut senders = BTreeMap::new();
        let mut stats = BTreeMap::new();
        let mut workers = Vec::new();
        for (key, localizer) in registry.into_shards() {
            let (tx, rx) = mpsc::channel::<Job>();
            let shard_stats = Arc::new(Mutex::new(ShardStats::default()));
            let worker_stats = Arc::clone(&shard_stats);
            let handle = std::thread::Builder::new()
                .name(format!("noble-serve-{key}"))
                .spawn(move || shard_worker(localizer, key, rx, cfg, &worker_stats))
                .expect("spawn shard worker");
            senders.insert(key, tx);
            stats.insert(key, shard_stats);
            workers.push((key, handle));
        }
        Ok(BatchServer {
            senders,
            stats,
            workers,
        })
    }

    /// Warm restart: hydrates every snapshot in `store` back into a
    /// servable model ([`noble::hydrate`] — bit-identical to the model
    /// that was saved) and starts serving. A restarted process skips
    /// retraining entirely; combined with
    /// [`crate::ShardedRegistry::save_to`] /
    /// [`crate::ModelCatalog::export_to`] this closes the
    /// train → save → restart → serve loop.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] for an empty store,
    /// [`ServeError::BadSnapshot`] for a corrupt stored model, plus
    /// whatever [`BatchServer::start`] rejects.
    pub fn start_from_store(store: &dyn ModelStore, cfg: BatchConfig) -> Result<Self, ServeError> {
        let keys = store.list()?;
        if keys.is_empty() {
            return Err(ServeError::NoShards);
        }
        let mut registry = ShardedRegistry::new();
        for key in keys {
            let snapshot = store.get(key)?.ok_or(ServeError::UnknownShard(key))?;
            let model = noble::hydrate(&snapshot)?;
            registry.insert(key, model);
        }
        BatchServer::start(registry, cfg)
    }

    /// A new submission handle (cheap to clone per client thread).
    pub fn client(&self) -> ServeClient {
        ServeClient {
            senders: self.senders.clone(),
        }
    }

    /// Shard keys being served.
    pub fn keys(&self) -> Vec<ShardKey> {
        self.senders.keys().copied().collect()
    }

    /// Live per-shard statistics snapshot, in key order.
    pub fn stats(&self) -> Vec<(ShardKey, ShardStats)> {
        self.stats
            .iter()
            .map(|(k, s)| (*k, s.lock().expect("stats lock").clone()))
            .collect()
    }

    /// Graceful shutdown: each worker finishes every request already
    /// queued ahead of the shutdown marker, then exits. Returns the final
    /// per-shard statistics.
    ///
    /// Clients still holding a [`ServeClient`] get
    /// [`ServeError::ShuttingDown`] on later submits.
    pub fn shutdown(mut self) -> Vec<(ShardKey, ShardStats)> {
        self.stop();
        self.final_stats()
    }

    /// Like [`BatchServer::shutdown`], but also hands the shard models
    /// back as a registry so a caller can restart serving under different
    /// batching knobs without retraining (the benchmark sweep's pattern).
    pub fn shutdown_with_registry(mut self) -> (Vec<(ShardKey, ShardStats)>, ShardedRegistry) {
        let shards = self.stop();
        let stats = self.final_stats();
        (stats, ShardedRegistry::restore(shards))
    }

    /// Sends the shutdown marker to every shard and joins the workers,
    /// collecting their localizers.
    fn stop(&mut self) -> Vec<(ShardKey, Box<dyn Localizer>)> {
        for sender in self.senders.values() {
            // A worker that already exited has dropped its receiver; that
            // is fine — there is nothing left to drain.
            let _ = sender.send(Job::Shutdown);
        }
        self.workers
            .drain(..)
            .filter_map(|(key, handle)| match handle.join() {
                Ok(localizer) => Some((key, localizer)),
                Err(panic) => {
                    // A panicked worker's model is gone; surface the cause
                    // instead of silently dropping the shard (requests to
                    // it will report UnknownShard after a restart).
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    eprintln!("noble-serve: shard {key} worker panicked: {msg}");
                    None
                }
            })
            .collect()
    }

    fn final_stats(&self) -> Vec<(ShardKey, ShardStats)> {
        self.stats
            .iter()
            .map(|(k, s)| (*k, s.lock().expect("stats lock").clone()))
            .collect()
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        for sender in self.senders.values() {
            let _ = sender.send(Job::Shutdown);
        }
        for (_, handle) in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One shard's serve loop: block for the first request, hold the batch
/// open under the latency budget, run one stacked inference, reply.
fn shard_worker(
    mut localizer: Box<dyn Localizer>,
    key: ShardKey,
    rx: Receiver<Job>,
    cfg: BatchConfig,
    stats: &Mutex<ShardStats>,
) -> Box<dyn Localizer> {
    let feature_dim = localizer.info().feature_dim;
    loop {
        let first = match rx.recv() {
            Ok(Job::Fix {
                fingerprint,
                enqueued,
                reply,
            }) => (fingerprint, enqueued, reply),
            Ok(Job::Shutdown) | Err(_) => return localizer,
        };
        let mut batch = vec![first];
        let mut saw_shutdown = false;
        if cfg.max_batch > 1 {
            let deadline = Instant::now() + cfg.latency_budget;
            while batch.len() < cfg.max_batch {
                let now = Instant::now();
                let wait = deadline.saturating_duration_since(now);
                // recv_timeout(ZERO) still drains already-queued jobs, so
                // a zero budget coalesces exactly the backlog.
                match rx.recv_timeout(wait) {
                    Ok(Job::Fix {
                        fingerprint,
                        enqueued,
                        reply,
                    }) => batch.push((fingerprint, enqueued, reply)),
                    Ok(Job::Shutdown) => {
                        saw_shutdown = true;
                        break;
                    }
                    // Queue empty and the budget is spent (a zero `wait`
                    // still drains queued jobs, so past the deadline the
                    // loop keeps absorbing backlog without waiting until
                    // the queue runs dry or the batch fills).
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        saw_shutdown = true;
                        break;
                    }
                }
            }
        }
        serve_batch(localizer.as_mut(), key, feature_dim, batch, stats);
        if saw_shutdown {
            return localizer;
        }
    }
}

type QueuedFix = (Vec<f64>, Instant, Sender<Result<Point, ServeError>>);

/// Runs one coalesced batch through the shard's model and replies to every
/// rider. Width-mismatched fingerprints are rejected individually; the
/// rest still ride the stacked call (row independence makes the mixture
/// safe).
fn serve_batch(
    localizer: &mut dyn Localizer,
    key: ShardKey,
    feature_dim: usize,
    batch: Vec<QueuedFix>,
    stats: &Mutex<ShardStats>,
) {
    let mut valid: Vec<usize> = Vec::with_capacity(batch.len());
    let mut replies: Vec<Option<Result<Point, ServeError>>> = Vec::with_capacity(batch.len());
    for (i, (fingerprint, _, _)) in batch.iter().enumerate() {
        if fingerprint.len() == feature_dim {
            valid.push(i);
            replies.push(None);
        } else {
            replies.push(Some(Err(ServeError::FeatureDim {
                key,
                expected: feature_dim,
                found: fingerprint.len(),
            })));
        }
    }

    let mut busy = Duration::ZERO;
    if !valid.is_empty() {
        let mut data = Vec::with_capacity(valid.len() * feature_dim);
        for &i in &valid {
            data.extend_from_slice(&batch[i].0);
        }
        let features = Matrix::from_vec(valid.len(), feature_dim, data).expect("widths checked");
        let started = Instant::now();
        let result = localizer.localize_batch(&features);
        busy = started.elapsed();
        match result {
            Ok(points) => {
                for (&i, point) in valid.iter().zip(points) {
                    replies[i] = Some(Ok(point));
                }
            }
            Err(e) => {
                let shared = ServeError::from(e);
                for &i in &valid {
                    replies[i] = Some(Err(shared.clone()));
                }
            }
        }
    }

    let mut tally = stats.lock().expect("stats lock");
    tally.batches += 1;
    tally.max_batch = tally.max_batch.max(batch.len());
    tally.busy_us += busy.as_micros();
    for ((_, enqueued, reply), outcome) in batch.into_iter().zip(replies) {
        let outcome = outcome.expect("every rider answered");
        tally.requests += 1;
        if outcome.is_err() {
            tally.errors += 1;
        }
        // A dropped PendingFix just means nobody is waiting; not an error.
        let _ = reply.send(outcome);
        let waited = enqueued.elapsed().as_micros();
        tally.total_latency_us += waited;
        tally.max_latency_us = tally.max_latency_us.max(waited);
    }
}
