//! Poisoning-tolerant lock helpers.
//!
//! `std`'s `Mutex` poisons when a holder panics, and every subsequent
//! `.lock().unwrap()` then panics too — one worker panic cascades
//! through every thread that touches the same lock. The serving stack's
//! robustness contract is the opposite: a panic must stay contained and
//! the process must keep serving. These helpers adopt parking_lot-style
//! semantics: poisoning is ignored and the guard is recovered with
//! [`std::sync::PoisonError::into_inner`].
//!
//! That is sound here because every critical section in this crate
//! leaves its protected state consistent at every await/panic point:
//! state transitions are single assignments or collection ops, never
//! multi-step invariants that a mid-section unwind could tear. (The
//! `noble-lint` `panic-path` lint keeps it that way — a new `.unwrap()`
//! inside a critical section fails `--check`.)

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard from a poisoned lock instead of
/// propagating the panic to this thread.
pub fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`Condvar::wait`] with the same poisoning recovery as [`relock`].
pub fn rewait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`Condvar::wait_timeout`] with the same poisoning recovery as
/// [`relock`].
pub fn rewait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn relock_recovers_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*relock(&mutex), 7);
    }
}
