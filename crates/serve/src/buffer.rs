//! Bounded per-shard observation buffers: the ingest side of online
//! refresh.
//!
//! Production fingerprint maps drift — APs move, furniture changes — so
//! a serving shard accumulates evidence between model generations: the
//! fixes it served (position answers whose ground truth is unknown) and
//! *corrections* (fingerprints paired with surveyed ground-truth
//! positions, the signal a refresh retrains on). An
//! [`ObservationBuffer`] holds that evidence with strict bounds:
//!
//! - **logical-time stamped** — every push gets the next tick of the
//!   buffer's own counter; no wall clock ever reaches refresh inputs, so
//!   a refresh over the same observations is replayable bit-for-bit;
//! - **FIFO-bounded by count and bytes** — a push past either bound
//!   evicts strictly oldest-first until the newcomer fits. No kind is
//!   privileged: a correction is only ever lost to make room when
//!   capacity is genuinely exhausted (the property suite in
//!   `refresh_determinism` pins all three invariants).
//!
//! The buffer itself is single-threaded state; [`crate::Refresher`]
//! wraps one per shard behind its own lock.

use noble_geo::Point;
use std::collections::VecDeque;

/// What kind of evidence an [`Observation`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationKind {
    /// A fix the server answered; its true position is unknown. Kept for
    /// drift diagnostics, optionally fed to refresh as soft evidence.
    ServedFix,
    /// A fingerprint with surveyed ground truth — the retraining signal.
    Correction,
}

/// One buffered piece of refresh evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Evidence kind.
    pub kind: ObservationKind,
    /// Logical admission time: the buffer's tick counter at push. Strictly
    /// increasing within one buffer; eviction retires the smallest first.
    pub at: u64,
    /// Raw RSSI per WAP in dBm (same convention as
    /// [`noble_datasets::WifiSample::rssi`]).
    pub rssi: Vec<f64>,
    /// The served answer ([`ObservationKind::ServedFix`]) or the surveyed
    /// ground truth ([`ObservationKind::Correction`]).
    pub position: Point,
}

/// Fixed per-observation overhead charged against
/// [`BufferLimits::max_bytes`] on top of the RSSI payload (struct,
/// stamps, deque slot).
const OBSERVATION_OVERHEAD: usize = 64;

impl Observation {
    /// Bytes this observation charges against the buffer's byte bound.
    pub fn cost(&self) -> usize {
        OBSERVATION_OVERHEAD + self.rssi.len() * std::mem::size_of::<f64>()
    }
}

/// Capacity bounds of an [`ObservationBuffer`]. Both apply at once; the
/// tighter one wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferLimits {
    /// Maximum buffered observations.
    pub max_observations: usize,
    /// Maximum summed [`Observation::cost`] bytes.
    pub max_bytes: usize,
}

impl Default for BufferLimits {
    /// 4096 observations / 4 MiB — a few hours of correction traffic for
    /// a busy shard, bounded well below one resident model.
    fn default() -> Self {
        BufferLimits {
            max_observations: 4096,
            max_bytes: 4 << 20,
        }
    }
}

/// The outcome of an [`ObservationBuffer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Stored without evicting.
    Stored,
    /// Stored after evicting this many oldest observations.
    StoredEvicting(usize),
    /// Rejected: the observation alone exceeds the byte bound. Nothing
    /// was evicted — dropping the whole buffer for an unstorable
    /// newcomer would lose corrections for nothing.
    Rejected,
}

/// A bounded FIFO of refresh evidence for one shard (see the module
/// docs for the eviction contract).
#[derive(Debug, Clone)]
pub struct ObservationBuffer {
    limits: BufferLimits,
    items: VecDeque<Observation>,
    bytes: usize,
    /// Logical clock; the next push is stamped `clock + 1`.
    clock: u64,
    evicted_fixes: u64,
    evicted_corrections: u64,
}

impl ObservationBuffer {
    /// An empty buffer under `limits`.
    pub fn new(limits: BufferLimits) -> Self {
        ObservationBuffer {
            limits,
            items: VecDeque::new(),
            bytes: 0,
            clock: 0,
            evicted_fixes: 0,
            evicted_corrections: 0,
        }
    }

    /// The configured bounds.
    pub fn limits(&self) -> BufferLimits {
        self.limits
    }

    /// Buffered observation count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Summed [`Observation::cost`] of the buffered observations.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Buffered corrections (the retraining signal size).
    pub fn corrections(&self) -> usize {
        self.items
            .iter()
            .filter(|o| o.kind == ObservationKind::Correction)
            .count()
    }

    /// Observations evicted so far as `(served_fixes, corrections)` —
    /// a nonzero corrections count is the observable warning that
    /// refresh evidence is arriving faster than it is consumed.
    pub fn evicted(&self) -> (u64, u64) {
        (self.evicted_fixes, self.evicted_corrections)
    }

    /// The logical time of the most recent push (`0` before the first).
    pub fn logical_time(&self) -> u64 {
        self.clock
    }

    /// Oldest-first view of the buffered observations.
    pub fn iter(&self) -> impl Iterator<Item = &Observation> {
        self.items.iter()
    }

    /// Admits one observation, evicting strictly oldest-first until both
    /// bounds hold. See [`PushOutcome`].
    pub fn push(&mut self, kind: ObservationKind, rssi: Vec<f64>, position: Point) -> PushOutcome {
        self.clock += 1;
        let obs = Observation {
            kind,
            at: self.clock,
            rssi,
            position,
        };
        let cost = obs.cost();
        if cost > self.limits.max_bytes || self.limits.max_observations == 0 {
            return PushOutcome::Rejected;
        }
        let mut evicted = 0usize;
        while self.items.len() + 1 > self.limits.max_observations
            || self.bytes + cost > self.limits.max_bytes
        {
            let Some(old) = self.items.pop_front() else {
                break;
            };
            self.bytes -= old.cost();
            match old.kind {
                ObservationKind::ServedFix => self.evicted_fixes += 1,
                ObservationKind::Correction => self.evicted_corrections += 1,
            }
            evicted += 1;
        }
        self.bytes += cost;
        self.items.push_back(obs);
        if evicted == 0 {
            PushOutcome::Stored
        } else {
            PushOutcome::StoredEvicting(evicted)
        }
    }

    /// Removes every observation stamped `at <= upto` (what a completed
    /// refresh consumed); newer arrivals stay for the next cycle.
    pub fn discard_up_to(&mut self, upto: u64) {
        while self.items.front().is_some_and(|front| front.at <= upto) {
            if let Some(old) = self.items.pop_front() {
                self.bytes -= old.cost();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(max_observations: usize, max_bytes: usize) -> ObservationBuffer {
        ObservationBuffer::new(BufferLimits {
            max_observations,
            max_bytes,
        })
    }

    fn fp(v: f64) -> Vec<f64> {
        vec![v; 4]
    }

    #[test]
    fn push_stamps_strictly_increasing_logical_time() {
        let mut b = buf(8, 1 << 20);
        for i in 0..5 {
            b.push(
                ObservationKind::Correction,
                fp(i as f64),
                Point::new(0.0, 0.0),
            );
        }
        let stamps: Vec<u64> = b.iter().map(|o| o.at).collect();
        assert_eq!(stamps, vec![1, 2, 3, 4, 5]);
        assert_eq!(b.logical_time(), 5);
    }

    #[test]
    fn count_bound_evicts_oldest_first() {
        let mut b = buf(3, 1 << 20);
        for i in 0..3 {
            assert_eq!(
                b.push(
                    ObservationKind::ServedFix,
                    fp(i as f64),
                    Point::new(0.0, 0.0)
                ),
                PushOutcome::Stored
            );
        }
        assert_eq!(
            b.push(ObservationKind::Correction, fp(9.0), Point::new(1.0, 1.0)),
            PushOutcome::StoredEvicting(1)
        );
        assert_eq!(b.len(), 3);
        let stamps: Vec<u64> = b.iter().map(|o| o.at).collect();
        assert_eq!(stamps, vec![2, 3, 4], "oldest (t=1) evicted first");
        assert_eq!(b.evicted(), (1, 0));
    }

    #[test]
    fn byte_bound_holds_and_oversized_push_is_rejected() {
        let one = Observation {
            kind: ObservationKind::Correction,
            at: 0,
            rssi: fp(0.0),
            position: Point::new(0.0, 0.0),
        }
        .cost();
        let mut b = buf(100, 2 * one);
        b.push(ObservationKind::Correction, fp(1.0), Point::new(0.0, 0.0));
        b.push(ObservationKind::Correction, fp(2.0), Point::new(0.0, 0.0));
        assert_eq!(b.bytes(), 2 * one);
        assert_eq!(
            b.push(ObservationKind::Correction, fp(3.0), Point::new(0.0, 0.0)),
            PushOutcome::StoredEvicting(1)
        );
        assert!(b.bytes() <= 2 * one);
        // An observation that cannot fit even in an empty buffer.
        assert_eq!(
            b.push(
                ObservationKind::Correction,
                vec![0.0; 1 << 20],
                Point::new(0.0, 0.0)
            ),
            PushOutcome::Rejected
        );
        assert_eq!(b.len(), 2, "rejection evicts nothing");
    }

    #[test]
    fn discard_up_to_consumes_a_prefix() {
        let mut b = buf(10, 1 << 20);
        for i in 0..6 {
            b.push(
                ObservationKind::Correction,
                fp(i as f64),
                Point::new(0.0, 0.0),
            );
        }
        b.discard_up_to(4);
        let stamps: Vec<u64> = b.iter().map(|o| o.at).collect();
        assert_eq!(stamps, vec![5, 6]);
        b.discard_up_to(100);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }
}
