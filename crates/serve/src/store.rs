//! Pluggable persistence for serialized shard models.
//!
//! A [`ModelStore`] keeps [`ModelSnapshot`]s keyed by [`ShardKey`] — the
//! durable tier below the resident [`crate::ModelCatalog`]. Two backends
//! ship:
//!
//! - [`MemStore`] — an in-process map; the default catalog backing and
//!   the test double.
//! - [`FsStore`] — one checksummed file per shard under a site
//!   directory, written atomically (temp file + rename) so a crashed
//!   writer can never leave a half-written snapshot where a reader finds
//!   it. Corrupt, truncated or tampered files read back as the typed
//!   [`ServeError::BadSnapshot`], never a panic.
//!
//! Stores take `&self` (interior mutability) and are `Send + Sync`, so a
//! single store can back a catalog while shard workers fault models in
//! and out concurrently ([`crate::BatchServer::start_paged`]) and an
//! operator thread lists or evicts at the same time.
//!
//! # Examples
//!
//! Both backends speak the same four-verb protocol; [`MemStore`] is the
//! in-process reference implementation:
//!
//! ```
//! use noble::ModelSnapshot;
//! use noble_serve::{MemStore, ModelStore, ShardKey};
//!
//! let store = MemStore::new();
//! let key = ShardKey::building_floor(2, 1);
//! let snapshot = ModelSnapshot::new("example-kind", 8, 3, vec![1, 2, 3]);
//!
//! assert!(store.get(key)?.is_none());
//! store.put(key, &snapshot)?;
//! assert_eq!(store.get(key)?.as_ref(), Some(&snapshot));
//! assert_eq!(store.list()?, vec![key]);
//! assert!(store.evict(key)?);
//! # Ok::<(), noble_serve::ServeError>(())
//! ```
//!
//! [`FsStore`] persists the same protocol as one checksummed file per
//! shard, surviving process restarts:
//!
//! ```
//! use noble::ModelSnapshot;
//! use noble_serve::{FsStore, ModelStore, ShardKey};
//!
//! let dir = std::env::temp_dir().join(format!("noble-fs-doc-{}", std::process::id()));
//! let key = ShardKey::building(4);
//! let snapshot = ModelSnapshot::new("example-kind", 16, 5, vec![9, 9]);
//! {
//!     let store = FsStore::open(&dir)?;
//!     store.put(key, &snapshot)?;
//! } // handle dropped — a "process restart"
//! let reopened = FsStore::open(&dir)?;
//! assert_eq!(reopened.get(key)?.as_ref(), Some(&snapshot));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), noble_serve::ServeError>(())
//! ```

use crate::sync::relock;
use crate::{ServeError, ShardKey};
use noble::ModelSnapshot;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Keyed durable storage of model snapshots.
///
/// `Send + Sync` because one store is shared by every shard worker of a
/// demand-paged [`crate::BatchServer`]: spin-downs write through and
/// faults read back concurrently, without a catalog-wide lock.
pub trait ModelStore: Send + Sync {
    /// Inserts or replaces the snapshot stored for `key`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on backend I/O failure.
    fn put(&self, key: ShardKey, snapshot: &ModelSnapshot) -> Result<(), ServeError>;

    /// Fetches the snapshot stored for `key`, `None` when absent.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSnapshot`] when the stored bytes fail validation,
    /// [`ServeError::Store`] on backend I/O failure.
    fn get(&self, key: ShardKey) -> Result<Option<ModelSnapshot>, ServeError>;

    /// Keys with a stored snapshot, in sorted order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on backend I/O failure.
    fn list(&self) -> Result<Vec<ShardKey>, ServeError>;

    /// Removes the snapshot stored for `key`; returns whether one
    /// existed. Archived versions ([`ModelStore::put_version`]) are not
    /// touched — only the active slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on backend I/O failure.
    fn evict(&self, key: ShardKey) -> Result<bool, ServeError>;

    /// Archives `snapshot` as the immutable bytes of `(key, version)`,
    /// separate from the active slot that [`ModelStore::put`] writes.
    /// The online-refresh contract archives every version *before*
    /// activating it, so `rollback` can always restore prior bytes
    /// bit-identically. Re-archiving an existing `(key, version)`
    /// replaces it (the refresher never does; versions are immutable
    /// once activated).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on backend I/O failure.
    fn put_version(
        &self,
        key: ShardKey,
        version: u64,
        snapshot: &ModelSnapshot,
    ) -> Result<(), ServeError>;

    /// Fetches the archived snapshot of `(key, version)`, `None` when
    /// that version was never archived.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSnapshot`] when the stored bytes fail validation,
    /// [`ServeError::Store`] on backend I/O failure.
    fn get_version(&self, key: ShardKey, version: u64)
        -> Result<Option<ModelSnapshot>, ServeError>;

    /// Archived version numbers for `key`, ascending.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] on backend I/O failure.
    fn versions(&self, key: ShardKey) -> Result<Vec<u64>, ServeError>;
}

/// In-memory snapshot store.
#[derive(Debug, Default)]
pub struct MemStore {
    snapshots: Mutex<BTreeMap<ShardKey, ModelSnapshot>>,
    archives: Mutex<BTreeMap<(ShardKey, u64), ModelSnapshot>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl ModelStore for MemStore {
    fn put(&self, key: ShardKey, snapshot: &ModelSnapshot) -> Result<(), ServeError> {
        relock(&self.snapshots).insert(key, snapshot.clone());
        Ok(())
    }

    fn get(&self, key: ShardKey) -> Result<Option<ModelSnapshot>, ServeError> {
        Ok(relock(&self.snapshots).get(&key).cloned())
    }

    fn list(&self) -> Result<Vec<ShardKey>, ServeError> {
        Ok(relock(&self.snapshots).keys().copied().collect())
    }

    fn evict(&self, key: ShardKey) -> Result<bool, ServeError> {
        Ok(relock(&self.snapshots).remove(&key).is_some())
    }

    fn put_version(
        &self,
        key: ShardKey,
        version: u64,
        snapshot: &ModelSnapshot,
    ) -> Result<(), ServeError> {
        relock(&self.archives).insert((key, version), snapshot.clone());
        Ok(())
    }

    fn get_version(
        &self,
        key: ShardKey,
        version: u64,
    ) -> Result<Option<ModelSnapshot>, ServeError> {
        Ok(relock(&self.archives).get(&(key, version)).cloned())
    }

    fn versions(&self, key: ShardKey) -> Result<Vec<u64>, ServeError> {
        Ok(relock(&self.archives)
            .range((key, 0)..=(key, u64::MAX))
            .map(|((_, v), _)| *v)
            .collect())
    }
}

/// Per-file header of [`FsStore`] blobs: magic, format version, payload
/// length, FNV-1a checksum, then the [`ModelSnapshot::to_bytes`] payload.
const FS_MAGIC: &[u8; 4] = b"NOBF";
const FS_VERSION: u32 = 1;
const FS_HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Filesystem snapshot store: one `<key>.snap` file per shard under a
/// site directory (see the module docs for the durability contract).
#[derive(Debug)]
pub struct FsStore {
    root: PathBuf,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| ServeError::Store(format!("create {}: {e}", root.display())))?;
        Ok(FsStore { root })
    }

    /// The site directory this store reads and writes.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `b<building>.snap` or `b<building>-f<floor>.snap` — the active
    /// slot for a shard.
    fn file_name(key: ShardKey) -> String {
        match key.floor {
            Some(floor) => format!("b{}-f{floor}.snap", key.building),
            None => format!("b{}.snap", key.building),
        }
    }

    /// `b<building>[-f<floor>].v<version>.snap` — the immutable archive
    /// of one model version. The embedded `.v<N>.` makes the stem
    /// unparseable to [`FsStore::key_of`], so archives never show up in
    /// [`ModelStore::list`].
    fn archive_name(key: ShardKey, version: u64) -> String {
        match key.floor {
            Some(floor) => format!("b{}-f{floor}.v{version}.snap", key.building),
            None => format!("b{}.v{version}.snap", key.building),
        }
    }

    fn path_of(&self, key: ShardKey) -> PathBuf {
        self.root.join(Self::file_name(key))
    }

    /// Inverse of [`FsStore::file_name`]; `None` for foreign files
    /// (including version archives and in-flight temp files).
    fn key_of(name: &str) -> Option<ShardKey> {
        let stem = name.strip_suffix(".snap")?.strip_prefix('b')?;
        match stem.split_once("-f") {
            Some((b, f)) => Some(ShardKey::building_floor(b.parse().ok()?, f.parse().ok()?)),
            None => Some(ShardKey::building(stem.parse().ok()?)),
        }
    }

    /// The version number of an archive file of `key`, `None` for every
    /// other file (other shards' archives, active slots, foreign files).
    fn version_of(name: &str, key: ShardKey) -> Option<u64> {
        let stem = Self::file_name(key);
        let stem = stem.strip_suffix(".snap").unwrap_or(&stem);
        name.strip_suffix(".snap")?
            .strip_prefix(stem)?
            .strip_prefix(".v")?
            .parse()
            .ok()
    }

    /// Writes `snapshot` to `root/<name>` atomically: complete bytes go
    /// to a per-writer temp file, synced, then a rename publishes the
    /// final name — a reader can never observe partial bytes.
    fn write_atomic(&self, name: &str, snapshot: &ModelSnapshot) -> Result<(), ServeError> {
        // The temp name is unique per writer and per call, so two
        // concurrent puts of the same key never interleave writes into
        // one file — each publishes its own complete bytes and the last
        // rename wins atomically.
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = self.root.join(name);
        let tmp = self
            .root
            .join(format!(".{name}.{}-{seq}.tmp", std::process::id()));
        let io = |stage: &str, e: std::io::Error| {
            ServeError::Store(format!("{stage} {}: {e}", path.display()))
        };
        let bytes = Self::encode(snapshot);
        let mut file = fs::File::create(&tmp).map_err(|e| io("create temp for", e))?;
        file.write_all(&bytes).map_err(|e| io("write", e))?;
        // Flush file contents before the rename publishes the path, so a
        // reader can never observe the final name with partial bytes.
        file.sync_all().map_err(|e| io("sync", e))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| io("publish", e))
    }

    fn read_name(&self, name: &str) -> Result<Option<ModelSnapshot>, ServeError> {
        let path = self.root.join(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServeError::Store(format!("read {}: {e}", path.display()))),
        };
        Self::decode(&bytes, &path).map(Some)
    }

    fn encode(snapshot: &ModelSnapshot) -> Vec<u8> {
        let payload = snapshot.to_bytes();
        let mut out = Vec::with_capacity(FS_HEADER_LEN + payload.len());
        out.extend_from_slice(FS_MAGIC);
        out.extend_from_slice(&FS_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(bytes: &[u8], origin: &Path) -> Result<ModelSnapshot, ServeError> {
        let corrupt = |why: &str| ServeError::BadSnapshot(format!("{}: {why}", origin.display()));
        if bytes.len() < FS_HEADER_LEN {
            return Err(corrupt("file shorter than the snapshot header"));
        }
        if &bytes[..4] != FS_MAGIC {
            return Err(corrupt("bad magic: not a NObLe snapshot file"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != FS_VERSION {
            return Err(corrupt(&format!(
                "unsupported snapshot file version {version}"
            )));
        }
        let len = read_u64_le(bytes, 8) as usize;
        let checksum = read_u64_le(bytes, 16);
        let payload = &bytes[FS_HEADER_LEN..];
        if payload.len() != len {
            return Err(corrupt(&format!(
                "payload is {} bytes, header promises {len}",
                payload.len()
            )));
        }
        if fnv1a64(payload) != checksum {
            return Err(corrupt("checksum mismatch: snapshot bytes are corrupt"));
        }
        ModelSnapshot::from_bytes(payload).map_err(ServeError::from)
    }
}

impl ModelStore for FsStore {
    fn put(&self, key: ShardKey, snapshot: &ModelSnapshot) -> Result<(), ServeError> {
        self.write_atomic(&Self::file_name(key), snapshot)
    }

    fn get(&self, key: ShardKey) -> Result<Option<ModelSnapshot>, ServeError> {
        self.read_name(&Self::file_name(key))
    }

    fn list(&self) -> Result<Vec<ShardKey>, ServeError> {
        let entries = fs::read_dir(&self.root)
            .map_err(|e| ServeError::Store(format!("list {}: {e}", self.root.display())))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| ServeError::Store(format!("list {}: {e}", self.root.display())))?;
            if let Some(key) = entry.file_name().to_str().and_then(Self::key_of) {
                keys.push(key);
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn evict(&self, key: ShardKey) -> Result<bool, ServeError> {
        let path = self.path_of(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(ServeError::Store(format!("evict {}: {e}", path.display()))),
        }
    }

    fn put_version(
        &self,
        key: ShardKey,
        version: u64,
        snapshot: &ModelSnapshot,
    ) -> Result<(), ServeError> {
        self.write_atomic(&Self::archive_name(key, version), snapshot)
    }

    fn get_version(
        &self,
        key: ShardKey,
        version: u64,
    ) -> Result<Option<ModelSnapshot>, ServeError> {
        self.read_name(&Self::archive_name(key, version))
    }

    fn versions(&self, key: ShardKey) -> Result<Vec<u64>, ServeError> {
        let entries = fs::read_dir(&self.root)
            .map_err(|e| ServeError::Store(format!("versions {}: {e}", self.root.display())))?;
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| ServeError::Store(format!("versions {}: {e}", self.root.display())))?;
            if let Some(v) = entry
                .file_name()
                .to_str()
                .and_then(|name| Self::version_of(name, key))
            {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }
}

/// Little-endian `u64` at `bytes[at..at + 8]`; callers bounds-check the
/// slice length up front (decode validates `FS_HEADER_LEN` first).
fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
        bytes[at + 4],
        bytes[at + 5],
        bytes[at + 6],
        bytes[at + 7],
    ])
}

/// FNV-1a 64-bit — tiny, dependency-free corruption detector for
/// snapshot files (not a cryptographic integrity guarantee).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_round_trips_keys() {
        for key in [
            ShardKey::building(0),
            ShardKey::building(17),
            ShardKey::building_floor(3, 0),
            ShardKey::building_floor(12, 9),
        ] {
            assert_eq!(FsStore::key_of(&FsStore::file_name(key)), Some(key));
        }
        assert_eq!(FsStore::key_of("junk.txt"), None);
        assert_eq!(FsStore::key_of("bX.snap"), None);
        assert_eq!(FsStore::key_of(".b1.snap.tmp"), None);
        // Version archives must stay invisible to the active-slot verbs.
        assert_eq!(FsStore::key_of("b1.v3.snap"), None);
        assert_eq!(FsStore::key_of("b1-f2.v3.snap"), None);
    }

    #[test]
    fn archive_name_round_trips_versions() {
        for key in [ShardKey::building(7), ShardKey::building_floor(3, 2)] {
            for version in [0u64, 1, 42] {
                let name = FsStore::archive_name(key, version);
                assert_eq!(FsStore::version_of(&name, key), Some(version));
                assert_eq!(FsStore::key_of(&name), None);
            }
        }
        // Other shards' archives and active slots never match.
        let key = ShardKey::building(7);
        assert_eq!(FsStore::version_of("b8.v1.snap", key), None);
        assert_eq!(FsStore::version_of("b7-f1.v1.snap", key), None);
        assert_eq!(FsStore::version_of("b7.snap", key), None);
        assert_eq!(FsStore::version_of("b7.vX.snap", key), None);
    }

    #[test]
    fn mem_store_round_trip_and_evict() {
        let store = MemStore::new();
        let key = ShardKey::building(4);
        let snap = ModelSnapshot::new("wifi-noble", 8, 3, vec![1, 2, 3]);
        assert!(store.get(key).unwrap().is_none());
        store.put(key, &snap).unwrap();
        assert_eq!(store.get(key).unwrap().unwrap(), snap);
        assert_eq!(store.list().unwrap(), vec![key]);
        assert!(store.evict(key).unwrap());
        assert!(!store.evict(key).unwrap());
        assert!(store.list().unwrap().is_empty());
    }

    #[test]
    fn mem_store_versions_are_separate_from_active_slot() {
        let store = MemStore::new();
        let key = ShardKey::building_floor(1, 2);
        let v1 = ModelSnapshot::new("wifi-noble", 8, 3, vec![1]).with_version(1);
        let v2 = ModelSnapshot::new("wifi-noble", 8, 3, vec![2]).with_version(2);
        assert!(store.versions(key).unwrap().is_empty());
        store.put_version(key, 1, &v1).unwrap();
        store.put_version(key, 2, &v2).unwrap();
        store.put(key, &v2).unwrap();
        assert_eq!(store.versions(key).unwrap(), vec![1, 2]);
        assert_eq!(store.get_version(key, 1).unwrap().unwrap(), v1);
        assert_eq!(store.get_version(key, 3).unwrap(), None);
        // Other keys see nothing; evicting the active slot keeps archives.
        assert!(store.versions(ShardKey::building(1)).unwrap().is_empty());
        assert!(store.evict(key).unwrap());
        assert_eq!(store.versions(key).unwrap(), vec![1, 2]);
        assert_eq!(store.get_version(key, 2).unwrap().unwrap(), v2);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a64(b"snapshot");
        assert_eq!(a, fnv1a64(b"snapshot"));
        assert_ne!(a, fnv1a64(b"snapshos"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
    }
}
