//! The capacity-bounded model catalog: the resident tier of the serving
//! model lifecycle.
//!
//! A [`ModelCatalog`] answers every shard's requests while keeping only a
//! budgeted subset of models in memory:
//!
//! - **resident tier** — live [`Localizer`]s, LRU-tracked, bounded by a
//!   [`CatalogBudget`] (model count or estimated snapshot bytes);
//! - **store tier** — a pluggable [`ModelStore`] of serialized
//!   [`ModelSnapshot`]s; cold shards hydrate from here
//!   ([`noble::hydrate`], bit-identical to the original model);
//! - **spec tier** — registered [`TrainSpec`]s; shards with neither a
//!   resident model nor a stored snapshot retrain on demand with the
//!   same order-free derived seed the eager registry path uses, so a
//!   lazy retrain reproduces the eager model exactly.
//!
//! Eviction is write-through: a victim that is not yet in the store is
//!   snapshotted into it before its memory is released, so no answer is
//! ever lost — a later request hydrates the identical model back.
//! Models that cannot snapshot (the research baselines) and have no
//! spec are never evicted; they pin their budget share, and every time
//! eviction has to walk past one the [`CatalogStats::pinned`] counter
//! ticks so an un-honorable budget is observable.
//!
//! For serving, [`ModelCatalog::into_shared`] converts the catalog into
//! a [`SharedCatalog`]: the thread-shared face that demand-paged shard
//! workers lease models out of and release them back into
//! ([`crate::BatchServer::start_paged`]). Faulting — store reads,
//! hydration, retraining — runs *outside* the shared state lock, so
//! concurrently faulting shards overlap instead of queueing behind one
//! another; only same-shard lease/release pairs are serialized.
//!
//! # Examples
//!
//! A budget of one resident model over three shards: inserts evict
//! least-recently-used victims through the store, and later requests
//! hydrate them back bit-identically.
//!
//! ```
//! use noble::wifi::KnnFingerprint;
//! use noble::Localizer;
//! use noble_datasets::{uji_campaign, UjiConfig};
//! use noble_serve::{CatalogBudget, ModelCatalog, ShardKey};
//!
//! let campaign = uji_campaign(&UjiConfig::small())?;
//! let probe = campaign.features(&campaign.test[..4]);
//!
//! let mut catalog = ModelCatalog::new(CatalogBudget::Count(1))?;
//! let mut expected = Vec::new();
//! for k in 1..=3 {
//!     let mut model: Box<dyn Localizer> = Box::new(KnnFingerprint::fit(&campaign, k)?);
//!     expected.push(model.localize_batch(&probe)?);
//!     catalog.insert(ShardKey::building(k), model)?;
//!     assert!(catalog.resident_len() <= 1, "budget of one enforced");
//! }
//! // All three shards still answer — cold ones fault back in from the
//! // store tier, bit-identical to the original models.
//! for (k, reference) in (1..=3).zip(&expected) {
//!     assert_eq!(&catalog.localize(ShardKey::building(k), &probe)?, reference);
//! }
//! assert!(catalog.stats().evictions >= 2);
//! assert!(catalog.stats().hydrations >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::registry::partition_campaign;
use crate::sync::{relock, rewait};
use crate::{shard_seed, MemStore, ModelStore, RegistryConfig, ServeError, ShardKey};
use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::{hydrate, Localizer, LocalizerInfo, ModelSnapshot, NobleError};
use noble_datasets::{ImuDataset, WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::Matrix;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Memory envelope of the resident tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogBudget {
    /// No bound: every model stays resident (the legacy registry
    /// behavior).
    Unbounded,
    /// At most this many resident models.
    Count(usize),
    /// At most this many estimated bytes of resident models, measured as
    /// each model's encoded-snapshot size (the honest proxy for its
    /// parameter + table memory). A single model larger than the budget
    /// still serves — the bound applies to what *stays* resident around
    /// the active model.
    Bytes(usize),
}

impl CatalogBudget {
    fn validate(self) -> Result<(), ServeError> {
        match self {
            CatalogBudget::Count(0) => Err(ServeError::InvalidConfig(
                "catalog budget of 0 models cannot serve".into(),
            )),
            CatalogBudget::Bytes(0) => Err(ServeError::InvalidConfig(
                "catalog budget of 0 bytes cannot serve".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// Lifecycle counters, readable via [`ModelCatalog::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Requests answered by an already-resident model.
    pub hits: u64,
    /// Requests that found the shard cold.
    pub misses: u64,
    /// Cold misses served by hydrating a stored snapshot.
    pub hydrations: u64,
    /// Cold misses served by retraining from a [`TrainSpec`].
    pub retrains: u64,
    /// Resident models retired to the store tier.
    pub evictions: u64,
    /// Times eviction needed room but had to walk past a model that can
    /// neither snapshot nor retrain. The model stays resident (pinned),
    /// which means the budget could not be fully honored — a nonzero
    /// count is the observable warning that an oversubscribed budget is
    /// being exceeded by unsnapshotable baselines.
    pub pinned: u64,
}

/// A recipe to (re)train one shard's model on demand. The seed is
/// derived from the shard key with [`shard_seed`] exactly as the eager
/// [`crate::ShardedRegistry::train_wifi`] path derives it, so a lazy
/// retrain is bit-identical to the model the eager path would have
/// produced.
pub enum TrainSpec {
    /// Train a [`WifiNoble`] on a (typically pre-partitioned) campaign.
    Wifi {
        /// The shard's training campaign.
        campaign: WifiCampaign,
        /// Model configuration; `cfg.seed` is the *base* seed.
        cfg: WifiNobleConfig,
    },
    /// Train an [`ImuNoble`] tracker on an IMU dataset.
    Imu {
        /// The shard's training dataset.
        dataset: ImuDataset,
        /// Model configuration; `cfg.seed` is the *base* seed.
        cfg: ImuNobleConfig,
    },
}

impl fmt::Debug for TrainSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainSpec::Wifi { campaign, .. } => f
                .debug_struct("TrainSpec::Wifi")
                .field("train_samples", &campaign.train.len())
                .finish_non_exhaustive(),
            TrainSpec::Imu { dataset, .. } => f
                .debug_struct("TrainSpec::Imu")
                .field("train_paths", &dataset.train.len())
                .finish_non_exhaustive(),
        }
    }
}

impl TrainSpec {
    /// Trains the shard model with the derived per-shard seed.
    fn train(&self, key: ShardKey) -> Result<Box<dyn Localizer>, ServeError> {
        match self {
            TrainSpec::Wifi { campaign, cfg } => {
                let mut shard_cfg = cfg.clone();
                shard_cfg.seed = shard_seed(cfg.seed, key);
                Ok(Box::new(WifiNoble::train(campaign, &shard_cfg)?))
            }
            TrainSpec::Imu { dataset, cfg } => {
                let mut shard_cfg = cfg.clone();
                shard_cfg.seed = shard_seed(cfg.seed, key);
                Ok(Box::new(ImuNoble::train(dataset, &shard_cfg)?))
            }
        }
    }
}

/// Relabels a localizer's site metadata with its shard key.
pub(crate) struct Sited<L> {
    pub(crate) site: String,
    pub(crate) inner: L,
}

impl<L: Localizer> Localizer for Sited<L> {
    fn info(&self) -> LocalizerInfo {
        self.inner.info().with_site(self.site.clone())
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        self.inner.localize_batch(features)
    }

    fn try_snapshot(&self) -> Option<ModelSnapshot> {
        self.inner.try_snapshot()
    }
}

/// One resident model plus its LRU bookkeeping.
struct Resident {
    model: Box<dyn Localizer>,
    /// Encoded-snapshot size, the [`CatalogBudget::Bytes`] unit; `0` when
    /// unknown (non-snapshotable models under a count budget).
    cost: usize,
    last_used: u64,
    /// Model version (online-refresh lineage; `0` is the offline-trained
    /// generation). Carried so the shared catalog can tell a stale lease
    /// from the active generation.
    version: u64,
}

/// The capacity-bounded, store-backed shard model catalog (see the
/// module docs for the three tiers).
pub struct ModelCatalog {
    budget: CatalogBudget,
    store: Arc<dyn ModelStore>,
    specs: BTreeMap<ShardKey, Arc<TrainSpec>>,
    resident: BTreeMap<ShardKey, Resident>,
    /// Keys known to have a snapshot in the store tier (primed from
    /// `store.list()` at construction, maintained on every put).
    stored: BTreeSet<ShardKey>,
    clock: u64,
    stats: CatalogStats,
}

impl fmt::Debug for ModelCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelCatalog")
            .field("budget", &self.budget)
            .field("resident", &self.resident_keys())
            .field("stored", &self.stored)
            .field("specs", &self.specs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ModelCatalog {
    /// An empty catalog backed by an in-memory store.
    ///
    /// Note the budget bounds *live models*, not total process memory:
    /// with the default [`MemStore`], every evicted model's snapshot
    /// bytes still live in this process (useful to bound the expensive
    /// part — resident networks with caches — or for tests). To actually
    /// shed memory with the model count, pair a budget with an on-disk
    /// store: [`ModelCatalog::with_store`] + [`crate::FsStore`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero budget.
    pub fn new(budget: CatalogBudget) -> Result<Self, ServeError> {
        Self::with_store(budget, Box::new(MemStore::new()))
    }

    /// An empty catalog over an existing store; snapshots already in the
    /// store immediately serve as cold shards.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero budget; propagates store
    /// listing failures.
    pub fn with_store(
        budget: CatalogBudget,
        store: Box<dyn ModelStore>,
    ) -> Result<Self, ServeError> {
        budget.validate()?;
        let stored: BTreeSet<ShardKey> = store.list()?.into_iter().collect();
        Ok(ModelCatalog {
            budget,
            store: Arc::from(store),
            specs: BTreeMap::new(),
            resident: BTreeMap::new(),
            stored,
            clock: 0,
            stats: CatalogStats::default(),
        })
    }

    /// Adopts every shard of an eagerly trained registry under a budget
    /// (the migration path from the legacy grow-only registry).
    ///
    /// # Errors
    ///
    /// As [`ModelCatalog::with_store`]; propagates write-through
    /// failures while evicting down to the budget.
    pub fn adopt(
        registry: crate::ShardedRegistry,
        budget: CatalogBudget,
        store: Box<dyn ModelStore>,
    ) -> Result<Self, ServeError> {
        let mut catalog = Self::with_store(budget, store)?;
        for (key, model) in registry.into_shards() {
            catalog.insert_sited(key, model)?;
        }
        Ok(catalog)
    }

    /// The configured budget.
    pub fn budget(&self) -> CatalogBudget {
        self.budget
    }

    /// Lifecycle counters so far.
    pub fn stats(&self) -> CatalogStats {
        self.stats
    }

    /// Registers (or replaces) a live model for `key`, relabeling its
    /// site metadata with the shard key.
    ///
    /// # Errors
    ///
    /// Propagates write-through failures when the insert pushes the
    /// resident tier over budget and a victim must be stored first.
    pub fn insert(
        &mut self,
        key: ShardKey,
        localizer: Box<dyn Localizer>,
    ) -> Result<(), ServeError> {
        self.insert_sited(
            key,
            Box::new(Sited {
                site: key.to_string(),
                inner: localizer,
            }),
        )
    }

    /// [`ModelCatalog::insert`] for a model whose site metadata is
    /// already labeled (restores from a stopping `BatchServer`).
    pub(crate) fn insert_sited(
        &mut self,
        key: ShardKey,
        model: Box<dyn Localizer>,
    ) -> Result<(), ServeError> {
        // The byte budget needs each model's cost up front; the snapshot
        // is only built when that budget is active — and since it is in
        // hand, write it through now so a later eviction of this shard
        // never has to serialize the model a second time.
        let cost = match self.budget {
            CatalogBudget::Bytes(_) => match model.try_snapshot() {
                Some(snapshot) => {
                    self.store.put(key, &snapshot)?;
                    self.stored.insert(key);
                    snapshot.encoded_len()
                }
                None => 0,
            },
            _ => 0,
        };
        self.clock += 1;
        self.resident.insert(
            key,
            Resident {
                model,
                cost,
                last_used: self.clock,
                version: 0,
            },
        );
        self.enforce_budget(Some(key))
    }

    /// Registers a training recipe for a cold shard: the first request
    /// for `key` (with no resident model and no stored snapshot) trains
    /// it on demand, snapshots it into the store, and serves.
    pub fn register_spec(&mut self, key: ShardKey, spec: TrainSpec) {
        self.specs.insert(key, Arc::new(spec));
    }

    /// Partitions a WiFi campaign under the registry configuration and
    /// registers one *lazy* [`TrainSpec::Wifi`] per shard — nothing
    /// trains until a shard's first request arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoShards`] when the campaign has no training
    /// samples.
    pub fn register_wifi_campaign(
        &mut self,
        campaign: &WifiCampaign,
        cfg: &WifiNobleConfig,
        reg: &RegistryConfig,
    ) -> Result<Vec<ShardKey>, ServeError> {
        let parts = partition_campaign(
            campaign,
            |s: &WifiSample| reg.policy.key_of(s),
            reg.max_train_samples_per_shard,
        );
        if parts.is_empty() {
            return Err(ServeError::NoShards);
        }
        let mut keys = Vec::with_capacity(parts.len());
        for (key, shard) in parts {
            self.register_spec(
                key,
                TrainSpec::Wifi {
                    campaign: shard,
                    cfg: cfg.clone(),
                },
            );
            keys.push(key);
        }
        Ok(keys)
    }

    /// Registers a lazy IMU tracker shard (the IMU serving path).
    pub fn register_imu_campaign(
        &mut self,
        key: ShardKey,
        dataset: ImuDataset,
        cfg: ImuNobleConfig,
    ) {
        self.register_spec(key, TrainSpec::Imu { dataset, cfg });
    }

    /// Every key the catalog can serve (resident ∪ stored ∪ specs),
    /// sorted.
    pub fn keys(&self) -> Vec<ShardKey> {
        let mut keys: BTreeSet<ShardKey> = self.resident.keys().copied().collect();
        keys.extend(self.stored.iter().copied());
        keys.extend(self.specs.keys().copied());
        keys.into_iter().collect()
    }

    /// Keys currently holding a live model, sorted.
    pub fn resident_keys(&self) -> Vec<ShardKey> {
        self.resident.keys().copied().collect()
    }

    /// Number of live models (what the budget bounds).
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Number of servable shards across all tiers.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether no shard is servable.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty() && self.stored.is_empty() && self.specs.is_empty()
    }

    /// Metadata of every *resident* model, in key order.
    pub fn info(&self) -> Vec<LocalizerInfo> {
        self.resident.values().map(|r| r.model.info()).collect()
    }

    /// Mutable access to `key`'s model, faulting it in from the store or
    /// spec tier if cold (and evicting the least-recently-used resident
    /// models past the budget).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] when no tier knows `key`; propagates
    /// hydration, training and write-through failures.
    pub fn get_mut(&mut self, key: ShardKey) -> Result<&mut (dyn Localizer + '_), ServeError> {
        self.ensure_resident(key)?;
        self.clock += 1;
        let Some(entry) = self.resident.get_mut(&key) else {
            return Err(ServeError::UnknownShard(key));
        };
        entry.last_used = self.clock;
        Ok(entry.model.as_mut())
    }

    /// Routes a feature batch to its shard and localizes it, faulting
    /// the model in if cold.
    ///
    /// # Errors
    ///
    /// As [`ModelCatalog::get_mut`]; propagates model failures.
    pub fn localize(&mut self, key: ShardKey, features: &Matrix) -> Result<Vec<Point>, ServeError> {
        let shard = self.get_mut(key)?;
        shard.localize_batch(features).map_err(ServeError::from)
    }

    /// Snapshots every resident model into `store` (e.g. an
    /// [`crate::FsStore`] for warm restarts). Returns how many snapshots
    /// were written.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotSnapshotable`] when a resident model cannot
    /// serialize itself; propagates store failures.
    pub fn export_to(&self, store: &dyn ModelStore) -> Result<usize, ServeError> {
        for (key, resident) in &self.resident {
            let snapshot = resident
                .model
                .try_snapshot()
                .ok_or(ServeError::NotSnapshotable(*key))?;
            store.put(*key, &snapshot)?;
        }
        Ok(self.resident.len())
    }

    /// Consumes the catalog into its *resident* `(key, model)` pairs (the
    /// batch server hand-off; cold tiers are dropped with the catalog —
    /// persist them first via the shared store or
    /// [`ModelCatalog::export_to`]).
    pub fn into_shards(self) -> Vec<(ShardKey, Box<dyn Localizer>)> {
        self.resident
            .into_iter()
            .map(|(k, r)| (k, r.model))
            .collect()
    }

    /// Converts the catalog into its thread-shared face for demand-paged
    /// serving (see [`SharedCatalog`]). All three tiers carry over:
    /// resident models become the parked tier, the store and spec tiers
    /// serve cold faults.
    pub fn into_shared(self) -> SharedCatalog {
        let active = self
            .resident
            .iter()
            .filter(|(_, r)| r.version > 0)
            .map(|(k, r)| (*k, r.version))
            .collect();
        SharedCatalog {
            budget: self.budget,
            store: self.store,
            specs: self.specs,
            state: Mutex::new(SharedState {
                parked: self.resident,
                stored: self.stored,
                leased: BTreeSet::new(),
                pending: BTreeMap::new(),
                active,
                activating: BTreeSet::new(),
                clock: self.clock,
                stats: self.stats,
            }),
            released: Condvar::new(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Faults `key` into the resident tier.
    fn ensure_resident(&mut self, key: ShardKey) -> Result<(), ServeError> {
        if self.resident.contains_key(&key) {
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        let (model, cost, version): (Box<dyn Localizer>, usize, u64) =
            if let Some(snapshot) = self.store.get(key)? {
                self.stats.hydrations += 1;
                let model = hydrate(&snapshot)?;
                (
                    Box::new(Sited {
                        site: key.to_string(),
                        inner: model,
                    }),
                    snapshot.encoded_len(),
                    snapshot.version(),
                )
            } else if let Some(spec) = self.specs.get(&key) {
                self.stats.retrains += 1;
                let model = spec.train(key)?;
                // Write through immediately: the next cold miss hydrates
                // from the store instead of paying the retrain again.
                let cost = match model.try_snapshot() {
                    Some(snapshot) => {
                        self.store.put(key, &snapshot)?;
                        self.stored.insert(key);
                        snapshot.encoded_len()
                    }
                    None => 0,
                };
                (
                    Box::new(Sited {
                        site: key.to_string(),
                        inner: model,
                    }),
                    cost,
                    0,
                )
            } else {
                return Err(ServeError::UnknownShard(key));
            };
        self.clock += 1;
        self.resident.insert(
            key,
            Resident {
                model,
                cost,
                last_used: self.clock,
                version,
            },
        );
        self.enforce_budget(Some(key))
    }

    fn over_budget(&self) -> bool {
        match self.budget {
            CatalogBudget::Unbounded => false,
            CatalogBudget::Count(n) => self.resident.len() > n,
            CatalogBudget::Bytes(n) => {
                self.resident.values().map(|r| r.cost).sum::<usize>() > n && self.resident.len() > 1
            }
        }
    }

    /// Evicts least-recently-used resident models (never `protect`, the
    /// shard being served) until the budget holds or only unevictable
    /// models remain.
    fn enforce_budget(&mut self, protect: Option<ShardKey>) -> Result<(), ServeError> {
        while self.over_budget() {
            let mut candidates: Vec<(u64, ShardKey)> = self
                .resident
                .iter()
                .filter(|(k, _)| protect != Some(**k))
                .map(|(k, r)| (r.last_used, *k))
                .collect();
            candidates.sort_unstable();
            // Walk in strict LRU order. A victim whose model must be
            // serialized for the write-through is serialized exactly once
            // here — the snapshot is carried into the eviction rather
            // than probed and rebuilt.
            let mut victim: Option<(ShardKey, Option<ModelSnapshot>)> = None;
            for (_, k) in candidates {
                if self.stored.contains(&k) || self.specs.contains_key(&k) {
                    victim = Some((k, None)); // recoverable without serializing
                    break;
                }
                if let Some(snapshot) = self.resident[&k].model.try_snapshot() {
                    victim = Some((k, Some(snapshot)));
                    break;
                }
                // Pinned (unsnapshotable, no spec): the budget cannot be
                // honored for this model — count the walk-past so
                // oversubscribed-but-pinned budgets are observable, then
                // try the next-oldest.
                self.stats.pinned += 1;
            }
            let Some((victim, snapshot)) = victim else {
                // Everything left is pinned; staying over budget beats
                // losing a model.
                return Ok(());
            };
            self.evict_resident(victim, snapshot)?;
        }
        Ok(())
    }

    /// Retires one resident model, writing it through to the store first
    /// when it is not already there (`snapshot` carries a pre-built blob
    /// so the model is never serialized twice).
    fn evict_resident(
        &mut self,
        key: ShardKey,
        snapshot: Option<ModelSnapshot>,
    ) -> Result<(), ServeError> {
        let Some(resident) = self.resident.remove(&key) else {
            return Ok(());
        };
        if !self.stored.contains(&key) {
            match snapshot {
                Some(snapshot) => {
                    self.store.put(key, &snapshot)?;
                    self.stored.insert(key);
                }
                // A registered spec makes the shard retrainable; honoring
                // the caller's choice not to serialize keeps eviction of
                // spec-backed shards free (a later retrain writes through
                // in ensure_resident, converting the miss after that one
                // into a hydrate).
                None if self.specs.contains_key(&key) => {}
                None => match resident.model.try_snapshot() {
                    Some(snapshot) => {
                        self.store.put(key, &snapshot)?;
                        self.stored.insert(key);
                    }
                    None => {
                        // Unrecoverable: keep it resident and report.
                        self.resident.insert(key, resident);
                        return Err(ServeError::NotSnapshotable(key));
                    }
                },
            }
        }
        self.stats.evictions += 1;
        Ok(())
    }
}

/// What a leasing worker must do to materialize a cold model.
enum LeaseSource {
    Stored,
    Spec(Arc<TrainSpec>),
}

/// State of a [`SharedCatalog`] that changes under the lock. The store
/// and spec tiers live *outside* it: they are `&self`-safe, so the
/// expensive half of a fault (store reads, hydration, retraining) never
/// holds this lock.
struct SharedState {
    /// Models checked into the catalog and not leased out (the resident
    /// tier between serve cycles).
    parked: BTreeMap<ShardKey, Resident>,
    /// Keys known to have a snapshot in the store tier.
    stored: BTreeSet<ShardKey>,
    /// Keys whose model is currently leased to a shard worker.
    leased: BTreeSet<ShardKey>,
    /// Freshly activated models for keys whose previous generation is
    /// still leased out. The leasing worker picks its entry up at the
    /// next batch boundary ([`SharedCatalog::refresh_lease`]); release
    /// paths fold a leftover entry in so an activated model is never
    /// lost.
    pending: BTreeMap<ShardKey, Resident>,
    /// Activated model version per key; absent means "whatever the
    /// store's active slot says" (primed on first lease), which is `0`
    /// for shards that never refreshed.
    active: BTreeMap<ShardKey, u64>,
    /// Keys with an activation (or rollback) in flight — version
    /// allocation, archive and publish are serialized per key.
    activating: BTreeSet<ShardKey>,
    clock: u64,
    stats: CatalogStats,
}

/// The thread-shared face of a [`ModelCatalog`], built for demand-paged
/// serving ([`crate::BatchServer::start_paged`]).
///
/// Shard workers *lease* a model out of the catalog on their first
/// request (a parked-tier hit, a store-tier hydration, or a spec-tier
/// retrain — all bit-identical to the eager model) and *release* it back
/// when they spin down: either cold (write-through to the store, memory
/// freed) or parked (kept live for the next lease, the shutdown path).
///
/// Concurrency contract: the state lock only guards bookkeeping. Two
/// shards faulting at the same time hydrate or retrain concurrently;
/// only lease/release pairs *for the same shard* serialize (a new lease
/// waits until the previous worker has released the key, so a spinning-
/// down worker's write-through always completes before a successor
/// rehydrates).
pub struct SharedCatalog {
    budget: CatalogBudget,
    store: Arc<dyn ModelStore>,
    specs: BTreeMap<ShardKey, Arc<TrainSpec>>,
    state: Mutex<SharedState>,
    /// Signals lease releases and activation completions (same-shard
    /// waiters re-check here).
    released: Condvar,
    /// Bumped on every activation/rollback. Paged workers cache the value
    /// and re-check it between batches — one relaxed atomic load per
    /// batch — so a version bump is picked up at a batch boundary without
    /// ever taking the state lock on the fast path.
    epoch: AtomicU64,
}

impl fmt::Debug for SharedCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = relock(&self.state);
        f.debug_struct("SharedCatalog")
            .field("budget", &self.budget)
            .field("parked", &state.parked.keys().collect::<Vec<_>>())
            .field("leased", &state.leased)
            .field("stored", &state.stored)
            .field("specs", &self.specs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SharedCatalog {
    /// The configured budget (enforced across *leased* models by the
    /// paged server, and across parked models when converting back to a
    /// [`ModelCatalog`]).
    pub fn budget(&self) -> CatalogBudget {
        self.budget
    }

    /// Lifecycle counters so far.
    pub fn stats(&self) -> CatalogStats {
        relock(&self.state).stats
    }

    /// Every key the catalog can serve (parked ∪ leased ∪ stored ∪
    /// specs), sorted.
    pub fn keys(&self) -> Vec<ShardKey> {
        let state = relock(&self.state);
        let mut keys: BTreeSet<ShardKey> = state.parked.keys().copied().collect();
        keys.extend(state.leased.iter().copied());
        keys.extend(state.stored.iter().copied());
        keys.extend(self.specs.keys().copied());
        keys.into_iter().collect()
    }

    /// Number of models currently leased to shard workers.
    pub fn leased_len(&self) -> usize {
        relock(&self.state).leased.len()
    }

    /// Checks `key`'s model out of the catalog for exclusive use by one
    /// shard worker, faulting it in (parked hit → store hydration → spec
    /// retrain) if cold. Returns the model, its budget cost (encoded
    /// snapshot bytes; `0` when unknown) and its model version.
    ///
    /// Blocks while a previous worker still holds `key`'s lease, so a
    /// spin-down's write-through always completes before the re-fault.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] when no tier knows `key`; propagates
    /// hydration, training and store failures (the lease is not held on
    /// error).
    pub(crate) fn lease(
        &self,
        key: ShardKey,
    ) -> Result<(Box<dyn Localizer>, usize, u64), ServeError> {
        let source = {
            let mut state = relock(&self.state);
            while state.leased.contains(&key) {
                state = rewait(&self.released, state);
            }
            if let Some(parked) = state.parked.remove(&key) {
                state.stats.hits += 1;
                state.leased.insert(key);
                return Ok((parked.model, parked.cost, parked.version));
            }
            state.stats.misses += 1;
            if state.stored.contains(&key) {
                state.leased.insert(key);
                LeaseSource::Stored
            } else if let Some(spec) = self.specs.get(&key) {
                state.leased.insert(key);
                LeaseSource::Spec(Arc::clone(spec))
            } else {
                return Err(ServeError::UnknownShard(key));
            }
        };
        // The expensive half — a store read + hydration, or a full
        // retrain — runs outside the state lock so concurrently faulting
        // shards overlap instead of queueing behind one another.
        let outcome: Result<(Box<dyn Localizer>, usize, u64, bool), ServeError> = match source {
            LeaseSource::Stored => self
                .store
                .get(key)
                .and_then(|snapshot| {
                    snapshot.ok_or_else(|| {
                        ServeError::Store(format!("snapshot for shard {key} vanished from store"))
                    })
                })
                .and_then(|snapshot| {
                    let model = hydrate(&snapshot)?;
                    Ok((
                        Box::new(Sited {
                            site: key.to_string(),
                            inner: model,
                        }) as Box<dyn Localizer>,
                        snapshot.encoded_len(),
                        snapshot.version(),
                        false,
                    ))
                }),
            LeaseSource::Spec(spec) => spec.train(key).and_then(|model| {
                // Write through immediately: the next cold fault hydrates
                // instead of paying the retrain again.
                let cost = match model.try_snapshot() {
                    Some(snapshot) => {
                        self.store.put(key, &snapshot)?;
                        snapshot.encoded_len()
                    }
                    None => 0,
                };
                Ok((
                    Box::new(Sited {
                        site: key.to_string(),
                        inner: model,
                    }) as Box<dyn Localizer>,
                    cost,
                    0,
                    true,
                ))
            }),
        };
        let mut state = relock(&self.state);
        match outcome {
            Ok((model, cost, version, retrained)) => {
                if retrained {
                    state.stats.retrains += 1;
                    if cost > 0 {
                        state.stored.insert(key);
                    }
                } else {
                    state.stats.hydrations += 1;
                }
                // Prime the version map from the hydrated snapshot's
                // stamp (restart recovery: the active slot is the source
                // of truth until an in-process activation overrides it).
                state.active.entry(key).or_insert(version);
                Ok((model, cost, version))
            }
            Err(e) => {
                state.leased.remove(&key);
                self.released.notify_all();
                Err(e)
            }
        }
    }

    /// Checks a leased model back in *cold*: writes it through to the
    /// store if it is not already there, then releases its memory (the
    /// spin-down path). A model that can neither snapshot nor retrain is
    /// parked instead of dropped — never lost — and the
    /// [`CatalogStats::pinned`] warning counter ticks.
    ///
    /// `version` is the generation the worker was serving. When a newer
    /// generation was activated during the lease, the returned model is
    /// stale: its bytes are already archived and the successor's bytes
    /// already occupy the store's active slot, so both the stale model
    /// and the superseding pending model can be dropped — the next fault
    /// hydrates the active generation.
    pub(crate) fn release_cold(
        &self,
        key: ShardKey,
        model: Box<dyn Localizer>,
        cost: usize,
        version: u64,
    ) {
        let superseded = {
            let mut state = relock(&self.state);
            state.pending.remove(&key)
        };
        if let Some(fresh) = superseded {
            // Activation already wrote the fresh generation's bytes to
            // the active slot, so neither live copy needs a write-through.
            drop(model);
            drop(fresh);
            let mut state = relock(&self.state);
            state.stats.evictions += 1;
            state.leased.remove(&key);
            self.released.notify_all();
            return;
        }
        let needs_write = {
            let state = relock(&self.state);
            !state.stored.contains(&key)
        };
        if needs_write {
            // Serialization and the store write run outside the lock.
            match model.try_snapshot() {
                Some(snapshot) => match self.store.put(key, &snapshot.with_version(version)) {
                    Ok(()) => {
                        relock(&self.state).stored.insert(key);
                    }
                    Err(e) => {
                        // Failing the write-through must not lose the
                        // model: park it and keep serving from memory.
                        eprintln!(
                            "noble-serve: spin-down write-through for shard {key} failed ({e}); \
                             keeping the model resident"
                        );
                        return self.release_parked(key, model, cost, version);
                    }
                },
                // Retrainable from its spec: dropping is safe.
                None if self.specs.contains_key(&key) => {}
                None => {
                    relock(&self.state).stats.pinned += 1;
                    return self.release_parked(key, model, cost, version);
                }
            }
        }
        drop(model);
        let mut state = relock(&self.state);
        state.stats.evictions += 1;
        state.leased.remove(&key);
        self.released.notify_all();
    }

    /// Checks a leased model back in *live*: it stays parked in the
    /// resident tier for the next lease (the server-shutdown path, so
    /// converting back to a [`ModelCatalog`] hands warm models back).
    /// A pending activation supersedes the returned model — the fresh
    /// generation parks, the stale one drops.
    pub(crate) fn release_parked(
        &self,
        key: ShardKey,
        model: Box<dyn Localizer>,
        cost: usize,
        version: u64,
    ) {
        let stale;
        {
            let mut state = relock(&self.state);
            state.clock += 1;
            let last_used = state.clock;
            let resident = match state.pending.remove(&key) {
                Some(mut fresh) => {
                    fresh.last_used = last_used;
                    stale = Some(model);
                    fresh
                }
                None => {
                    stale = None;
                    Resident {
                        model,
                        cost,
                        last_used,
                        version,
                    }
                }
            };
            state.parked.insert(key, resident);
            state.leased.remove(&key);
        }
        self.released.notify_all();
        drop(stale);
    }

    /// Takes every parked model out of the catalog without budget
    /// trimming (the registry hand-off: the caller wants the live models
    /// themselves, not a budget-enforced resident tier). Stored
    /// snapshots and specs stay behind and are dropped with `self`.
    pub(crate) fn take_parked(&self) -> Vec<(ShardKey, Box<dyn Localizer>)> {
        let mut state = relock(&self.state);
        // A leftover pending activation (its lease was never released)
        // supersedes the parked generation of the same key.
        let pending = std::mem::take(&mut state.pending);
        let mut parked = std::mem::take(&mut state.parked);
        parked.extend(pending);
        parked
            .into_iter()
            .map(|(key, resident)| (key, resident.model))
            .collect()
    }

    /// Drains the shared state back into a single-threaded
    /// [`ModelCatalog`] (parked models become the resident tier, trimmed
    /// back under the budget with write-through evictions). Any model
    /// still leased when this runs stays with its worker and is simply
    /// absent — the paged server only calls this after joining every
    /// worker.
    ///
    /// # Errors
    ///
    /// Propagates write-through failures while trimming to the budget.
    pub(crate) fn drain_into_catalog(&self) -> Result<ModelCatalog, ServeError> {
        let mut state = relock(&self.state);
        debug_assert!(
            state.leased.is_empty(),
            "draining a SharedCatalog with live leases loses models"
        );
        let pending = std::mem::take(&mut state.pending);
        let mut resident = std::mem::take(&mut state.parked);
        resident.extend(pending);
        let mut catalog = ModelCatalog {
            budget: self.budget,
            store: Arc::clone(&self.store),
            specs: self.specs.clone(),
            resident,
            stored: state.stored.clone(),
            clock: state.clock,
            stats: state.stats,
        };
        drop(state);
        catalog.enforce_budget(None)?;
        Ok(catalog)
    }

    // -----------------------------------------------------------------
    // Online refresh: versioned activation, rollback, batch-boundary
    // pickup. See ARCHITECTURE.md, "Online refresh".
    // -----------------------------------------------------------------

    /// The activated model version of `key`: `0` until the first
    /// [`SharedCatalog::activate`] (or after a rollback to the offline
    /// generation). Absent keys report `0`.
    ///
    /// Note the map is primed lazily: after a restart the authoritative
    /// version lives in the store's active slot and is learned on the
    /// first lease or activation of the key.
    pub fn active_version(&self, key: ShardKey) -> u64 {
        relock(&self.state).active.get(&key).copied().unwrap_or(0)
    }

    /// Archived (rollback-able) version numbers of `key`, ascending —
    /// a store passthrough.
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn archived_versions(&self, key: ShardKey) -> Result<Vec<u64>, ServeError> {
        self.store.versions(key)
    }

    /// The swap epoch: bumped on every activation and rollback. Workers
    /// cache it and compare between batches; an unchanged epoch is one
    /// relaxed load, so the serving fast path never touches the state
    /// lock for version checks.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The training spec registered for `key` (the refresher's retrain
    /// recipe).
    pub(crate) fn spec_of(&self, key: ShardKey) -> Option<Arc<TrainSpec>> {
        self.specs.get(&key).map(Arc::clone)
    }

    /// Builds and activates the next model generation of `key`.
    ///
    /// `build` receives the allocated version number and returns the new
    /// model — it runs *off the serving path* (no catalog lock held, the
    /// current generation keeps serving untouched). The activation
    /// contract, in order:
    ///
    /// 1. the predecessor generation is archived if it never was (so the
    ///    first refresh makes version 0 rollback-able);
    /// 2. the new model is snapshotted through the store as an immutable
    ///    version archive **before** activation;
    /// 3. the same bytes are published to the store's active slot (a
    ///    restart rehydrates to the new version);
    /// 4. the in-memory flip: parked keys swap immediately, leased keys
    ///    get a pending entry their worker picks up at the next batch
    ///    boundary — never mid-batch — and the swap epoch bumps.
    ///
    /// Activations and rollbacks of the same key are serialized against
    /// each other (concurrent calls for different keys overlap).
    /// Version numbers are never reused: after a rollback, the next
    /// activation continues above the highest archived version.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotSnapshotable`] when the built model cannot
    /// serialize itself (nothing is activated); propagates store and
    /// build failures.
    pub fn activate<F>(&self, key: ShardKey, build: F) -> Result<u64, ServeError>
    where
        F: FnOnce(u64) -> Result<Box<dyn Localizer>, ServeError>,
    {
        let current = self.begin_activation(key);
        let outcome = (|| {
            // Lineage recovery from the store: the active slot may be
            // ahead of the in-memory map (fresh process), and archived
            // numbers must never be reused (rollback rewinds `active`
            // but not history).
            let slot = self.store.get(key)?;
            let slot_version = slot.as_ref().map_or(0, ModelSnapshot::version);
            let archived = self.store.versions(key)?;
            if let Some(slot_snap) = &slot {
                if !archived.contains(&slot_version) {
                    self.store.put_version(key, slot_version, slot_snap)?;
                }
            }
            let version = archived
                .last()
                .copied()
                .unwrap_or(0)
                .max(slot_version)
                .max(current)
                + 1;
            let model = build(version)?;
            let model: Box<dyn Localizer> = Box::new(Sited {
                site: key.to_string(),
                inner: model,
            });
            let snapshot = model
                .try_snapshot()
                .ok_or(ServeError::NotSnapshotable(key))?
                .with_version(version);
            // Archive first, then publish the active slot: every version
            // is durably snapshotted before anything serves it.
            self.store.put_version(key, version, &snapshot)?;
            self.store.put(key, &snapshot)?;
            Ok((version, model, snapshot.encoded_len()))
        })();
        self.finish_activation(key, outcome)
    }

    /// Rewinds `key` to an archived `version`: rehydrates its bytes,
    /// republishes them as the store's active slot, and flips serving to
    /// the restored model with the same batch-boundary discipline as
    /// [`SharedCatalog::activate`]. The restored model is bit-identical
    /// to the one that was archived (snapshot hydration is exact).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownVersion`] when `version` was never archived
    /// for `key`; propagates store and hydration failures (serving is
    /// untouched on error).
    pub fn rollback(&self, key: ShardKey, version: u64) -> Result<(), ServeError> {
        self.begin_activation(key);
        let outcome = (|| {
            let snapshot = self
                .store
                .get_version(key, version)?
                .ok_or(ServeError::UnknownVersion { key, version })?;
            let model = hydrate(&snapshot)?;
            let model: Box<dyn Localizer> = Box::new(Sited {
                site: key.to_string(),
                inner: model,
            });
            // Republish the archived bytes as the active slot so a
            // restart rehydrates to the rolled-back version.
            self.store.put(key, &snapshot)?;
            Ok((version, model, snapshot.encoded_len()))
        })();
        self.finish_activation(key, outcome).map(|_| ())
    }

    /// Claims the per-key activation slot, waiting out an in-flight
    /// activation of the same key. Returns the current active version.
    fn begin_activation(&self, key: ShardKey) -> u64 {
        let mut state = relock(&self.state);
        while state.activating.contains(&key) {
            state = rewait(&self.released, state);
        }
        state.activating.insert(key);
        state.active.get(&key).copied().unwrap_or(0)
    }

    /// Publishes (or abandons, on error) an activation: flips the active
    /// version, routes the model to the parked tier or the leased
    /// worker's pending slot, bumps the swap epoch and releases the
    /// per-key activation slot.
    fn finish_activation(
        &self,
        key: ShardKey,
        outcome: Result<(u64, Box<dyn Localizer>, usize), ServeError>,
    ) -> Result<u64, ServeError> {
        let mut state = relock(&self.state);
        state.activating.remove(&key);
        let result = match outcome {
            Ok((version, model, cost)) => {
                state.clock += 1;
                let resident = Resident {
                    model,
                    cost,
                    last_used: state.clock,
                    version,
                };
                state.stored.insert(key);
                state.active.insert(key, version);
                if state.leased.contains(&key) {
                    // The worker picks this up at its next batch
                    // boundary; a second activation before that simply
                    // replaces the entry (the dropped generation is
                    // archived).
                    state.pending.insert(key, resident);
                } else {
                    state.parked.insert(key, resident);
                }
                self.epoch.fetch_add(1, Ordering::Release);
                Ok(version)
            }
            Err(e) => Err(e),
        };
        drop(state);
        self.released.notify_all();
        result
    }

    /// A paged worker's between-batches version check: given the version
    /// it is serving, returns the fresh `(model, cost, version)` to swap
    /// to at this batch boundary, or `None` to keep serving. Never
    /// blocks on training — the fresh model was built off-path and is
    /// waiting in the pending slot (the rare fallback rehydrates the
    /// store's active slot). On any store/hydration hiccup the worker
    /// keeps its current generation: refresh machinery must never
    /// degrade serving.
    pub(crate) fn refresh_lease(
        &self,
        key: ShardKey,
        serving: u64,
    ) -> Option<(Box<dyn Localizer>, usize, u64)> {
        {
            let mut state = relock(&self.state);
            let active = state.active.get(&key).copied().unwrap_or(serving);
            if active == serving {
                return None;
            }
            if let Some(fresh) = state.pending.remove(&key) {
                return Some((fresh.model, fresh.cost, fresh.version));
            }
        }
        // No live pending copy (e.g. consecutive swaps raced): fall back
        // to the active slot's bytes.
        let snapshot = self.store.get(key).ok().flatten()?;
        if snapshot.version() == serving {
            return None;
        }
        let cost = snapshot.encoded_len();
        let version = snapshot.version();
        let model = hydrate(&snapshot).ok()?;
        Some((
            Box::new(Sited {
                site: key.to_string(),
                inner: model,
            }),
            cost,
            version,
        ))
    }
}
