//! Typed serving errors.

use crate::ShardKey;
use std::error::Error;
use std::fmt;

/// Errors produced by the sharded registry and the batch server.
///
/// Variants are `Clone` (model failures are carried as rendered strings)
/// so one batch-level failure can be fanned out to every request that rode
/// in the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A request named a shard the registry does not hold.
    UnknownShard(ShardKey),
    /// The registry ended up with no shards at all.
    NoShards,
    /// A fingerprint's width does not match the shard model's feature
    /// dimension.
    FeatureDim {
        /// Shard that rejected the fingerprint.
        key: ShardKey,
        /// Width the shard's model expects.
        expected: usize,
        /// Width the request carried.
        found: usize,
    },
    /// The server is shutting down (or a shard worker has exited); the
    /// request was not served.
    ShuttingDown,
    /// The underlying model failed; the message is the rendered
    /// [`noble::NobleError`].
    Model(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A stored model snapshot was corrupt, truncated, version-skewed or
    /// failed validation on read.
    BadSnapshot(String),
    /// A model-store backend failed (I/O, permissions, ...).
    Store(String),
    /// The shard's resident model cannot be serialized and has no
    /// registered training spec, so evicting it would lose it.
    NotSnapshotable(ShardKey),
    /// A rollback named a model version that was never archived for the
    /// shard.
    UnknownVersion {
        /// Shard whose history was searched.
        key: ShardKey,
        /// The version that is not in the archive.
        version: u64,
    },
    /// A serving-stack invariant failed (worker spawn, batch assembly).
    /// Replaces what used to be worker panics: the request gets this
    /// typed reply and the shard keeps serving.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownShard(key) => write!(f, "unknown shard {key}"),
            ServeError::NoShards => write!(f, "registry holds no shards"),
            ServeError::FeatureDim {
                key,
                expected,
                found,
            } => write!(
                f,
                "shard {key} expects feature width {expected}, request has {found}"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Model(msg) => write!(f, "model failure: {msg}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::BadSnapshot(msg) => write!(f, "bad snapshot: {msg}"),
            ServeError::Store(msg) => write!(f, "model store failure: {msg}"),
            ServeError::NotSnapshotable(key) => {
                write!(f, "shard {key}'s model cannot be snapshotted")
            }
            ServeError::UnknownVersion { key, version } => {
                write!(f, "shard {key} has no archived model version {version}")
            }
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<noble::NobleError> for ServeError {
    fn from(e: noble::NobleError) -> Self {
        match e {
            noble::NobleError::BadSnapshot(msg) => ServeError::BadSnapshot(msg),
            other => ServeError::Model(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shard() {
        let e = ServeError::UnknownShard(ShardKey::building(7));
        assert!(e.to_string().contains("b7"));
        let e = ServeError::FeatureDim {
            key: ShardKey::building_floor(1, 2),
            expected: 12,
            found: 3,
        };
        assert!(e.to_string().contains("12") && e.to_string().contains('3'));
        let e: ServeError = noble::NobleError::InvalidData("nope".into()).into();
        assert!(matches!(e, ServeError::Model(ref m) if m.contains("nope")));
    }
}
