//! Stateful tracking sessions: the per-device layer over the batch
//! server.
//!
//! Everything below this module is stateless — a [`BatchServer`] maps a
//! fingerprint to a fix and forgets it. The paper's second half is
//! *tracking*: per-device trajectories smoothed over time, with semantic
//! events ("device 7 entered lab 3") derived from where the track
//! settles. This module adds that state:
//!
//! ```text
//!                    TrackingClient::submit(device, key, at, fp)
//!                                      │
//!                   ┌──────────────────┴──────────────────┐
//!                   ▼                                     ▼
//!            BatchServer                           SessionTable
//!         (stateless fix:                    shard = hash(device) % N
//!          fingerprint → raw Point)    ┌─────────┬─────────┬─────────┐
//!                   │                  │ Mutex   │ Mutex   │ Mutex   │
//!                   │    raw fix       │ shard 0 │ shard 1 │ ...     │
//!                   └─────────────────►│         │         │         │
//!                                      └────┬────┴─────────┴─────────┘
//!                                           ▼  per-device Session:
//!                                      TrajectorySmoother (bit-exact)
//!                                      ZoneDetector (K-fix hysteresis)
//!                                      bounded track buffer, last_seen
//!                                           │
//!                                           ▼
//!                             (TrackedFix, Vec<ZoneEvent>)
//! ```
//!
//! A [`Session`] walks a three-state lifecycle driven by *logical time*
//! (the `at` stamps callers submit with — never the wall clock, which
//! would break reproducibility):
//!
//! ```text
//!            observe()                 sweep(now): stale + in zone
//!   ABSENT ────────────► LIVE ──────────────────────────► AWAY
//!      ▲    (fresh smoother,     (ZoneDetector::force_leave  │
//!      │     fresh detector)      emits the closing `Left`;  │
//!      │                          session kept)              │
//!      └─────────────────────────────────────────────────────┘
//!              sweep(now): stale + out of zone → evicted
//! ```
//!
//! The two-phase timeout is deliberate: a sweep either emits a session's
//! closing `Left` *or* evicts it, never both — eviction of a formerly
//! in-zone session lands on a later sweep, after its membership was
//! closed. Revived devices (evicted, then observed again) get a fresh
//! smoother, so no stale velocity leaks across the gap.
//!
//! # Determinism contract
//!
//! Same interleaving of per-device observations ⇒ bit-identical smoothed
//! tracks and identical event sequences, at any `session_shards` count
//! and any client thread count. This holds by construction:
//!
//! - the raw fix is bit-identical however it was served (the
//!   `serving_parity` contract of [`BatchServer`]);
//! - each device's smoother and detector are touched only under that
//!   device's session-shard lock, in the caller's submission order —
//!   devices never share state, so cross-device interleaving is
//!   irrelevant;
//! - time is logical and caller-supplied, and [`SessionTable::sweep`]
//!   sorts its events by device id, so sweep output does not depend on
//!   how devices happen to be distributed across shards.
//!
//! The `tracking_sessions` integration suite pins all three clauses.
//!
//! # Example
//!
//! ```
//! use noble::wifi::tracking::SmootherConfig;
//! use noble::wifi::WifiNobleConfig;
//! use noble_datasets::{uji_campaign, UjiConfig};
//! use noble_geo::ZoneSet;
//! use noble_serve::{BatchConfig, RegistryConfig, ShardedRegistry, TrackingServer};
//!
//! let campaign = uji_campaign(&UjiConfig::small())?;
//! let registry = ShardedRegistry::train_wifi(
//!     &campaign,
//!     &WifiNobleConfig::small(),
//!     &RegistryConfig::default(),
//! )?;
//! let zones = ZoneSet::from_buildings(&campaign.map);
//! let server = TrackingServer::start(
//!     registry,
//!     zones,
//!     Some(campaign.map.clone()),
//!     SmootherConfig::default(),
//!     BatchConfig::default(),
//! )?;
//! let key = server.keys()[0];
//! let (fix, events) = server.submit(7, key, 0, vec![0.0; campaign.num_waps()])?;
//! println!("device 7 at {} (zone {:?}, {} events)", fix.smoothed, fix.zone, events.len());
//! assert_eq!(server.session_stats().live, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::sync::relock;
use crate::{
    BatchConfig, BatchServer, ModelCatalog, PagedStats, ServeClient, ServeError, ShardKey,
    ShardStats, ShardedRegistry,
};
use noble::wifi::tracking::{SmootherConfig, TrajectorySmoother, ZoneDetector};
use noble_geo::{CampusMap, Point, ZoneSet};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Opaque per-device identity (the session-table key).
pub type DeviceId = u64;

/// Fixes a session remembers in its bounded track buffer
/// ([`SessionTable::track`]); older entries fall off the front.
const TRACK_BUFFER: usize = 32;

/// What happened at a zone boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ZoneEventKind {
    /// The device's track settled inside the zone (after the stability
    /// window).
    Entered,
    /// The device's track settled outside the zone — or went silent past
    /// the away timeout while inside it.
    Left,
}

/// One committed zone-membership change for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneEvent {
    /// The device whose membership changed.
    pub device: DeviceId,
    /// Index of the zone in the server's [`ZoneSet`].
    pub zone: usize,
    /// Entered or left.
    pub kind: ZoneEventKind,
    /// Logical time of the observation (or sweep) that committed the
    /// change.
    pub at: u64,
}

/// One served-and-tracked fix, as returned by
/// [`TrackingClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedFix {
    /// The raw localizer output (what a stateless [`BatchServer`] would
    /// have returned).
    pub raw: Point,
    /// The session's smoothed position after consuming the raw fix.
    pub smoothed: Point,
    /// The session's *committed* zone after this observation — the
    /// hysteresis-stable membership, not the instantaneous zone under
    /// the smoothed point.
    pub zone: Option<usize>,
    /// Whether the underlying shard was cold and the fix parked while
    /// its model faulted in (demand-paged servers only).
    pub cold: bool,
}

/// Per-device tracking state. Lives inside one session-table shard; all
/// access is under that shard's lock.
struct Session {
    smoother: TrajectorySmoother,
    detector: ZoneDetector,
    /// Most recent `(at, smoothed)` pairs, oldest first, bounded by
    /// [`TRACK_BUFFER`].
    track: VecDeque<(u64, Point)>,
    /// Logical time of the last observation (drives the away timeout).
    last_seen: u64,
}

/// Session-layer counters ([`SessionTable::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently held (live or away).
    pub live: usize,
    /// Sessions ever created (revivals count again).
    pub created: u64,
    /// Sessions evicted by the away timeout.
    pub evicted: u64,
    /// Observations consumed.
    pub observations: u64,
    /// `Entered` events emitted.
    pub entered: u64,
    /// `Left` events emitted (fix-driven and sweep-driven alike).
    pub left: u64,
    /// Lock shards the table is split across.
    pub shards: usize,
    /// Approximate heap footprint of one full session in bytes (state
    /// machine + a full track buffer) — the "bytes/session" capacity
    /// planning number.
    pub approx_session_bytes: usize,
    /// Fix-tier gauge: requests queued in the underlying [`BatchServer`]
    /// but not yet batched, as of the read. Always `0` from a bare
    /// [`SessionTable::stats`] — only [`TrackingClient::session_stats`]
    /// (and [`TrackingServer::session_stats`]) can see the fix tier.
    pub queued_fixes: u64,
    /// Fix-tier gauge: requests submitted to the underlying
    /// [`BatchServer`] but not yet replied to, as of the read. `0` from a
    /// bare [`SessionTable::stats`], like
    /// [`SessionStats::queued_fixes`].
    pub in_flight_fixes: u64,
}

/// The sharded per-device session store.
///
/// `session_shards` independently locked [`BTreeMap`]s, with devices
/// assigned by a SplitMix64 hash of their id. Sharding only spreads lock
/// contention; it never changes behavior (see the module docs).
pub struct SessionTable {
    shards: Vec<Mutex<BTreeMap<DeviceId, Session>>>,
    zones: ZoneSet,
    map: Option<CampusMap>,
    smoother: SmootherConfig,
    stability_k: u32,
    away_timeout: Option<u64>,
    created: AtomicU64,
    evicted: AtomicU64,
    observations: AtomicU64,
    entered: AtomicU64,
    left: AtomicU64,
}

impl SessionTable {
    /// Creates an empty table. Zone membership is tested against the
    /// *smoothed* position (snapped to `map` when the smoother config
    /// asks for it); `cfg` supplies the session knobs
    /// ([`BatchConfig::session_shards`], [`BatchConfig::stability_k`],
    /// [`BatchConfig::away_timeout`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `session_shards` or
    /// `stability_k` is zero.
    pub fn new(
        zones: ZoneSet,
        map: Option<CampusMap>,
        smoother: SmootherConfig,
        cfg: &BatchConfig,
    ) -> Result<Self, ServeError> {
        if cfg.session_shards == 0 {
            return Err(ServeError::InvalidConfig(
                "session_shards must be >= 1".into(),
            ));
        }
        if cfg.stability_k == 0 {
            return Err(ServeError::InvalidConfig("stability_k must be >= 1".into()));
        }
        Ok(SessionTable {
            shards: (0..cfg.session_shards)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            zones,
            map,
            smoother,
            stability_k: cfg.stability_k,
            away_timeout: cfg.away_timeout,
            created: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            observations: AtomicU64::new(0),
            entered: AtomicU64::new(0),
            left: AtomicU64::new(0),
        })
    }

    /// SplitMix64 finalizer — device ids are often sequential, and a
    /// plain modulus would pile consecutive devices onto alternating
    /// shards in lockstep.
    fn shard_of(&self, device: DeviceId) -> usize {
        let mut z = device.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Consumes one raw fix for `device` at logical time `at`: smooths
    /// it, records it in the bounded track buffer, and runs the zone
    /// detector. Returns the smoothed position, the committed zone, and
    /// any events this observation committed (`Left` before `Entered`
    /// on a direct zone-to-zone move).
    ///
    /// Callers must deliver each device's observations in order (`at`
    /// non-decreasing per device); observations of *different* devices
    /// may interleave freely.
    pub fn observe(
        &self,
        device: DeviceId,
        at: u64,
        fix: Point,
    ) -> (Point, Option<usize>, Vec<ZoneEvent>) {
        let mut shard = relock(&self.shards[self.shard_of(device)]);
        let session = shard.entry(device).or_insert_with(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Session {
                smoother: TrajectorySmoother::new(self.smoother),
                detector: ZoneDetector::new(self.stability_k),
                track: VecDeque::with_capacity(TRACK_BUFFER),
                last_seen: at,
            }
        });
        session.last_seen = at;
        let smoothed = session.smoother.update(fix, self.map.as_ref());
        if session.track.len() == TRACK_BUFFER {
            session.track.pop_front();
        }
        session.track.push_back((at, smoothed));
        let mut events = Vec::new();
        if let Some(t) = session.detector.observe(self.zones.locate(smoothed)) {
            if let Some(zone) = t.left {
                self.left.fetch_add(1, Ordering::Relaxed);
                events.push(ZoneEvent {
                    device,
                    zone,
                    kind: ZoneEventKind::Left,
                    at,
                });
            }
            if let Some(zone) = t.entered {
                self.entered.fetch_add(1, Ordering::Relaxed);
                events.push(ZoneEvent {
                    device,
                    zone,
                    kind: ZoneEventKind::Entered,
                    at,
                });
            }
        }
        self.observations.fetch_add(1, Ordering::Relaxed);
        (smoothed, session.detector.current(), events)
    }

    /// Retires sessions that have gone silent — call it off the serving
    /// path (a maintenance tick), with `now` on the same logical clock
    /// as the `at` stamps. A session is *stale* once
    /// `now - last_seen > away_timeout`. Stale sessions advance one
    /// lifecycle phase per sweep:
    ///
    /// 1. stale and in a zone → its membership is closed
    ///    ([`ZoneDetector::force_leave`]) and the closing `Left` emitted;
    ///    the session is kept;
    /// 2. stale and out of every zone → evicted silently.
    ///
    /// So no session both emits an event and is evicted in the same
    /// sweep. Events are sorted by device id, making sweep output
    /// independent of the shard layout. With no
    /// [`BatchConfig::away_timeout`] configured the sweep is a no-op.
    pub fn sweep(&self, now: u64) -> Vec<ZoneEvent> {
        let Some(timeout) = self.away_timeout else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for shard in &self.shards {
            let mut shard = relock(shard);
            let stale: Vec<DeviceId> = shard
                .iter()
                .filter(|(_, s)| now.saturating_sub(s.last_seen) > timeout)
                .map(|(d, _)| *d)
                .collect();
            for device in stale {
                let Some(session) = shard.get_mut(&device) else {
                    continue;
                };
                if let Some(zone) = session.detector.force_leave() {
                    self.left.fetch_add(1, Ordering::Relaxed);
                    events.push(ZoneEvent {
                        device,
                        zone,
                        kind: ZoneEventKind::Left,
                        at: now,
                    });
                } else {
                    shard.remove(&device);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        events.sort_by_key(|e| e.device);
        events
    }

    /// The recent smoothed track of `device` (oldest first), if its
    /// session is held.
    pub fn track(&self, device: DeviceId) -> Option<Vec<(u64, Point)>> {
        let shard = relock(&self.shards[self.shard_of(device)]);
        shard
            .get(&device)
            .map(|s| s.track.iter().copied().collect())
    }

    /// Current counters (the live count walks every shard, so keep it
    /// off hot paths).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            live: self.shards.iter().map(|s| relock(s).len()).sum(),
            created: self.created.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            observations: self.observations.load(Ordering::Relaxed),
            entered: self.entered.load(Ordering::Relaxed),
            left: self.left.load(Ordering::Relaxed),
            shards: self.shards.len(),
            approx_session_bytes: std::mem::size_of::<(DeviceId, Session)>()
                + TRACK_BUFFER * std::mem::size_of::<(u64, Point)>(),
            queued_fixes: 0,
            in_flight_fixes: 0,
        }
    }
}

/// A cloneable handle onto a running [`TrackingServer`] — one per client
/// thread, like [`ServeClient`].
#[derive(Clone)]
pub struct TrackingClient {
    client: ServeClient,
    sessions: Arc<SessionTable>,
}

impl TrackingClient {
    /// Localizes one fingerprint through the batch server, then feeds
    /// the raw fix through `device`'s session: smoothing, track buffer,
    /// zone hysteresis. Returns the tracked fix plus any zone events
    /// this observation committed.
    ///
    /// Per-device ordering is the caller's contract: a device's
    /// observations must be submitted (and each call completed) in
    /// logical-time order. Different devices may be driven from
    /// different threads freely.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::submit`] and the shard worker can
    /// reply — the session is untouched when the fix fails.
    pub fn submit(
        &self,
        device: DeviceId,
        key: ShardKey,
        at: u64,
        fingerprint: Vec<f64>,
    ) -> Result<(TrackedFix, Vec<ZoneEvent>), ServeError> {
        let pending = self.client.submit(key, fingerprint)?;
        let cold = pending.cold();
        let raw = pending.wait()?;
        let (smoothed, zone, events) = self.sessions.observe(device, at, raw);
        Ok((
            TrackedFix {
                raw,
                smoothed,
                zone,
                cold,
            },
            events,
        ))
    }

    /// Runs a session sweep at logical time `now` (see
    /// [`SessionTable::sweep`]).
    pub fn sweep(&self, now: u64) -> Vec<ZoneEvent> {
        self.sessions.sweep(now)
    }

    /// Session-layer counters, with the fix tier's live queue gauges
    /// overlaid (the admission-watermark inputs; see
    /// [`ServeClient::server_stats`]).
    pub fn session_stats(&self) -> SessionStats {
        let mut stats = self.sessions.stats();
        let server = self.client.server_stats();
        stats.queued_fixes = server.queue_depth;
        stats.in_flight_fixes = server.in_flight;
        stats
    }

    /// The raw fix-serving client underneath this tracking handle — the
    /// stateless tier the network front end routes `Localize` frames to
    /// (while `TrackedSubmit` frames go through
    /// [`TrackingClient::submit`]).
    pub fn fix_client(&self) -> &ServeClient {
        &self.client
    }
}

/// A [`BatchServer`] with a [`SessionTable`] on top: per-device smoothed
/// tracks and zone events over stateless fix serving. See the module
/// docs for the data flow and the determinism contract.
pub struct TrackingServer {
    server: BatchServer,
    handle: TrackingClient,
}

impl TrackingServer {
    /// Starts tracking over a fully-resident [`BatchServer::start`].
    /// Pass the campus map to snap smoothed tracks onto accessible
    /// space ([`SmootherConfig::snap_to_map`]); zone membership is
    /// tested against the smoothed (post-snap) position.
    ///
    /// # Errors
    ///
    /// Everything [`BatchServer::start`] rejects, plus
    /// [`ServeError::InvalidConfig`] for zero
    /// [`BatchConfig::session_shards`] / [`BatchConfig::stability_k`].
    pub fn start(
        registry: ShardedRegistry,
        zones: ZoneSet,
        map: Option<CampusMap>,
        smoother: SmootherConfig,
        cfg: BatchConfig,
    ) -> Result<Self, ServeError> {
        let sessions = Arc::new(SessionTable::new(zones, map, smoother, &cfg)?);
        let server = BatchServer::start(registry, cfg)?;
        Ok(TrackingServer::assemble(server, sessions))
    }

    /// Starts tracking over a demand-paged [`BatchServer::start_paged`]:
    /// the fix tier pages localizer models under the catalog budget
    /// while the session tier holds every live device — sessions are
    /// hundreds of bytes, models are not.
    ///
    /// # Errors
    ///
    /// As [`TrackingServer::start`], over
    /// [`BatchServer::start_paged`]'s rejections.
    pub fn start_paged(
        catalog: ModelCatalog,
        zones: ZoneSet,
        map: Option<CampusMap>,
        smoother: SmootherConfig,
        cfg: BatchConfig,
    ) -> Result<Self, ServeError> {
        let sessions = Arc::new(SessionTable::new(zones, map, smoother, &cfg)?);
        let server = BatchServer::start_paged(catalog, cfg)?;
        Ok(TrackingServer::assemble(server, sessions))
    }

    fn assemble(server: BatchServer, sessions: Arc<SessionTable>) -> Self {
        let handle = TrackingClient {
            client: server.client(),
            sessions,
        };
        TrackingServer { server, handle }
    }

    /// A new submission handle (cheap to clone per client thread).
    pub fn client(&self) -> TrackingClient {
        self.handle.clone()
    }

    /// Tracks one fingerprint for `device` (see
    /// [`TrackingClient::submit`]).
    ///
    /// # Errors
    ///
    /// As [`TrackingClient::submit`].
    pub fn submit(
        &self,
        device: DeviceId,
        key: ShardKey,
        at: u64,
        fingerprint: Vec<f64>,
    ) -> Result<(TrackedFix, Vec<ZoneEvent>), ServeError> {
        self.handle.submit(device, key, at, fingerprint)
    }

    /// Runs a session sweep at logical time `now` (see
    /// [`SessionTable::sweep`]).
    pub fn sweep(&self, now: u64) -> Vec<ZoneEvent> {
        self.handle.sweep(now)
    }

    /// Session-layer counters.
    pub fn session_stats(&self) -> SessionStats {
        self.handle.session_stats()
    }

    /// Shard keys being served (routing targets for
    /// [`TrackingClient::submit`]).
    pub fn keys(&self) -> Vec<ShardKey> {
        self.server.keys()
    }

    /// Live per-shard fix-serving statistics.
    pub fn stats(&self) -> Vec<(ShardKey, ShardStats)> {
        self.server.stats()
    }

    /// Demand-paging lifecycle counters; `None` when the fix tier is
    /// fully resident.
    pub fn paged_stats(&self) -> Option<PagedStats> {
        self.server.paged_stats()
    }

    /// Graceful shutdown of the fix tier; returns its final per-shard
    /// statistics and the session layer's final counters.
    pub fn shutdown(self) -> (Vec<(ShardKey, ShardStats)>, SessionStats) {
        let sessions = self.handle.session_stats();
        (self.server.shutdown(), sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_geo::{Polygon, Zone};

    fn two_zone_table(cfg: &BatchConfig) -> SessionTable {
        let zones = ZoneSet::new(vec![
            Zone::new("west", Polygon::rectangle(0.0, 0.0, 5.0, 10.0).unwrap()),
            Zone::new("east", Polygon::rectangle(5.0, 0.0, 10.0, 10.0).unwrap()),
        ]);
        let smoother = SmootherConfig {
            snap_to_map: false,
            ..SmootherConfig::default()
        };
        SessionTable::new(zones, None, smoother, cfg).unwrap()
    }

    fn settle(table: &SessionTable, device: DeviceId, from: u64, p: Point) -> Vec<ZoneEvent> {
        let mut events = Vec::new();
        for i in 0..3 {
            events.extend(table.observe(device, from + i, p).2);
        }
        events
    }

    #[test]
    fn zero_shards_and_zero_k_are_rejected() {
        let zones = ZoneSet::default();
        let smoother = SmootherConfig::default();
        let bad_shards = BatchConfig {
            session_shards: 0,
            ..BatchConfig::default()
        };
        assert!(matches!(
            SessionTable::new(zones.clone(), None, smoother, &bad_shards),
            Err(ServeError::InvalidConfig(_))
        ));
        let bad_k = BatchConfig {
            stability_k: 0,
            ..BatchConfig::default()
        };
        assert!(matches!(
            SessionTable::new(zones, None, smoother, &bad_k),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn observe_creates_then_reuses_one_session_per_device() {
        let table = two_zone_table(&BatchConfig::default());
        let inside = Point::new(2.0, 2.0);
        let events = settle(&table, 7, 0, inside);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ZoneEventKind::Entered);
        assert_eq!(events[0].zone, 0);
        let stats = table.stats();
        assert_eq!((stats.live, stats.created, stats.observations), (1, 1, 3));
        assert!(stats.approx_session_bytes > 0);
        // A stationary device stays settled: no further events.
        assert!(settle(&table, 7, 3, inside).is_empty());
        assert_eq!(table.stats().created, 1);
    }

    #[test]
    fn track_buffer_is_bounded() {
        let table = two_zone_table(&BatchConfig::default());
        for i in 0..(TRACK_BUFFER as u64 + 10) {
            table.observe(3, i, Point::new(2.0, 2.0));
        }
        let track = table.track(3).unwrap();
        assert_eq!(track.len(), TRACK_BUFFER);
        // Oldest entries fell off the front.
        assert_eq!(track[0].0, 10);
        assert_eq!(table.track(99), None);
    }

    #[test]
    fn sweep_without_timeout_is_inert() {
        let table = two_zone_table(&BatchConfig::default());
        settle(&table, 1, 0, Point::new(2.0, 2.0));
        assert!(table.sweep(1_000_000).is_empty());
        assert_eq!(table.stats().live, 1);
    }

    #[test]
    fn stale_sessions_leave_first_and_are_evicted_one_sweep_later() {
        let cfg = BatchConfig {
            away_timeout: Some(10),
            ..BatchConfig::default()
        };
        let table = two_zone_table(&cfg);
        // Device 1 settles in zone 0; device 2 wanders outside any zone.
        settle(&table, 1, 0, Point::new(2.0, 2.0));
        settle(&table, 2, 0, Point::new(50.0, 50.0));
        // Not stale yet at now = 12 (last_seen 2, timeout 10).
        assert!(table.sweep(12).is_empty());
        assert_eq!(table.stats().live, 2);
        // Stale at 13: the in-zone session emits its closing Left and is
        // kept; the zoneless one is evicted silently.
        let events = table.sweep(13);
        assert_eq!(events.len(), 1);
        assert_eq!(
            (
                events[0].device,
                events[0].zone,
                events[0].kind,
                events[0].at
            ),
            (1, 0, ZoneEventKind::Left, 13)
        );
        let stats = table.stats();
        assert_eq!((stats.live, stats.evicted), (1, 1));
        // The next sweep evicts the now-zoneless session, emitting nothing.
        assert!(table.sweep(14).is_empty());
        let stats = table.stats();
        assert_eq!((stats.live, stats.evicted), (0, 2));
    }

    #[test]
    fn sweep_events_are_sorted_by_device_at_any_shard_count() {
        for shards in [1usize, 2, 4, 7] {
            let cfg = BatchConfig {
                session_shards: shards,
                away_timeout: Some(1),
                ..BatchConfig::default()
            };
            let table = two_zone_table(&cfg);
            for device in [9u64, 3, 41, 17, 28] {
                settle(&table, device, 0, Point::new(2.0, 2.0));
            }
            let devices: Vec<DeviceId> = table.sweep(100).iter().map(|e| e.device).collect();
            assert_eq!(devices, vec![3, 9, 17, 28, 41], "shards = {shards}");
        }
    }

    #[test]
    fn revived_device_gets_a_fresh_smoother() {
        let cfg = BatchConfig {
            away_timeout: Some(1),
            ..BatchConfig::default()
        };
        let table = two_zone_table(&cfg);
        // Build up eastward velocity, then go silent until evicted.
        for i in 0..6u64 {
            table.observe(5, i, Point::new(50.0 + 3.0 * i as f64, 50.0));
        }
        table.sweep(100);
        assert_eq!(table.stats().live, 0);
        // The revived session's first fix must pass through verbatim —
        // stale velocity would drag it east of the raw fix.
        let (smoothed, _, _) = table.observe(5, 200, Point::new(50.0, 50.0));
        assert_eq!(smoothed, Point::new(50.0, 50.0));
        assert_eq!(table.stats().created, 2);
    }
}
