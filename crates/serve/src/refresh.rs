//! Online refresh: versioned live model updates for a demand-paged
//! server.
//!
//! A [`Refresher`] rides next to a running
//! [`crate::BatchServer::start_paged`] server and closes the loop
//! between serving and training:
//!
//! 1. **observe** — served fixes and ground-truth *corrections* stream
//!    into a bounded per-shard [`ObservationBuffer`]
//!    ([`Refresher::observe_fix`] / [`Refresher::observe_correction`]);
//! 2. **refresh** — [`Refresher::refresh`] retrains a *copy* of the
//!    shard's model off the serving path (the caller's thread; workers
//!    keep answering from the current generation throughout), on the
//!    spec campaign augmented with the buffered corrections;
//! 3. **activate** — the new model gets the next version number, is
//!    archived through the [`crate::ModelStore`] *before* activation,
//!    and is swapped in atomically: every worker picks up version `v+1`
//!    at a batch boundary, never mid-batch;
//! 4. **rollback** — [`Refresher::rollback`] republishes any archived
//!    version bit-identically (same snapshot bytes the version was
//!    frozen with).
//!
//! # Determinism contract
//!
//! Serving a pinned version is bit-stable: version `v`'s answers never
//! change, no matter how many refresh cycles run concurrently. A
//! refreshed model is itself a pure function of `(spec campaign,
//! buffered corrections, base seed, key, version)` — its seed is
//! `derive_seed(shard_seed(base, key), version)`, so replaying the same
//! observation stream reproduces every generation bit-for-bit. The
//! `refresh_determinism` integration suite pins all of this.

use crate::buffer::{BufferLimits, Observation, ObservationBuffer, ObservationKind, PushOutcome};
use crate::catalog::TrainSpec;
use crate::server::PagedEngine;
use crate::sync::relock;
use crate::{shard_seed, ServeError, ShardKey};
use noble::wifi::WifiNoble;
use noble::Localizer;
use noble_datasets::WifiSample;
use noble_geo::Point;
use noble_nn::derive_seed;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Configuration for a [`Refresher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RefreshConfig {
    /// Bounds applied to every per-shard observation buffer.
    pub limits: BufferLimits,
}

/// What one [`Refresher::refresh`] cycle did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// The version the refreshed model was activated as.
    pub version: u64,
    /// Ground-truth corrections the retrain consumed (and discarded
    /// from the buffer).
    pub corrections_used: usize,
    /// Served fixes that were buffered alongside them (drift context;
    /// not training signal).
    pub fixes_seen: usize,
}

/// A point-in-time view of one shard's observation buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Buffered observations of either kind.
    pub observations: usize,
    /// Buffered ground-truth corrections.
    pub corrections: usize,
    /// Summed buffered bytes.
    pub bytes: usize,
    /// Served fixes evicted (FIFO) since the buffer was created.
    pub evicted_fixes: u64,
    /// Corrections evicted since the buffer was created — nonzero means
    /// refresh evidence arrived faster than [`Refresher::refresh`]
    /// consumed it.
    pub evicted_corrections: u64,
}

/// The online-refresh companion of a demand-paged [`crate::BatchServer`]
/// (see the module docs; obtain one via
/// [`crate::BatchServer::refresher`]).
///
/// Clone-free sharing: the refresher holds the same engine `Arc` the
/// server's workers do, so it stays valid for the server's lifetime and
/// multiple refreshers over one server see the same catalog (though the
/// per-shard activation lock serializes their refresh cycles anyway).
pub struct Refresher {
    engine: Arc<PagedEngine>,
    cfg: RefreshConfig,
    /// Per-shard evidence. Locked only for buffer bookkeeping — never
    /// held across training or catalog calls.
    buffers: Mutex<BTreeMap<ShardKey, ObservationBuffer>>,
}

impl std::fmt::Debug for Refresher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buffers = relock(&self.buffers);
        f.debug_struct("Refresher")
            .field("cfg", &self.cfg)
            .field("shards_buffered", &buffers.len())
            .finish_non_exhaustive()
    }
}

impl Refresher {
    pub(crate) fn new(engine: Arc<PagedEngine>, cfg: RefreshConfig) -> Self {
        Refresher {
            engine,
            cfg,
            buffers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Buffers a fix the server answered (position estimate, no ground
    /// truth). Drift context only; never training signal.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for unroutable keys,
    /// [`ServeError::FeatureDim`] when the fingerprint width does not
    /// match the shard's WiFi campaign.
    pub fn observe_fix(
        &self,
        key: ShardKey,
        rssi: Vec<f64>,
        position: Point,
    ) -> Result<PushOutcome, ServeError> {
        self.observe(key, ObservationKind::ServedFix, rssi, position)
    }

    /// Buffers a ground-truth correction — a fingerprint paired with its
    /// surveyed position. The next [`Refresher::refresh`] trains on it.
    ///
    /// # Errors
    ///
    /// Same as [`Refresher::observe_fix`].
    pub fn observe_correction(
        &self,
        key: ShardKey,
        rssi: Vec<f64>,
        position: Point,
    ) -> Result<PushOutcome, ServeError> {
        self.observe(key, ObservationKind::Correction, rssi, position)
    }

    fn observe(
        &self,
        key: ShardKey,
        kind: ObservationKind,
        rssi: Vec<f64>,
        position: Point,
    ) -> Result<PushOutcome, ServeError> {
        if !self.engine.keys.contains(&key) {
            return Err(ServeError::UnknownShard(key));
        }
        // The spec tier is immutable after start, so width validation
        // never touches a lock.
        if let Some(spec) = self.engine.catalog.spec_of(key) {
            if let TrainSpec::Wifi { campaign, .. } = spec.as_ref() {
                let expected = campaign.num_waps();
                if rssi.len() != expected {
                    return Err(ServeError::FeatureDim {
                        key,
                        expected,
                        found: rssi.len(),
                    });
                }
            }
        }
        let mut buffers = relock(&self.buffers);
        let buffer = buffers
            .entry(key)
            .or_insert_with(|| ObservationBuffer::new(self.cfg.limits));
        Ok(buffer.push(kind, rssi, position))
    }

    /// A point-in-time view of `key`'s buffer (zeroed if nothing was
    /// ever observed for the shard).
    pub fn buffer_stats(&self, key: ShardKey) -> BufferStats {
        let buffers = relock(&self.buffers);
        buffers.get(&key).map_or(BufferStats::default(), |b| {
            let (evicted_fixes, evicted_corrections) = b.evicted();
            BufferStats {
                observations: b.len(),
                corrections: b.corrections(),
                bytes: b.bytes(),
                evicted_fixes,
                evicted_corrections,
            }
        })
    }

    /// Retrains `key`'s model on its spec campaign plus every buffered
    /// correction, then activates the result as the next version (see
    /// the module docs for the swap and determinism contract). Consumed
    /// observations are discarded; corrections arriving *during* the
    /// retrain survive for the next cycle.
    ///
    /// Runs on the caller's thread — the serving path is untouched until
    /// the final atomic activation.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownShard`] for unroutable keys;
    /// [`ServeError::InvalidConfig`] when the shard has no training spec
    /// or is not a WiFi shard; propagates training and store failures
    /// (the current version keeps serving on any error).
    pub fn refresh(&self, key: ShardKey) -> Result<RefreshOutcome, ServeError> {
        if !self.engine.keys.contains(&key) {
            return Err(ServeError::UnknownShard(key));
        }
        let spec = self.engine.catalog.spec_of(key).ok_or_else(|| {
            ServeError::InvalidConfig(format!(
                "shard {key} has no registered training spec to refresh against"
            ))
        })?;
        let TrainSpec::Wifi { campaign, cfg } = spec.as_ref() else {
            return Err(ServeError::InvalidConfig(format!(
                "shard {key} is not a WiFi shard; online refresh retrains WiFi shards only"
            )));
        };
        let (corrections, fixes_seen, watermark) = {
            let buffers = relock(&self.buffers);
            buffers.get(&key).map_or((Vec::new(), 0, 0), |b| {
                let corrections: Vec<Observation> = b
                    .iter()
                    .filter(|o| o.kind == ObservationKind::Correction)
                    .cloned()
                    .collect();
                (corrections, b.len() - b.corrections(), b.logical_time())
            })
        };
        // Fine-tune = retrain a copy: the spec campaign (already shard-
        // partitioned) augmented with the corrections as fresh surveyed
        // training samples.
        let mut campaign = campaign.clone();
        for obs in &corrections {
            campaign.train.push(WifiSample {
                rssi: obs.rssi.clone(),
                building: key.building,
                floor: key.floor.unwrap_or(0),
                position: obs.position,
            });
        }
        let base = cfg.clone();
        let version = self.engine.catalog.activate(key, |version| {
            let mut shard_cfg = base.clone();
            // Version joins the seed derivation chain so every
            // generation is replayable from (base, key, version) alone.
            shard_cfg.seed = derive_seed(shard_seed(base.seed, key), version);
            let model: Box<dyn Localizer> = Box::new(WifiNoble::train(&campaign, &shard_cfg)?);
            Ok(model)
        })?;
        {
            let mut buffers = relock(&self.buffers);
            if let Some(buffer) = buffers.get_mut(&key) {
                buffer.discard_up_to(watermark);
            }
        }
        Ok(RefreshOutcome {
            version,
            corrections_used: corrections.len(),
            fixes_seen,
        })
    }

    /// Restores an archived version bit-identically (see
    /// [`crate::SharedCatalog::rollback`]). Workers pick the restored
    /// model up at their next batch boundary, exactly like a refresh.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownVersion`] when `version` was never archived
    /// for `key`; propagates store and hydration failures.
    pub fn rollback(&self, key: ShardKey, version: u64) -> Result<(), ServeError> {
        self.engine.catalog.rollback(key, version)
    }

    /// The version `key` currently serves (`0` = the offline
    /// generation).
    pub fn active_version(&self, key: ShardKey) -> u64 {
        self.engine.catalog.active_version(key)
    }

    /// Every archived version for `key`, ascending.
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn versions(&self, key: ShardKey) -> Result<Vec<u64>, ServeError> {
        self.engine.catalog.archived_versions(key)
    }
}
