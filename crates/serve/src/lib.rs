//! # noble-serve — sharded multi-site serving engine
//!
//! NObLe's pitch is localization *as a service*: WiFi fixes and IMU
//! tracks arriving continuously from many devices across many buildings.
//! This crate is the serving seam between the trained models (anything
//! implementing [`noble::Localizer`]) and that traffic:
//!
//! - [`ModelCatalog`] is the model-lifecycle tier: a capacity-bounded
//!   (count or byte [`CatalogBudget`]) LRU of resident models over a
//!   pluggable [`ModelStore`] ([`MemStore`] / checksummed atomic-file
//!   [`FsStore`]). Cold shards hydrate from stored snapshots
//!   ([`noble::hydrate`], bit-identical) or retrain on demand from a
//!   registered [`TrainSpec`]; eviction writes through to the store so
//!   a model is never lost.
//! - [`ShardedRegistry`] (now a thin façade over an unbounded catalog)
//!   partitions a campaign by building/floor [`ShardKey`], trains (or
//!   accepts) one model per shard with order-free derived seeds and
//!   bounded per-shard memory, and routes feature batches to the owning
//!   shard — an unknown key is the typed [`ServeError::UnknownShard`],
//!   never a panic. The catalog is the single source of truth for model
//!   version lineage; registry-served shards are frozen at their
//!   training-time weights.
//! - [`BatchServer`] micro-batches concurrently arriving fixes under a
//!   configurable latency budget / max batch size ([`BatchConfig`])
//!   before one stacked `localize_batch` call; per-request reply
//!   channels carry results back, [`BatchServer::shutdown`] drains
//!   gracefully, [`BatchServer::stats`] reports per-shard
//!   throughput/latency, and [`BatchServer::start_from_store`]
//!   warm-restarts straight from persisted snapshots, skipping
//!   retraining entirely. It runs in one of two disciplines:
//!   [`BatchServer::start`] keeps every shard's model and worker alive
//!   (fully resident), while [`BatchServer::start_paged`] **demand-pages
//!   shards over a shared catalog** — workers fault models in on a
//!   shard's first request and spin down when idle or when a colder
//!   shard needs their budget slot, so one process serves strictly more
//!   shards than fit under the [`CatalogBudget`]
//!   ([`BatchServer::paged_stats`] counts faults, spin-downs and drains).
//! - [`Refresher`] ([`BatchServer::refresher`], demand-paged servers
//!   only) is the online-learning tier: served fixes and ground-truth
//!   corrections accumulate in a bounded per-shard [`ObservationBuffer`]
//!   ([`BufferLimits`]), and [`Refresher::refresh`] retrains a copy of
//!   the shard model off the serving path, archives it through the
//!   [`ModelStore`] as the next version, and atomically activates it at
//!   a batch boundary — never mid-batch. Every version is archived
//!   before it serves, so [`Refresher::rollback`] restores any prior
//!   version bit-identically, and answers within a pinned version are
//!   bit-stable (pinned by the `refresh_determinism` suite).
//! - [`TrackingServer`] adds the stateful per-device layer: a
//!   [`SessionTable`] of independently locked shards holds one session
//!   per device (trajectory smoother, bounded track buffer, zone
//!   hysteresis detector), so [`TrackingClient::submit`] turns a raw fix
//!   into a smoothed [`TrackedFix`] plus committed [`ZoneEvent`]s, with
//!   away-timeout sweeps retiring silent devices off the serving path.
//!   Same observation interleaving ⇒ bit-identical tracks and identical
//!   event sequences at any shard/thread count (pinned by the
//!   `tracking_sessions` suite).
//!
//! Neither batching nor paging changes answers: the linalg substrate
//! picks its matmul kernel per output row, and snapshot round-trips /
//! key-derived retrains are exact, so served results are
//! **bit-identical** to direct `localize_batch` calls under any
//! coalescing, any thread count, and any eviction schedule (pinned by
//! this crate's `serving_parity` integration test).
//!
//! ```no_run
//! use noble_serve::{BatchConfig, BatchServer, RegistryConfig, ShardedRegistry, ShardKey};
//! use noble::wifi::WifiNobleConfig;
//! use noble_datasets::{uji_campaign, UjiConfig};
//!
//! let campaign = uji_campaign(&UjiConfig::small()).unwrap();
//! let registry = ShardedRegistry::train_wifi(
//!     &campaign,
//!     &WifiNobleConfig::small(),
//!     &RegistryConfig::default(),
//! )
//! .unwrap();
//! let server = BatchServer::start(registry, BatchConfig::default()).unwrap();
//! let client = server.client();
//! let fix = client
//!     .localize(ShardKey::building(0), vec![0.0; campaign.num_waps()])
//!     .unwrap();
//! println!("device at {fix}");
//! for (key, stats) in server.shutdown() {
//!     println!("{key}: {} fixes in {} batches", stats.requests, stats.batches);
//! }
//! ```

mod buffer;
mod catalog;
mod error;
mod refresh;
mod registry;
mod server;
mod session;
mod store;
mod sync;

pub use buffer::{BufferLimits, Observation, ObservationBuffer, ObservationKind, PushOutcome};
pub use catalog::{CatalogBudget, CatalogStats, ModelCatalog, SharedCatalog, TrainSpec};
pub use error::ServeError;
pub use refresh::{BufferStats, RefreshConfig, RefreshOutcome, Refresher};
pub use registry::{
    partition_campaign, shard_seed, RegistryConfig, ShardKey, ShardPolicy, ShardedRegistry,
};
pub use server::{
    BatchConfig, BatchServer, PagedStats, PendingFix, ServeClient, ServerStats, ShardStats,
};
pub use session::{
    DeviceId, SessionStats, SessionTable, TrackedFix, TrackingClient, TrackingServer, ZoneEvent,
    ZoneEventKind,
};
pub use store::{FsStore, MemStore, ModelStore};
