//! The online-refresh determinism contract, end to end.
//!
//! Online learning must not cost the serving stack its headline
//! guarantee: answers are a pure function of (model version, request).
//! This suite pins the four clauses of that contract:
//!
//! - **pinned-version bit-stability** — serving a given version returns
//!   bitwise-identical answers no matter how many refresh cycles run,
//!   including concurrently with the traffic;
//! - **atomic swaps at batch boundaries** — every answer produced while
//!   refreshes are in flight equals exactly one archived version's
//!   reference output (a torn mid-batch swap would match none), and one
//!   client's ordered answer stream never goes backwards in version
//!   while only activations happen;
//! - **rollback bit-parity** — restoring an archived version reproduces
//!   its answers bit-for-bit, in both directions;
//! - **restart survival** — versioned snapshots rehydrate from an
//!   `FsStore` to the active version, with the full archive intact.
//!
//! Plus property coverage for the ingest side: `ObservationBuffer`
//! never exceeds its bounds, evicts strictly oldest-first by logical
//! time, and never drops a correction while capacity remains.

use noble::wifi::WifiNobleConfig;
use noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};
use noble_geo::Point;
use noble_serve::{
    BatchConfig, BatchServer, BufferLimits, CatalogBudget, FsStore, ModelCatalog, Observation,
    ObservationBuffer, ObservationKind, PushOutcome, RefreshConfig, RegistryConfig, ServeError,
    ShardKey, ShardedRegistry,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn quick_campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.seed = 42;
    uji_campaign(&cfg).unwrap()
}

fn fast_model_cfg() -> WifiNobleConfig {
    WifiNobleConfig {
        epochs: 3,
        ..WifiNobleConfig::small()
    }
}

fn serving_cfg() -> BatchConfig {
    BatchConfig {
        max_batch: 8,
        latency_budget: Duration::from_micros(100),
        ..BatchConfig::default()
    }
}

/// A fresh store directory per test, under the cargo-managed tmp dir.
/// Wiped on handout: version lineage persists in an `FsStore`, so
/// archives left by a previous run would shift version allocation.
fn store_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("refresh-{tag}-{n}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A few held-out fingerprints to probe serving answers with.
fn probes(campaign: &WifiCampaign, n: usize) -> Vec<Vec<f64>> {
    let features = campaign.features(&campaign.test);
    (0..n.min(features.rows()))
        .map(|i| features.row(i).to_vec())
        .collect()
}

/// Ground-truth corrections for one shard, drawn from its held-out
/// split (a surveyor re-walking the building).
fn corrections_for(campaign: &WifiCampaign, key: ShardKey, n: usize) -> Vec<(Vec<f64>, Point)> {
    campaign
        .test
        .iter()
        .filter(|s| s.building == key.building && key.floor.is_none_or(|f| f == s.floor))
        .take(n)
        .map(|s| (s.rssi.clone(), s.position))
        .collect()
}

fn serve_all(client: &noble_serve::ServeClient, key: ShardKey, probes: &[Vec<f64>]) -> Vec<Point> {
    probes
        .iter()
        .map(|p| client.localize(key, p.clone()).unwrap())
        .collect()
}

#[test]
fn refresher_requires_a_paged_server() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &RegistryConfig::default())
            .unwrap();
    let server = BatchServer::start(registry, serving_cfg()).unwrap();
    assert!(matches!(
        server.refresher(RefreshConfig::default()),
        Err(ServeError::InvalidConfig(_))
    ));
    server.shutdown();
}

/// The sequential spine of the contract: versions activate in order,
/// a pinned version answers bit-identically for as long as it serves,
/// untouched shards are bystanders, and rollback restores any archived
/// generation bit-for-bit (both directions), with version numbers never
/// reused afterwards.
#[test]
fn refresh_versions_swap_atomically_and_rollback_is_bit_parity() {
    let campaign = quick_campaign();
    let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded).unwrap();
    let keys = catalog
        .register_wifi_campaign(&campaign, &fast_model_cfg(), &RegistryConfig::default())
        .unwrap();
    assert!(keys.len() >= 2, "need a refreshed shard and a bystander");
    let (key, bystander) = (keys[0], keys[1]);
    let server = BatchServer::start_paged(catalog, serving_cfg()).unwrap();
    let refresher = server.refresher(RefreshConfig::default()).unwrap();
    let client = server.client();
    let probe = probes(&campaign, 6);

    // The offline generation (version 0) serves first; serving it also
    // writes its snapshot through, making it archivable.
    let v0 = serve_all(&client, key, &probe);
    let bystander_v0 = serve_all(&client, bystander, &probe);
    assert_eq!(refresher.active_version(key), 0);
    assert_eq!(
        serve_all(&client, key, &probe),
        v0,
        "version 0 is bit-stable"
    );

    // Buffer ground truth and refresh: the worker must pick version 1
    // up at its next batch boundary.
    let corrections = corrections_for(&campaign, key, 8);
    assert!(!corrections.is_empty(), "held-out split covers the shard");
    for (rssi, position) in &corrections {
        assert_eq!(
            refresher
                .observe_correction(key, rssi.clone(), *position)
                .unwrap(),
            PushOutcome::Stored
        );
    }
    assert_eq!(refresher.buffer_stats(key).corrections, corrections.len());
    let outcome = refresher.refresh(key).unwrap();
    assert_eq!(outcome.version, 1);
    assert_eq!(outcome.corrections_used, corrections.len());
    assert_eq!(refresher.active_version(key), 1);
    assert_eq!(refresher.versions(key).unwrap(), vec![0, 1]);
    assert_eq!(
        refresher.buffer_stats(key).observations,
        0,
        "consumed corrections leave the buffer"
    );

    let v1 = serve_all(&client, key, &probe);
    assert_eq!(
        serve_all(&client, key, &probe),
        v1,
        "version 1 is bit-stable"
    );
    assert_eq!(
        server.paged_stats().unwrap().refresh_swaps,
        1,
        "the hot worker swapped exactly once, at a batch boundary"
    );

    // A refresh of one shard never perturbs another.
    assert_eq!(refresher.active_version(bystander), 0);
    assert_eq!(serve_all(&client, bystander, &probe), bystander_v0);

    // Rollback, both directions, is bit-parity with the archive.
    refresher.rollback(key, 0).unwrap();
    assert_eq!(refresher.active_version(key), 0);
    assert_eq!(serve_all(&client, key, &probe), v0);
    refresher.rollback(key, 1).unwrap();
    assert_eq!(serve_all(&client, key, &probe), v1);
    assert!(matches!(
        refresher.rollback(key, 9),
        Err(ServeError::UnknownVersion { version: 9, .. })
    ));

    // Version numbers are never reused, even after rewinding.
    refresher.rollback(key, 0).unwrap();
    let outcome = refresher.refresh(key).unwrap();
    assert_eq!(outcome.version, 2);
    assert_eq!(refresher.versions(key).unwrap(), vec![0, 1, 2]);
    server.shutdown();
}

/// Concurrent clause: clients hammer one shard while refresh cycles
/// activate new versions underneath them. Every answer produced during
/// the storm must be bitwise-equal to some archived version's reference
/// answer for that fingerprint (a mid-batch tear would match none), and
/// each client's ordered stream must never step back to an older
/// version while only activations happen.
#[test]
fn concurrent_refresh_cycles_never_tear_answers() {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 40;
    const REFRESHES: usize = 3;

    let campaign = quick_campaign();
    let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded).unwrap();
    let keys = catalog
        .register_wifi_campaign(&campaign, &fast_model_cfg(), &RegistryConfig::default())
        .unwrap();
    let key = keys[0];
    let server = BatchServer::start_paged(catalog, serving_cfg()).unwrap();
    let refresher = Arc::new(server.refresher(RefreshConfig::default()).unwrap());
    let client = server.client();
    let fingerprints: Vec<Vec<f64>> = probes(&campaign, CLIENTS);
    assert_eq!(fingerprints.len(), CLIENTS);

    // Materialize (and write through) version 0 before the storm.
    let _ = client.localize(key, fingerprints[0].clone()).unwrap();

    let answers: Vec<Vec<Point>> = std::thread::scope(|scope| {
        let workers: Vec<_> = fingerprints
            .iter()
            .map(|fp| {
                let client = server.client();
                scope.spawn(move || {
                    (0..ROUNDS)
                        .map(|_| client.localize(key, fp.clone()).unwrap())
                        .collect::<Vec<Point>>()
                })
            })
            .collect();
        // Refresh cycles ride alongside the traffic, each on distinct
        // ground truth so the generations genuinely differ.
        for cycle in 0..REFRESHES {
            for (rssi, position) in corrections_for(&campaign, key, 4 + 2 * cycle) {
                refresher.observe_correction(key, rssi, position).unwrap();
            }
            refresher.refresh(key).unwrap();
        }
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Build per-version references by rolling back through the archive.
    let versions = refresher.versions(key).unwrap();
    assert_eq!(versions, (0..=REFRESHES as u64).collect::<Vec<u64>>());
    let mut reference: Vec<Vec<Point>> = Vec::new(); // [version][client]
    for &v in &versions {
        refresher.rollback(key, v).unwrap();
        reference.push(
            fingerprints
                .iter()
                .map(|fp| client.localize(key, fp.clone()).unwrap())
                .collect(),
        );
    }

    for (t, stream) in answers.iter().enumerate() {
        let mut last_version = 0u64;
        for (i, answer) in stream.iter().enumerate() {
            let matching: Vec<u64> = versions
                .iter()
                .copied()
                .filter(|&v| reference[v as usize][t] == *answer)
                .collect();
            assert!(
                !matching.is_empty(),
                "client {t} answer {i} ({answer}) matches no archived version: \
                 a swap tore mid-batch"
            );
            // Monotone pickup: only assert when the mapping is
            // unambiguous (distinct generations may coincide on a point).
            if let [only] = matching[..] {
                assert!(
                    only >= last_version,
                    "client {t} answer {i} went back from version {last_version} to {only}"
                );
                last_version = only;
            }
        }
    }
    assert!(
        server.paged_stats().unwrap().refresh_swaps >= 1,
        "at least one batch-boundary swap happened during the storm"
    );
    server.shutdown();
}

/// Restart clause: every version survives the process. The active slot
/// rehydrates to the last activated version bit-identically, the
/// archive is intact, and rollback works across the restart.
#[test]
fn versioned_snapshots_survive_restart() {
    let campaign = quick_campaign();
    let dir = store_dir("restart");
    let probe = probes(&campaign, 5);
    let key;
    let v0;
    let v1;
    {
        let store = FsStore::open(&dir).unwrap();
        let mut catalog =
            ModelCatalog::with_store(CatalogBudget::Unbounded, Box::new(store)).unwrap();
        let keys = catalog
            .register_wifi_campaign(&campaign, &fast_model_cfg(), &RegistryConfig::default())
            .unwrap();
        key = keys[0];
        let server = BatchServer::start_paged(catalog, serving_cfg()).unwrap();
        let refresher = server.refresher(RefreshConfig::default()).unwrap();
        let client = server.client();
        v0 = serve_all(&client, key, &probe);
        for (rssi, position) in corrections_for(&campaign, key, 6) {
            refresher.observe_correction(key, rssi, position).unwrap();
        }
        assert_eq!(refresher.refresh(key).unwrap().version, 1);
        v1 = serve_all(&client, key, &probe);
        server.shutdown();
    }

    // A fresh process: the catalog is rebuilt from the store alone.
    let store = FsStore::open(&dir).unwrap();
    let catalog = ModelCatalog::with_store(CatalogBudget::Unbounded, Box::new(store)).unwrap();
    let server = BatchServer::start_paged(catalog, serving_cfg()).unwrap();
    let client = server.client();
    assert_eq!(
        serve_all(&client, key, &probe),
        v1,
        "restart rehydrates the active version bit-identically"
    );
    let refresher = server.refresher(RefreshConfig::default()).unwrap();
    assert_eq!(
        refresher.active_version(key),
        1,
        "the active version is learned from the slot's stamp on lease"
    );
    assert_eq!(refresher.versions(key).unwrap(), vec![0, 1]);
    refresher.rollback(key, 0).unwrap();
    assert_eq!(
        serve_all(&client, key, &probe),
        v0,
        "rollback across a restart is bit-parity with the old archive"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// ObservationBuffer property coverage.
// ---------------------------------------------------------------------

/// Reference cost of an observation of `width` WAPs (via the public
/// [`Observation::cost`], so the mirror cannot drift from the impl).
fn cost_of(width: usize) -> usize {
    Observation {
        kind: ObservationKind::ServedFix,
        at: 0,
        rssi: vec![0.0; width],
        position: Point::new(0.0, 0.0),
    }
    .cost()
}

mod buffer_props {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Neither bound is ever exceeded, after every single push, for
        /// arbitrary mixes of kinds and fingerprint widths.
        #[test]
        fn prop_buffer_never_exceeds_bounds(
            max_observations in 1usize..12,
            max_bytes in 64usize..512,
            pushes in proptest::collection::vec(((0u8..2).prop_map(|b| b == 1), 0usize..16), 1..100),
        ) {
            let mut buf = ObservationBuffer::new(BufferLimits { max_observations, max_bytes });
            for (i, (correction, width)) in pushes.iter().enumerate() {
                let kind = if *correction {
                    ObservationKind::Correction
                } else {
                    ObservationKind::ServedFix
                };
                buf.push(kind, vec![i as f64; *width], Point::new(0.0, 0.0));
                prop_assert!(buf.len() <= max_observations);
                prop_assert!(buf.bytes() <= max_bytes);
            }
        }

        /// The buffer behaves exactly like a reference FIFO: evictions
        /// retire the smallest logical stamps first, so the survivors
        /// are always the newest suffix of what was stored.
        #[test]
        fn prop_eviction_is_strictly_oldest_first(
            max_observations in 1usize..10,
            max_bytes in 64usize..400,
            pushes in proptest::collection::vec(((0u8..2).prop_map(|b| b == 1), 0usize..12), 1..80),
        ) {
            let mut buf = ObservationBuffer::new(BufferLimits { max_observations, max_bytes });
            let mut mirror: VecDeque<(u64, usize)> = VecDeque::new();
            let mut clock = 0u64;
            for (correction, width) in pushes {
                let kind = if correction {
                    ObservationKind::Correction
                } else {
                    ObservationKind::ServedFix
                };
                let outcome = buf.push(kind, vec![0.5; width], Point::new(0.0, 0.0));
                clock += 1;
                let cost = cost_of(width);
                if cost > max_bytes {
                    prop_assert_eq!(outcome, PushOutcome::Rejected);
                } else {
                    let mut evicted = 0usize;
                    while mirror.len() + 1 > max_observations
                        || mirror.iter().map(|(_, c)| c).sum::<usize>() + cost > max_bytes
                    {
                        // Strictly oldest-first: always the front.
                        prop_assert!(mirror.pop_front().is_some());
                        evicted += 1;
                    }
                    mirror.push_back((clock, cost));
                    let expected = if evicted == 0 {
                        PushOutcome::Stored
                    } else {
                        PushOutcome::StoredEvicting(evicted)
                    };
                    prop_assert_eq!(outcome, expected);
                }
                let stamps: Vec<u64> = buf.iter().map(|o| o.at).collect();
                let mirror_stamps: Vec<u64> = mirror.iter().map(|(at, _)| *at).collect();
                prop_assert_eq!(stamps, mirror_stamps);
                prop_assert_eq!(buf.bytes(), mirror.iter().map(|(_, c)| c).sum::<usize>());
            }
        }

        /// While capacity remains, nothing — in particular no correction
        /// — is ever lost: sizing the limits to the workload admits
        /// every observation without a single eviction.
        #[test]
        fn prop_corrections_survive_while_capacity_remains(
            pushes in proptest::collection::vec(((0u8..2).prop_map(|b| b == 1), 0usize..12), 1..60),
        ) {
            let total: usize = pushes.iter().map(|(_, w)| cost_of(*w)).sum();
            let limits = BufferLimits {
                max_observations: pushes.len(),
                max_bytes: total,
            };
            let mut buf = ObservationBuffer::new(limits);
            let corrections = pushes.iter().filter(|(c, _)| *c).count();
            for (correction, width) in pushes.iter() {
                let kind = if *correction {
                    ObservationKind::Correction
                } else {
                    ObservationKind::ServedFix
                };
                let outcome = buf.push(kind, vec![1.0; *width], Point::new(0.0, 0.0));
                prop_assert_eq!(outcome, PushOutcome::Stored);
            }
            prop_assert_eq!(buf.len(), pushes.len());
            prop_assert_eq!(buf.corrections(), corrections);
            prop_assert_eq!(buf.evicted(), (0, 0));
        }
    }
}
