//! Serving parity and routing guarantees.
//!
//! The load-bearing test is `served_results_bit_identical_to_direct`: any
//! batch coalescing, any thread count, the `BatchServer` must return the
//! exact bits a direct `Localizer::localize_batch` call produces. CI
//! greps for this suite by name — do not rename it casually.

use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::Localizer;
use noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};
use noble_geo::Point;
use noble_serve::{
    partition_campaign, shard_seed, BatchConfig, BatchServer, FsStore, MemStore, RegistryConfig,
    ServeError, ShardKey, ShardPolicy, ShardedRegistry,
};
use std::time::Duration;

fn quick_campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.seed = 42;
    uji_campaign(&cfg).unwrap()
}

fn fast_model_cfg() -> WifiNobleConfig {
    WifiNobleConfig {
        epochs: 4,
        ..WifiNobleConfig::small()
    }
}

fn registry_cfg() -> RegistryConfig {
    RegistryConfig {
        policy: ShardPolicy::PerBuilding,
        max_train_samples_per_shard: None,
        parallel_training: true,
    }
}

/// Per-shard reference answers computed by the direct (serverless) path.
fn direct_reference(campaign: &WifiCampaign) -> Vec<(ShardKey, Vec<Vec<f64>>, Vec<Point>)> {
    let model_cfg = fast_model_cfg();
    partition_campaign(campaign, |s| ShardPolicy::PerBuilding.key_of(s), None)
        .into_iter()
        .map(|(key, shard)| {
            let mut cfg = model_cfg.clone();
            cfg.seed = shard_seed(model_cfg.seed, key);
            let mut model = WifiNoble::train(&shard, &cfg).unwrap();
            let features = shard.features(&shard.test);
            let rows: Vec<Vec<f64>> = (0..features.rows())
                .map(|i| features.row(i).to_vec())
                .collect();
            let expected = Localizer::localize_batch(&mut model, &features).unwrap();
            (key, rows, expected)
        })
        .collect()
}

#[test]
fn served_results_bit_identical_to_direct() {
    let campaign = quick_campaign();
    let reference = direct_reference(&campaign);
    assert!(reference.len() >= 2, "expected a multi-building campaign");

    // Sweep coalescing regimes: no batching, small batches under a zero
    // budget (drain-the-backlog mode), and wide batches under a real
    // budget — all with several client threads submitting concurrently.
    // The same trained shards serve every regime (handed back through
    // `shutdown_with_registry`), so any cross-regime difference is the
    // server's fault, not training noise.
    let mut registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    for (max_batch, budget_us) in [(1usize, 0u64), (4, 0), (64, 300), (256, 1000)] {
        let server = BatchServer::start(
            registry,
            BatchConfig {
                max_batch,
                latency_budget: Duration::from_micros(budget_us),
            },
        )
        .unwrap();

        std::thread::scope(|s| {
            for (key, rows, expected) in &reference {
                let client = server.client();
                s.spawn(move || {
                    // Pipeline every fix before waiting so the worker has
                    // a real backlog to coalesce.
                    let pending: Vec<_> = rows
                        .iter()
                        .map(|row| client.submit(*key, row.clone()).unwrap())
                        .collect();
                    for (i, p) in pending.into_iter().enumerate() {
                        let got = p.wait().unwrap();
                        assert_eq!(
                            got, expected[i],
                            "{key} fix {i} differs (max_batch={max_batch}, budget={budget_us}us)"
                        );
                    }
                });
            }
        });

        let (stats, recovered) = server.shutdown_with_registry();
        registry = recovered;
        let total: u64 = stats.iter().map(|(_, s)| s.requests).sum();
        let expected_total: u64 = reference.iter().map(|(_, r, _)| r.len() as u64).sum();
        assert_eq!(total, expected_total);
        for (_, s) in &stats {
            assert!(s.batches >= 1);
            assert!(s.max_batch <= max_batch);
            assert_eq!(s.errors, 0);
        }
    }
    assert_eq!(registry.len(), reference.len(), "shards survive restarts");
}

#[test]
fn warm_restart_from_store_bit_identical_to_fresh_registry() {
    // The model-lifecycle acceptance bar: train once, save every shard
    // model, restart serving purely from the store — answers must be the
    // exact bits the freshly trained registry serves.
    let campaign = quick_campaign();
    let reference = direct_reference(&campaign);
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();

    // Through both store backends: in-memory and on-disk (checksummed
    // files under the cargo tmp dir).
    let fs_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("warm-restart-store");
    let mem = MemStore::new();
    let fs = FsStore::open(&fs_dir).unwrap();
    assert_eq!(registry.save_to(&mem).unwrap(), reference.len());
    assert_eq!(registry.save_to(&fs).unwrap(), reference.len());
    drop(registry); // the trained models are gone; only snapshots remain

    for store in [&mem as &dyn noble_serve::ModelStore, &fs] {
        let server = BatchServer::start_from_store(
            store,
            BatchConfig {
                max_batch: 64,
                latency_budget: Duration::from_micros(300),
            },
        )
        .unwrap();
        assert_eq!(server.keys().len(), reference.len());
        std::thread::scope(|s| {
            for (key, rows, expected) in &reference {
                let client = server.client();
                s.spawn(move || {
                    let pending: Vec<_> = rows
                        .iter()
                        .map(|row| client.submit(*key, row.clone()).unwrap())
                        .collect();
                    for (i, p) in pending.into_iter().enumerate() {
                        assert_eq!(
                            p.wait().unwrap(),
                            expected[i],
                            "{key} fix {i} diverged after warm restart"
                        );
                    }
                });
            }
        });
        server.shutdown();
    }
}

#[test]
fn unknown_shard_is_typed_error_not_panic() {
    let campaign = quick_campaign();
    let mut registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let bogus = ShardKey::building_floor(99, 7);
    let features = campaign.features(&campaign.test[..1]);

    assert!(matches!(
        registry.localize(bogus, &features),
        Err(ServeError::UnknownShard(k)) if k == bogus
    ));
    assert!(matches!(
        registry.get_mut(bogus),
        Err(ServeError::UnknownShard(_))
    ));

    let server = BatchServer::start(registry, BatchConfig::default()).unwrap();
    let client = server.client();
    assert!(matches!(
        client.submit(bogus, features.row(0).to_vec()),
        Err(ServeError::UnknownShard(_))
    ));
    server.shutdown();
}

#[test]
fn width_mismatch_is_a_per_request_error() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let key = registry.keys()[0];
    let server = BatchServer::start(registry, BatchConfig::default()).unwrap();
    let client = server.client();

    let good = client.submit(key, vec![0.0; campaign.num_waps()]).unwrap();
    let bad = client.submit(key, vec![0.0; 3]).unwrap();
    assert!(good.wait().is_ok());
    assert!(matches!(
        bad.wait(),
        Err(ServeError::FeatureDim {
            expected,
            found: 3,
            ..
        }) if expected == campaign.num_waps()
    ));
    let stats = server.shutdown();
    let shard = stats.iter().find(|(k, _)| *k == key).unwrap();
    assert_eq!(shard.1.errors, 1);
}

#[test]
fn graceful_shutdown_drains_queued_fixes_then_rejects() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let key = registry.keys()[0];
    let server = BatchServer::start(
        registry,
        BatchConfig {
            max_batch: 8,
            latency_budget: Duration::from_micros(200),
        },
    )
    .unwrap();
    let client = server.client();

    let pending: Vec<_> = (0..40)
        .map(|_| client.submit(key, vec![0.0; campaign.num_waps()]).unwrap())
        .collect();
    // Shutdown queues behind the 40 fixes; every one must still be served.
    let stats = server.shutdown();
    for p in pending {
        assert!(p.wait().is_ok(), "queued fix dropped during shutdown");
    }
    let shard = stats.iter().find(|(k, _)| *k == key).unwrap();
    assert_eq!(shard.1.requests, 40);
    assert!(shard.1.mean_batch() > 1.0, "no coalescing happened at all");

    assert!(matches!(
        client.submit(key, vec![0.0; campaign.num_waps()]),
        Err(ServeError::ShuttingDown)
    ));
}

#[test]
fn concurrent_and_serial_shard_training_are_bit_identical() {
    // Two shards training at once (scoped threads inside the registry)
    // must produce the same models as training one-by-one: per-shard
    // seeds derive from the shard key, and nothing shares RNG state.
    let campaign = quick_campaign();
    let mut parallel = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            parallel_training: true,
            ..registry_cfg()
        },
    )
    .unwrap();
    let mut serial = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            parallel_training: false,
            ..registry_cfg()
        },
    )
    .unwrap();
    assert_eq!(parallel.keys(), serial.keys());
    let features = campaign.features(&campaign.test);
    for key in parallel.keys() {
        let a = parallel.localize(key, &features).unwrap();
        let b = serial.localize(key, &features).unwrap();
        assert_eq!(a, b, "shard {key} diverged between parallel and serial");
    }
}

#[test]
fn registry_bounds_per_shard_memory_and_labels_sites() {
    let campaign = quick_campaign();
    let cap = 20;
    let parts = partition_campaign(
        &campaign,
        |s| ShardPolicy::PerBuildingFloor.key_of(s),
        Some(cap),
    );
    assert!(parts.len() > 3, "building-floor sharding should fan out");
    for shard in parts.values() {
        assert!(shard.train.len() <= cap);
    }

    let registry = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            max_train_samples_per_shard: Some(64),
            ..registry_cfg()
        },
    )
    .unwrap();
    for (info, key) in registry.info().iter().zip(registry.keys()) {
        assert_eq!(info.site, key.to_string());
        assert_eq!(info.model, "wifi-noble");
        assert_eq!(info.feature_dim, campaign.num_waps());
        assert!(info.class_count > 0);
    }
}

#[test]
fn empty_campaign_yields_no_shards() {
    let mut campaign = quick_campaign();
    campaign.train.clear();
    assert!(matches!(
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()),
        Err(ServeError::NoShards)
    ));
    assert!(matches!(
        BatchServer::start(ShardedRegistry::new(), BatchConfig::default()),
        Err(ServeError::NoShards)
    ));
}
