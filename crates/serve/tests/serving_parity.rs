//! Serving parity and routing guarantees.
//!
//! The load-bearing test is `served_results_bit_identical_to_direct`: any
//! batch coalescing, any thread count, the `BatchServer` must return the
//! exact bits a direct `Localizer::localize_batch` call produces. CI
//! greps for this suite by name — do not rename it casually.

use noble::wifi::{KnnFingerprint, WifiNoble, WifiNobleConfig};
use noble::Localizer;
use noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_serve::{
    partition_campaign, shard_seed, BatchConfig, BatchServer, CatalogBudget, FsStore, MemStore,
    ModelCatalog, RegistryConfig, ServeError, ShardKey, ShardPolicy, ShardedRegistry,
};
use std::time::Duration;

fn quick_campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.seed = 42;
    uji_campaign(&cfg).unwrap()
}

fn fast_model_cfg() -> WifiNobleConfig {
    WifiNobleConfig {
        epochs: 4,
        ..WifiNobleConfig::small()
    }
}

fn registry_cfg() -> RegistryConfig {
    RegistryConfig {
        policy: ShardPolicy::PerBuilding,
        max_train_samples_per_shard: None,
        parallel_training: true,
    }
}

/// Per-shard reference answers computed by the direct (serverless) path.
fn direct_reference(campaign: &WifiCampaign) -> Vec<(ShardKey, Vec<Vec<f64>>, Vec<Point>)> {
    let model_cfg = fast_model_cfg();
    partition_campaign(campaign, |s| ShardPolicy::PerBuilding.key_of(s), None)
        .into_iter()
        .map(|(key, shard)| {
            let mut cfg = model_cfg.clone();
            cfg.seed = shard_seed(model_cfg.seed, key);
            let mut model = WifiNoble::train(&shard, &cfg).unwrap();
            let features = shard.features(&shard.test);
            let rows: Vec<Vec<f64>> = (0..features.rows())
                .map(|i| features.row(i).to_vec())
                .collect();
            let expected = Localizer::localize_batch(&mut model, &features).unwrap();
            (key, rows, expected)
        })
        .collect()
}

#[test]
fn served_results_bit_identical_to_direct() {
    let campaign = quick_campaign();
    let reference = direct_reference(&campaign);
    assert!(reference.len() >= 2, "expected a multi-building campaign");

    // Sweep coalescing regimes: no batching, small batches under a zero
    // budget (drain-the-backlog mode), and wide batches under a real
    // budget — all with several client threads submitting concurrently.
    // The same trained shards serve every regime (handed back through
    // `shutdown_with_registry`), so any cross-regime difference is the
    // server's fault, not training noise.
    let mut registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    for (max_batch, budget_us) in [(1usize, 0u64), (4, 0), (64, 300), (256, 1000)] {
        let server = BatchServer::start(
            registry,
            BatchConfig {
                max_batch,
                latency_budget: Duration::from_micros(budget_us),
                idle_ttl: None,
                ..BatchConfig::default()
            },
        )
        .unwrap();

        std::thread::scope(|s| {
            for (key, rows, expected) in &reference {
                let client = server.client();
                s.spawn(move || {
                    // Pipeline every fix before waiting so the worker has
                    // a real backlog to coalesce.
                    let pending: Vec<_> = rows
                        .iter()
                        .map(|row| client.submit(*key, row.clone()).unwrap())
                        .collect();
                    for (i, p) in pending.into_iter().enumerate() {
                        let got = p.wait().unwrap();
                        assert_eq!(
                            got, expected[i],
                            "{key} fix {i} differs (max_batch={max_batch}, budget={budget_us}us)"
                        );
                    }
                });
            }
        });

        let (stats, recovered) = server.shutdown_with_registry();
        registry = recovered;
        let total: u64 = stats.iter().map(|(_, s)| s.requests).sum();
        let expected_total: u64 = reference.iter().map(|(_, r, _)| r.len() as u64).sum();
        assert_eq!(total, expected_total);
        for (_, s) in &stats {
            assert!(s.batches >= 1);
            assert!(s.max_batch <= max_batch);
            assert_eq!(s.errors, 0);
        }
    }
    assert_eq!(registry.len(), reference.len(), "shards survive restarts");
}

#[test]
fn warm_restart_from_store_bit_identical_to_fresh_registry() {
    // The model-lifecycle acceptance bar: train once, save every shard
    // model, restart serving purely from the store — answers must be the
    // exact bits the freshly trained registry serves.
    let campaign = quick_campaign();
    let reference = direct_reference(&campaign);
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();

    // Through both store backends: in-memory and on-disk (checksummed
    // files under the cargo tmp dir).
    let fs_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("warm-restart-store");
    let mem = MemStore::new();
    let fs = FsStore::open(&fs_dir).unwrap();
    assert_eq!(registry.save_to(&mem).unwrap(), reference.len());
    assert_eq!(registry.save_to(&fs).unwrap(), reference.len());
    drop(registry); // the trained models are gone; only snapshots remain

    for store in [&mem as &dyn noble_serve::ModelStore, &fs] {
        let server = BatchServer::start_from_store(
            store,
            BatchConfig {
                max_batch: 64,
                latency_budget: Duration::from_micros(300),
                idle_ttl: None,
                ..BatchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(server.keys().len(), reference.len());
        std::thread::scope(|s| {
            for (key, rows, expected) in &reference {
                let client = server.client();
                s.spawn(move || {
                    let pending: Vec<_> = rows
                        .iter()
                        .map(|row| client.submit(*key, row.clone()).unwrap())
                        .collect();
                    for (i, p) in pending.into_iter().enumerate() {
                        assert_eq!(
                            p.wait().unwrap(),
                            expected[i],
                            "{key} fix {i} diverged after warm restart"
                        );
                    }
                });
            }
        });
        server.shutdown();
    }
}

/// The demand-paged acceptance bar (CI greps for this test by name): a
/// server whose catalog budget is far below the shard count — so
/// interleaved traffic keeps forcing evict-then-refault cycles — must
/// return the exact bits the fully-resident server returns, while never
/// holding more models than the budget allows.
#[test]
fn oversubscribed_paged_server_bit_identical_to_fully_resident() {
    let campaign = quick_campaign();
    let shard_count = 6usize;
    let budget = 2usize;
    let features = campaign.features(&campaign.test);
    let probe_rows: Vec<Vec<f64>> = (0..8.min(features.rows()))
        .map(|i| features.row(i).to_vec())
        .collect();

    // Per-shard reference answers from the direct, serverless path (kNN
    // fits are deterministic, so refitting reproduces the same model).
    let reference: Vec<(ShardKey, Vec<Point>)> = (0..shard_count)
        .map(|i| {
            let mut model = KnnFingerprint::fit(&campaign, i + 1).unwrap();
            let probe = Matrix::from_rows(&probe_rows).unwrap();
            let expected = Localizer::localize_batch(&mut model, &probe).unwrap();
            (ShardKey::building(i), expected)
        })
        .collect();

    // Fully-resident control server: every model alive on its own worker.
    let mut resident_registry = ShardedRegistry::new();
    for i in 0..shard_count {
        resident_registry.insert(
            ShardKey::building(i),
            Box::new(KnnFingerprint::fit(&campaign, i + 1).unwrap()),
        );
    }
    let resident_server = BatchServer::start(
        resident_registry,
        BatchConfig {
            max_batch: 16,
            latency_budget: Duration::from_micros(200),
            idle_ttl: None,
            ..BatchConfig::default()
        },
    )
    .unwrap();

    // Demand-paged server: same models, but only `budget` may be live.
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(budget)).unwrap();
    for i in 0..shard_count {
        catalog
            .insert(
                ShardKey::building(i),
                Box::new(KnnFingerprint::fit(&campaign, i + 1).unwrap()),
            )
            .unwrap();
    }
    let paged_server = BatchServer::start_paged(
        catalog,
        BatchConfig {
            max_batch: 16,
            latency_budget: Duration::from_micros(200),
            idle_ttl: None,
            ..BatchConfig::default()
        },
    )
    .unwrap();
    assert_eq!(paged_server.keys().len(), shard_count);

    // Interleaved traffic in a rotating shard order: with budget 2 over 6
    // shards every round evicts and refaults, and concurrent clients make
    // shards warm in parallel.
    for round in 0..3 {
        std::thread::scope(|s| {
            for (i, (key, expected)) in reference.iter().enumerate() {
                let order = (i + round) % shard_count; // rotate who warms first
                let paged = paged_server.client();
                let control = resident_server.client();
                let rows = &probe_rows;
                s.spawn(move || {
                    std::thread::sleep(Duration::from_micros(50 * order as u64));
                    let pending: Vec<_> = rows
                        .iter()
                        .map(|row| paged.submit(*key, row.clone()).unwrap())
                        .collect();
                    let control_pending: Vec<_> = rows
                        .iter()
                        .map(|row| control.submit(*key, row.clone()).unwrap())
                        .collect();
                    for (j, (p, c)) in pending.into_iter().zip(control_pending).enumerate() {
                        let got = p.wait().unwrap();
                        assert_eq!(
                            got, expected[j],
                            "paged {key} fix {j} diverged from direct (round {round})"
                        );
                        assert_eq!(
                            got,
                            c.wait().unwrap(),
                            "paged {key} fix {j} diverged from resident server"
                        );
                    }
                });
            }
        });
        let paged = paged_server.paged_stats().expect("paged server");
        assert!(
            paged.hot_shards <= budget,
            "round {round}: {} workers hold models with budget {budget}",
            paged.hot_shards
        );
    }

    let paged = paged_server.paged_stats().expect("paged server");
    assert!(
        paged.faults as usize > shard_count,
        "only {} faults over 3 rounds of 6 shards under budget 2 — nothing refaulted",
        paged.faults
    );
    assert!(paged.drains > 0, "budget pressure never drained a worker");
    assert!(paged.parked_requests > 0, "no request ever parked");
    assert!(paged.catalog.hydrations > 0, "refaults must hydrate");
    assert_eq!(
        paged.catalog.retrains, 0,
        "snapshots must obviate retraining"
    );

    resident_server.shutdown();
    let (stats, catalog) = paged_server.shutdown_with_catalog().unwrap();
    let total: u64 = stats.iter().map(|(_, s)| s.requests).sum();
    assert_eq!(total as usize, 3 * shard_count * probe_rows.len());
    for (_, s) in &stats {
        assert_eq!(s.errors, 0);
    }
    // The handed-back catalog still serves every shard and respects the
    // budget again.
    assert_eq!(catalog.keys().len(), shard_count);
    assert!(catalog.resident_len() <= budget);
}

/// Idle shards spin their worker down (releasing the model through the
/// store) and later traffic re-warms them with bit-identical answers.
#[test]
fn idle_shards_spin_down_and_rewarm_bit_identically() {
    let campaign = quick_campaign();
    let features = campaign.features(&campaign.test);
    let probe: Vec<Vec<f64>> = (0..4.min(features.rows()))
        .map(|i| features.row(i).to_vec())
        .collect();
    let keys = [ShardKey::building(0), ShardKey::building(1)];

    let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded).unwrap();
    for (i, key) in keys.iter().enumerate() {
        catalog
            .insert(
                *key,
                Box::new(KnnFingerprint::fit(&campaign, i + 2).unwrap()),
            )
            .unwrap();
    }
    let server = BatchServer::start_paged(
        catalog,
        BatchConfig {
            max_batch: 8,
            latency_budget: Duration::from_micros(100),
            idle_ttl: Some(Duration::from_millis(15)),
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    let first: Vec<Vec<Point>> = keys
        .iter()
        .map(|key| {
            probe
                .iter()
                .map(|row| client.localize(*key, row.clone()).unwrap())
                .collect()
        })
        .collect();

    // Wait for the idle TTL to retire both workers (bounded poll, not a
    // bare sleep, so a slow CI box cannot flake this).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let paged = server.paged_stats().expect("paged server");
        if paged.idle_spin_downs >= 2 && paged.hot_shards == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "workers never spun down: {paged:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Re-warm: answers must be the exact bits from before the spin-down.
    for (key, expected) in keys.iter().zip(&first) {
        let again: Vec<Point> = probe
            .iter()
            .map(|row| client.localize(*key, row.clone()).unwrap())
            .collect();
        assert_eq!(&again, expected, "{key} diverged across spin-down/rewarm");
    }
    let paged = server.paged_stats().expect("paged server");
    assert!(paged.faults >= 4, "rewarm must fault the shards back in");
    assert!(
        paged.catalog.hydrations >= 2,
        "rewarm must hydrate from the store"
    );
    server.shutdown();
}

/// Reduced-precision serving: lowered shards stay inside their tier's
/// accuracy gate, the default config still serves the exact tier
/// bit-identically, and demand-paged write-through persists the exact
/// f64 state even while shards serve lowered. CI greps for this test by
/// name — do not rename it casually.
#[test]
fn lowered_precision_serving_is_gated_and_writes_back_exact() {
    let campaign = quick_campaign();
    let reference = direct_reference(&campaign);

    // Resident sweep over the tiers, re-using the same trained shards.
    let mut registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    for precision in [
        noble::InferencePrecision::Exact,
        noble::InferencePrecision::F32,
        noble::InferencePrecision::Int8,
    ] {
        let server = BatchServer::start(
            registry,
            BatchConfig {
                max_batch: 32,
                latency_budget: Duration::from_micros(200),
                precision,
                ..BatchConfig::default()
            },
        )
        .unwrap();
        let client = server.client();
        for (key, rows, expected) in &reference {
            let got: Vec<Point> = rows
                .iter()
                .map(|row| client.localize(*key, row.clone()).unwrap())
                .collect();
            match precision {
                noble::InferencePrecision::Exact => {
                    assert_eq!(&got, expected, "{key}: exact tier must stay bit-identical");
                }
                noble::InferencePrecision::F32 => {
                    for (g, e) in got.iter().zip(expected) {
                        assert!(
                            g.distance(*e) <= 1e-4,
                            "{key}: f32 served fix {g} drifted from exact {e}"
                        );
                    }
                }
                noble::InferencePrecision::Int8 => {
                    let hits = got.iter().zip(expected).filter(|(g, e)| g == e).count();
                    assert!(
                        hits as f64 >= 0.9 * expected.len() as f64,
                        "{key}: int8 matched only {hits}/{} exact fixes",
                        expected.len()
                    );
                }
            }
        }
        let (_, recovered) = server.shutdown_with_registry();
        registry = recovered;
    }

    // Demand-paged under heavy eviction pressure while serving int8:
    // drains write models back through the store, and that write-through
    // must carry the exact f64 state (the lowered twin's snapshot is its
    // progenitor's), so a later exact hydrate is bit-identical.
    let model_cfg = fast_model_cfg();
    let shards = partition_campaign(&campaign, |s| ShardPolicy::PerBuilding.key_of(s), None);
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(1)).unwrap();
    for (key, _, _) in &reference {
        let mut cfg = model_cfg.clone();
        cfg.seed = shard_seed(model_cfg.seed, *key);
        let model = WifiNoble::train(&shards[key], &cfg).unwrap();
        catalog.insert(*key, Box::new(model)).unwrap();
    }
    let paged = BatchServer::start_paged(
        catalog,
        BatchConfig {
            max_batch: 32,
            latency_budget: Duration::from_micros(200),
            precision: noble::InferencePrecision::Int8,
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let client = paged.client();
    for round in 0..2 {
        for (key, rows, expected) in &reference {
            let got: Vec<Point> = rows
                .iter()
                .map(|row| client.localize(*key, row.clone()).unwrap())
                .collect();
            let hits = got.iter().zip(expected).filter(|(g, e)| g == e).count();
            assert!(
                hits as f64 >= 0.9 * expected.len() as f64,
                "{key}: paged int8 matched only {hits}/{} (round {round})",
                expected.len()
            );
        }
    }
    let stats = paged.paged_stats().expect("paged server");
    assert!(stats.drains > 0, "budget 1 over many shards must drain");

    // Lowered twins never park: every model went back through the store
    // as an exact f64 snapshot, so the handed-back catalog hydrates and
    // serves the exact tier bit-identically.
    let (_, mut catalog) = paged.shutdown_with_catalog().unwrap();
    assert_eq!(
        catalog.resident_len(),
        0,
        "lowered twins must not stay resident in the returned catalog"
    );
    for (key, rows, expected) in &reference {
        let features = Matrix::from_rows(rows).unwrap();
        let got = catalog.localize(*key, &features).unwrap();
        assert_eq!(
            &got, expected,
            "{key}: write-through lost exact f64 state while serving int8"
        );
    }
}

#[test]
fn unknown_shard_is_typed_error_not_panic() {
    let campaign = quick_campaign();
    let mut registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let bogus = ShardKey::building_floor(99, 7);
    let features = campaign.features(&campaign.test[..1]);

    assert!(matches!(
        registry.localize(bogus, &features),
        Err(ServeError::UnknownShard(k)) if k == bogus
    ));
    assert!(matches!(
        registry.get_mut(bogus),
        Err(ServeError::UnknownShard(_))
    ));

    let server = BatchServer::start(registry, BatchConfig::default()).unwrap();
    let client = server.client();
    assert!(matches!(
        client.submit(bogus, features.row(0).to_vec()),
        Err(ServeError::UnknownShard(_))
    ));
    server.shutdown();
}

#[test]
fn width_mismatch_is_a_per_request_error() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let key = registry.keys()[0];
    let server = BatchServer::start(registry, BatchConfig::default()).unwrap();
    let client = server.client();

    let good = client.submit(key, vec![0.0; campaign.num_waps()]).unwrap();
    let bad = client.submit(key, vec![0.0; 3]).unwrap();
    assert!(good.wait().is_ok());
    assert!(matches!(
        bad.wait(),
        Err(ServeError::FeatureDim {
            expected,
            found: 3,
            ..
        }) if expected == campaign.num_waps()
    ));
    let stats = server.shutdown();
    let shard = stats.iter().find(|(k, _)| *k == key).unwrap();
    assert_eq!(shard.1.errors, 1);
}

#[test]
fn graceful_shutdown_drains_queued_fixes_then_rejects() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let key = registry.keys()[0];
    let server = BatchServer::start(
        registry,
        BatchConfig {
            max_batch: 8,
            latency_budget: Duration::from_micros(200),
            idle_ttl: None,
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    let pending: Vec<_> = (0..40)
        .map(|_| client.submit(key, vec![0.0; campaign.num_waps()]).unwrap())
        .collect();
    // Shutdown queues behind the 40 fixes; every one must still be served.
    let stats = server.shutdown();
    for p in pending {
        assert!(p.wait().is_ok(), "queued fix dropped during shutdown");
    }
    let shard = stats.iter().find(|(k, _)| *k == key).unwrap();
    assert_eq!(shard.1.requests, 40);
    assert!(shard.1.mean_batch() > 1.0, "no coalescing happened at all");

    assert!(matches!(
        client.submit(key, vec![0.0; campaign.num_waps()]),
        Err(ServeError::ShuttingDown)
    ));
}

#[test]
fn concurrent_and_serial_shard_training_are_bit_identical() {
    // Two shards training at once (scoped threads inside the registry)
    // must produce the same models as training one-by-one: per-shard
    // seeds derive from the shard key, and nothing shares RNG state.
    let campaign = quick_campaign();
    let mut parallel = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            parallel_training: true,
            ..registry_cfg()
        },
    )
    .unwrap();
    let mut serial = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            parallel_training: false,
            ..registry_cfg()
        },
    )
    .unwrap();
    assert_eq!(parallel.keys(), serial.keys());
    let features = campaign.features(&campaign.test);
    for key in parallel.keys() {
        let a = parallel.localize(key, &features).unwrap();
        let b = serial.localize(key, &features).unwrap();
        assert_eq!(a, b, "shard {key} diverged between parallel and serial");
    }
}

#[test]
fn registry_bounds_per_shard_memory_and_labels_sites() {
    let campaign = quick_campaign();
    let cap = 20;
    let parts = partition_campaign(
        &campaign,
        |s| ShardPolicy::PerBuildingFloor.key_of(s),
        Some(cap),
    );
    assert!(parts.len() > 3, "building-floor sharding should fan out");
    for shard in parts.values() {
        assert!(shard.train.len() <= cap);
    }

    let registry = ShardedRegistry::train_wifi(
        &campaign,
        &fast_model_cfg(),
        &RegistryConfig {
            max_train_samples_per_shard: Some(64),
            ..registry_cfg()
        },
    )
    .unwrap();
    for (info, key) in registry.info().iter().zip(registry.keys()) {
        assert_eq!(info.site, key.to_string());
        assert_eq!(info.model, "wifi-noble");
        assert_eq!(info.feature_dim, campaign.num_waps());
        assert!(info.class_count > 0);
    }
}

#[test]
fn empty_campaign_yields_no_shards() {
    let mut campaign = quick_campaign();
    campaign.train.clear();
    assert!(matches!(
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()),
        Err(ServeError::NoShards)
    ));
    assert!(matches!(
        BatchServer::start(ShardedRegistry::new(), BatchConfig::default()),
        Err(ServeError::NoShards)
    ));
}
