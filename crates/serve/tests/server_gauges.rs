//! Queue-depth / in-flight gauges and typed shutdown rejections.
//!
//! A `GatedLocalizer` blocks inside `localize_batch` until the test
//! releases it, which freezes the server mid-request: gauge values are
//! then exact, not sampled. The same gate pins the two shutdown
//! contracts: a request parked behind a `Shutdown` marker (static) or
//! parked in a warming queue the shutdown strands (paged) is answered
//! with the typed `ServeError::ShuttingDown`, never a dropped reply.

use noble::wifi::KnnFingerprint;
use noble::{Localizer, LocalizerInfo, NobleError};
use noble_datasets::{uji_campaign, UjiConfig};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_serve::{
    BatchConfig, BatchServer, CatalogBudget, ModelCatalog, ServeError, ServerStats, ShardKey,
    ShardedRegistry,
};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// Blocks in `localize_batch` until the test sends a token; announces
/// each entry so tests know exactly when the worker is frozen.
struct GatedLocalizer {
    dim: usize,
    entered: Sender<()>,
    gate: Receiver<()>,
    out: Point,
}

impl Localizer for GatedLocalizer {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "gated-test",
            site: "default".into(),
            feature_dim: self.dim,
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        let _ = self.entered.send(());
        let _ = self.gate.recv();
        Ok(vec![self.out; features.rows()])
    }
}

fn gated_registry() -> (ShardedRegistry, Sender<()>, Receiver<()>) {
    let (gate_tx, gate_rx) = std::sync::mpsc::channel();
    let (entered_tx, entered_rx) = std::sync::mpsc::channel();
    let mut registry = ShardedRegistry::new();
    registry.insert(
        ShardKey::building(0),
        Box::new(GatedLocalizer {
            dim: 4,
            entered: entered_tx,
            gate: gate_rx,
            out: Point::new(3.0, 4.0),
        }),
    );
    (registry, gate_tx, entered_rx)
}

fn one_by_one() -> BatchConfig {
    BatchConfig {
        max_batch: 1,
        latency_budget: Duration::ZERO,
        ..BatchConfig::default()
    }
}

/// With the worker frozen inside a batch, the gauges read exactly:
/// everything submitted is in flight, everything not yet dequeued is
/// queued — and both settle back to zero once the replies land.
#[test]
fn gauges_track_queued_and_in_flight_exactly() {
    let (registry, gate, entered) = gated_registry();
    let server = BatchServer::start(registry, one_by_one()).expect("server starts");
    let client = server.client();

    let pendings: Vec<_> = (0..3)
        .map(|_| {
            client
                .submit(ShardKey::building(0), vec![0.5; 4])
                .expect("submit")
        })
        .collect();
    entered
        .recv_timeout(Duration::from_secs(10))
        .expect("worker reaches the model");

    // Worker frozen on request 1: requests 2 and 3 still queued, all
    // three submitted-but-unreplied.
    assert_eq!(
        server.server_stats(),
        ServerStats {
            queue_depth: 2,
            in_flight: 3,
            shards: 1,
        }
    );
    let per_shard = server.stats();
    assert_eq!(per_shard.len(), 1);
    assert_eq!(per_shard[0].1.queue_depth, 2);
    assert_eq!(per_shard[0].1.in_flight, 3);

    for _ in 0..3 {
        gate.send(()).expect("release batch");
    }
    for pending in pendings {
        let point = pending.wait().expect("fix served");
        assert_eq!((point.x, point.y), (3.0, 4.0));
    }
    // The gauge contract: a request's contribution is released before
    // its reply is sent, so replies in hand mean gauges at zero.
    assert_eq!(
        server.server_stats(),
        ServerStats {
            queue_depth: 0,
            in_flight: 0,
            shards: 1,
        }
    );
    server.shutdown();
}

/// A fix that lands behind the `Shutdown` marker in a static worker's
/// queue is answered with the typed shutting-down error, not a dropped
/// reply channel.
#[test]
fn static_shutdown_answers_fixes_parked_behind_the_marker() {
    let (registry, gate, entered) = gated_registry();
    let server = BatchServer::start(registry, one_by_one()).expect("server starts");
    let client = server.client();

    let p0 = client
        .submit(ShardKey::building(0), vec![0.5; 4])
        .expect("submit");
    entered
        .recv_timeout(Duration::from_secs(10))
        .expect("worker reaches the model");

    // Shutdown queues its marker while the worker is frozen...
    let stopper = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));

    // ...so this fix lands *behind* the marker (or is refused at
    // submit, if the race resolves the other way — both are typed).
    let late = client.submit(ShardKey::building(0), vec![0.5; 4]);

    gate.send(()).expect("release the frozen batch");
    let point = p0.wait().expect("in-service fix completes");
    assert_eq!((point.x, point.y), (3.0, 4.0));
    match late {
        Ok(pending) => assert!(
            matches!(pending.wait(), Err(ServeError::ShuttingDown)),
            "fix behind the shutdown marker must get the typed rejection"
        ),
        Err(e) => assert!(matches!(e, ServeError::ShuttingDown)),
    }
    stopper.join().expect("shutdown thread");
}

/// Paged server, one budget slot: a cold request parked in a warming
/// worker's queue while another shard holds the slot is answered with
/// the typed shutting-down error when shutdown strands it — the
/// warming worker must not fault in (or retrain) a model just to serve
/// stragglers during teardown.
#[test]
fn paged_shutdown_answers_fixes_parked_on_a_warming_shard() {
    let campaign = uji_campaign(&UjiConfig::small()).expect("campaign");
    let knn = KnnFingerprint::fit(&campaign, 3).expect("knn fits");
    let dim = campaign.num_waps();

    let (gate_tx, gate_rx) = std::sync::mpsc::channel();
    let (entered_tx, entered_rx) = std::sync::mpsc::channel();
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(1)).expect("catalog");
    // Insert the snapshotable model first: inserting the (unsnapshotable,
    // hence unevictable) gated model second forces the kNN out to the
    // store, leaving building 1 cold and the single slot gated.
    catalog
        .insert(ShardKey::building(1), Box::new(knn))
        .expect("insert knn");
    catalog
        .insert(
            ShardKey::building(0),
            Box::new(GatedLocalizer {
                dim: 4,
                entered: entered_tx,
                gate: gate_rx,
                out: Point::new(3.0, 4.0),
            }),
        )
        .expect("insert gated");

    let server = BatchServer::start_paged(catalog, one_by_one()).expect("paged server starts");
    let client = server.client();

    let p0 = client
        .submit(ShardKey::building(0), vec![0.5; 4])
        .expect("submit to the hot shard");
    entered_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("hot worker reaches the model");

    // Cold shard: its warming worker cannot admit (the slot is held by
    // the frozen shard) and parks the fix.
    let p1 = client
        .submit(ShardKey::building(1), vec![0.0; dim])
        .expect("submit to the cold shard");
    std::thread::sleep(Duration::from_millis(30));

    let stopper = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(30));
    gate_tx.send(()).expect("release the frozen batch");

    let point = p0.wait().expect("in-service fix completes");
    assert_eq!((point.x, point.y), (3.0, 4.0));
    assert!(
        matches!(p1.wait(), Err(ServeError::ShuttingDown)),
        "fix stranded on a warming shard must get the typed rejection"
    );
    stopper.join().expect("shutdown thread");
}
