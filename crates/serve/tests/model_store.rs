//! Model store + catalog lifecycle guarantees.
//!
//! Covers the three tiers end to end: FsStore durability (atomic
//! write-rename, checksummed reads, corrupt files as typed errors), the
//! catalog's budget enforcement (never more than N resident models while
//! every shard keeps answering bit-identically), and the lazy
//! hydrate/retrain paths — including the IMU serving path through
//! `ModelCatalog` and `BatchServer`.

use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::wifi::{KnnFingerprint, WifiNoble, WifiNobleConfig};
use noble::{Localizer, SnapshotLocalizer};
use noble_datasets::{uji_campaign, ImuConfig, ImuDataset, ImuPathSample, UjiConfig, WifiCampaign};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_serve::{
    partition_campaign, shard_seed, BatchConfig, BatchServer, CatalogBudget, FsStore, MemStore,
    ModelCatalog, ModelStore, RegistryConfig, ServeError, ShardKey, ShardPolicy, ShardedRegistry,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn quick_campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.seed = 42;
    uji_campaign(&cfg).unwrap()
}

fn quick_imu_dataset() -> ImuDataset {
    let mut cfg = ImuConfig::small();
    cfg.num_paths = 200;
    ImuDataset::generate(&cfg).unwrap()
}

fn fast_model_cfg() -> WifiNobleConfig {
    WifiNobleConfig {
        epochs: 3,
        ..WifiNobleConfig::small()
    }
}

fn fast_imu_cfg() -> ImuNobleConfig {
    ImuNobleConfig {
        epochs: 8,
        ..ImuNobleConfig::small()
    }
}

/// A fresh store directory per test, under the cargo-managed tmp dir.
fn store_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("store-{tag}-{n}"))
}

#[test]
fn fs_store_round_trips_and_survives_reopen() {
    let campaign = quick_campaign();
    let model = KnnFingerprint::fit(&campaign, 4).unwrap();
    let snapshot = SnapshotLocalizer::snapshot(&model);
    let dir = store_dir("roundtrip");
    let key = ShardKey::building_floor(2, 1);

    {
        let store = FsStore::open(&dir).unwrap();
        assert!(store.list().unwrap().is_empty());
        store.put(key, &snapshot).unwrap();
        assert_eq!(store.list().unwrap(), vec![key]);
    }
    // A brand-new handle (a restarted process) sees the same snapshot.
    let store = FsStore::open(&dir).unwrap();
    let back = store.get(key).unwrap().expect("snapshot persisted");
    assert_eq!(back, snapshot);
    assert!(store.get(ShardKey::building(9)).unwrap().is_none());
    assert!(store.evict(key).unwrap());
    assert!(!store.evict(key).unwrap());
    assert!(store.list().unwrap().is_empty());
}

#[test]
fn fs_store_detects_corruption_as_typed_error() {
    let campaign = quick_campaign();
    let model = KnnFingerprint::fit(&campaign, 3).unwrap();
    let snapshot = SnapshotLocalizer::snapshot(&model);
    let dir = store_dir("corrupt");
    let store = FsStore::open(&dir).unwrap();
    let key = ShardKey::building(0);
    store.put(key, &snapshot).unwrap();
    let path = dir.join("b0.snap");

    // Flip one byte deep in the payload: the checksum must catch what
    // the container's structural checks cannot.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        store.get(key),
        Err(ServeError::BadSnapshot(ref m)) if m.contains("checksum")
    ));

    // Truncation is typed too.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(matches!(store.get(key), Err(ServeError::BadSnapshot(_))));

    // And so is garbage that is not even a snapshot file.
    std::fs::write(&path, b"not a snapshot at all").unwrap();
    assert!(matches!(store.get(key), Err(ServeError::BadSnapshot(_))));

    // Foreign and temp files are not listed as shards.
    std::fs::write(dir.join("README.txt"), b"hello").unwrap();
    std::fs::write(dir.join(".b3.snap.tmp"), b"partial").unwrap();
    assert_eq!(store.list().unwrap(), vec![key]);
}

/// Budget N over >N shards: the resident tier never exceeds N while
/// every shard keeps answering, and answers are bit-identical to the
/// original models across eviction/hydration cycles.
#[test]
fn catalog_budget_never_exceeded_and_answers_stay_bit_identical() {
    let campaign = quick_campaign();
    let features = campaign.features(&campaign.test);
    let probe_rows = 6.min(features.rows());
    let probe = Matrix::from_rows(
        &(0..probe_rows)
            .map(|i| features.row(i).to_vec())
            .collect::<Vec<_>>(),
    )
    .unwrap();

    // Six kNN shards (cheap to build, snapshotable) with distinct k so
    // every shard answers differently.
    let shard_count = 6;
    let budget = 2;
    let mut reference: Vec<(ShardKey, Vec<Point>)> = Vec::new();
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(budget)).unwrap();
    for i in 0..shard_count {
        let key = ShardKey::building(i);
        let model = KnnFingerprint::fit(&campaign, i + 1).unwrap();
        let mut boxed: Box<dyn Localizer> = Box::new(model);
        reference.push((key, boxed.localize_batch(&probe).unwrap()));
        catalog.insert(key, boxed).unwrap();
        assert!(
            catalog.resident_len() <= budget,
            "resident tier grew to {} with budget {budget}",
            catalog.resident_len()
        );
    }
    assert_eq!(catalog.keys().len(), shard_count);

    // Three rounds over every shard in changing order: each request hits
    // the budgeted catalog, faulting cold shards back in.
    for round in 0..3 {
        for step in 0..shard_count {
            let idx = (step * 5 + round * 3) % shard_count;
            let (key, expected) = &reference[idx];
            let got = catalog.localize(*key, &probe).unwrap();
            assert_eq!(
                &got, expected,
                "shard {key} diverged after eviction (round {round})"
            );
            assert!(catalog.resident_len() <= budget);
        }
    }
    let stats = catalog.stats();
    assert!(stats.evictions > 0, "budget {budget} never evicted");
    assert!(stats.hydrations > 0, "no shard was ever faulted back in");
    assert_eq!(stats.retrains, 0, "snapshots must obviate retraining");
    assert!(matches!(
        catalog.localize(ShardKey::building(99), &probe),
        Err(ServeError::UnknownShard(_))
    ));
}

#[test]
fn byte_budget_is_enforced() {
    let campaign = quick_campaign();
    let model = KnnFingerprint::fit(&campaign, 2).unwrap();
    let one_model_bytes = SnapshotLocalizer::snapshot(&model).encoded_len();
    // Room for two models but not three.
    let mut catalog = ModelCatalog::new(CatalogBudget::Bytes(one_model_bytes * 2 + 1)).unwrap();
    for i in 0..4 {
        let m = KnnFingerprint::fit(&campaign, 2).unwrap();
        catalog.insert(ShardKey::building(i), Box::new(m)).unwrap();
        assert!(catalog.resident_len() <= 2, "byte budget exceeded");
    }
    assert_eq!(catalog.keys().len(), 4);
    assert!(catalog.stats().evictions >= 2);
}

#[test]
fn lazy_wifi_specs_retrain_bit_identically_to_eager_registry() {
    let campaign = quick_campaign();
    let cfg = fast_model_cfg();
    let reg_cfg = RegistryConfig {
        policy: ShardPolicy::PerBuilding,
        max_train_samples_per_shard: None,
        parallel_training: false,
    };

    // Eager reference: the registry trains everything up front.
    let mut eager = ShardedRegistry::train_wifi(&campaign, &cfg, &reg_cfg).unwrap();
    let features = campaign.features(&campaign.test);

    // Lazy catalog: nothing trains until the first request.
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(1)).unwrap();
    let keys = catalog
        .register_wifi_campaign(&campaign, &cfg, &reg_cfg)
        .unwrap();
    assert_eq!(keys, eager.keys());
    assert_eq!(catalog.resident_len(), 0, "specs must not train eagerly");

    for key in eager.keys() {
        let expected = eager.localize(key, &features).unwrap();
        let got = catalog.localize(key, &features).unwrap();
        assert_eq!(
            got, expected,
            "lazy retrain of {key} diverged from the eager registry model"
        );
        assert_eq!(catalog.resident_len(), 1);
    }
    let stats = catalog.stats();
    assert_eq!(stats.retrains as usize, keys.len());

    // Second sweep: every shard was written through on retrain, so cold
    // faults now hydrate instead of retraining.
    for key in eager.keys() {
        let expected = eager.localize(key, &features).unwrap();
        assert_eq!(catalog.localize(key, &features).unwrap(), expected);
    }
    assert_eq!(
        catalog.stats().retrains as usize,
        keys.len(),
        "retrained twice"
    );
    assert!(catalog.stats().hydrations > 0);
}

#[test]
fn imu_campaign_serves_through_catalog_and_batch_server() {
    let dataset = quick_imu_dataset();
    let cfg = fast_imu_cfg();
    let imu_key = ShardKey::building(7);

    // Direct reference: train with the same derived seed the catalog uses.
    let mut shard_cfg = cfg.clone();
    shard_cfg.seed = shard_seed(cfg.seed, imu_key);
    let mut reference_model = ImuNoble::train(&dataset, &shard_cfg).unwrap();
    let refs: Vec<&ImuPathSample> = dataset.test.iter().take(24).collect();
    let features = reference_model.path_features(&refs);
    let expected = Localizer::localize_batch(&mut reference_model, &features).unwrap();

    // Through the catalog (lazy spec -> retrain -> hydrate).
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(4)).unwrap();
    catalog.register_imu_campaign(imu_key, dataset.clone(), cfg.clone());
    let got = catalog.localize(imu_key, &features).unwrap();
    assert_eq!(got, expected, "catalog-trained IMU model diverged");
    let info = &catalog.info()[0];
    assert_eq!(info.model, "imu-noble");
    assert_eq!(info.site, imu_key.to_string());

    // Through the batch server (mixed with a WiFi shard).
    let campaign = quick_campaign();
    let mut registry = ShardedRegistry::new();
    registry.insert(
        imu_key,
        Box::new(ImuNoble::train(&dataset, &shard_cfg).unwrap()),
    );
    let wifi_key = ShardKey::building(0);
    registry.insert(
        wifi_key,
        Box::new(WifiNoble::train(&campaign, &fast_model_cfg()).unwrap()),
    );
    let server = BatchServer::start(
        registry,
        BatchConfig {
            max_batch: 16,
            latency_budget: Duration::from_micros(200),
            idle_ttl: None,
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let pending: Vec<_> = (0..features.rows())
        .map(|i| client.submit(imu_key, features.row(i).to_vec()).unwrap())
        .collect();
    // Interleave WiFi traffic on the same server.
    let wifi_features = campaign.features(&campaign.test[..4.min(campaign.test.len())]);
    let wifi_pending: Vec<_> = (0..wifi_features.rows())
        .map(|i| {
            client
                .submit(wifi_key, wifi_features.row(i).to_vec())
                .unwrap()
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        assert_eq!(
            p.wait().unwrap(),
            expected[i],
            "served IMU fix {i} diverged"
        );
    }
    for p in wifi_pending {
        p.wait().unwrap();
    }
    server.shutdown();
}

#[test]
fn catalog_over_fs_store_survives_process_restart() {
    let campaign = quick_campaign();
    let dir = store_dir("restart");
    let features = campaign.features(&campaign.test);
    let expected: Vec<(ShardKey, Vec<Point>)>;

    {
        // "Process one": train shards eagerly, adopt into a catalog over
        // the FsStore, touch every shard so write-through persists them.
        let reg_cfg = RegistryConfig {
            parallel_training: false,
            ..RegistryConfig::default()
        };
        let registry = ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &reg_cfg).unwrap();
        let store = Box::new(FsStore::open(&dir).unwrap());
        let mut catalog = registry
            .into_catalog(CatalogBudget::Count(1), store)
            .unwrap();
        expected = catalog
            .keys()
            .into_iter()
            .map(|k| {
                let out = catalog.localize(k, &features).unwrap();
                (k, out)
            })
            .collect();
        // Force the last resident shard out too, so the store holds all.
        catalog.export_to(&FsStore::open(&dir).unwrap()).unwrap();
    }

    // "Process two": a fresh catalog over the same directory serves every
    // shard bit-identically without a single retrain.
    let store = Box::new(FsStore::open(&dir).unwrap());
    let mut catalog = ModelCatalog::with_store(CatalogBudget::Count(1), store).unwrap();
    assert_eq!(
        catalog.keys(),
        expected.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
    for (key, reference) in &expected {
        assert_eq!(
            catalog.localize(*key, &features).unwrap(),
            *reference,
            "shard {key} diverged across the restart"
        );
    }
    assert_eq!(catalog.stats().retrains, 0);
    assert_eq!(catalog.stats().hydrations as usize, expected.len());
}

/// A demand-paged worker's spin-down writes its model through to the
/// store *before* the memory is released — so even a hard process stop
/// right after the spin-down loses nothing, and a fresh process over the
/// same directory serves every shard bit-identically without retraining.
#[test]
fn paged_spin_down_write_through_survives_process_restart() {
    let campaign = quick_campaign();
    let dir = store_dir("paged-restart");
    let features = campaign.features(&campaign.test[..4.min(campaign.test.len())]);
    let shard_count = 3usize;

    // "Process one": live models only — nothing pre-saved in the store.
    let expected: Vec<(ShardKey, Vec<Point>)> = (0..shard_count)
        .map(|i| {
            let mut model = KnnFingerprint::fit(&campaign, i + 1).unwrap();
            let out = Localizer::localize_batch(&mut model, &features).unwrap();
            (ShardKey::building(i), out)
        })
        .collect();
    {
        let store = Box::new(FsStore::open(&dir).unwrap());
        let mut catalog = ModelCatalog::with_store(CatalogBudget::Count(1), store).unwrap();
        for i in 0..shard_count {
            catalog
                .insert(
                    ShardKey::building(i),
                    Box::new(KnnFingerprint::fit(&campaign, i + 1).unwrap()),
                )
                .unwrap();
        }
        let server = BatchServer::start_paged(
            catalog,
            BatchConfig {
                max_batch: 8,
                latency_budget: Duration::from_micros(100),
                idle_ttl: Some(Duration::from_millis(10)),
                ..BatchConfig::default()
            },
        )
        .unwrap();
        let client = server.client();
        for (key, reference) in &expected {
            for (i, row) in (0..features.rows()).map(|i| (i, features.row(i).to_vec())) {
                assert_eq!(client.localize(*key, row).unwrap(), reference[i]);
            }
        }
        // Wait until every worker has spun down through the idle TTL —
        // each spin-down is a write-through.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let paged = server.paged_stats().expect("paged server");
            if paged.idle_spin_downs >= 1 && paged.hot_shards == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "workers never spun down: {paged:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Hard stop: drop the server without any explicit export. Only
        // what was written through survives — which must be everything.
        drop(server);
    }

    // "Process two": a fresh catalog over the same directory hydrates
    // every shard bit-identically, with zero retrains.
    let store = Box::new(FsStore::open(&dir).unwrap());
    let mut catalog = ModelCatalog::with_store(CatalogBudget::Count(1), store).unwrap();
    assert_eq!(
        catalog.keys(),
        expected.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        "a spin-down write-through is missing from the store"
    );
    for (key, reference) in &expected {
        assert_eq!(
            &catalog.localize(*key, &features).unwrap(),
            reference,
            "shard {key} diverged across the paged restart"
        );
    }
    assert_eq!(catalog.stats().retrains, 0);
    assert_eq!(catalog.stats().hydrations as usize, shard_count);
}

#[test]
fn unsnapshotable_models_are_pinned_not_lost() {
    use noble::{LocalizerInfo, NobleError};

    /// A research-only localizer: no snapshot capability.
    struct Opaque;
    impl Localizer for Opaque {
        fn info(&self) -> LocalizerInfo {
            LocalizerInfo {
                model: "opaque",
                site: "default".into(),
                feature_dim: 2,
                class_count: 0,
            }
        }
        fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
            Ok(vec![Point::new(1.0, 2.0); features.rows()])
        }
    }

    let campaign = quick_campaign();
    let mut catalog = ModelCatalog::new(CatalogBudget::Count(1)).unwrap();
    catalog
        .insert(ShardKey::building(0), Box::new(Opaque))
        .unwrap();
    // A snapshotable second shard pushes the catalog over budget; the
    // opaque model must be pinned (not silently dropped), so the *kNN*
    // shard is the one that cycles.
    let knn = KnnFingerprint::fit(&campaign, 2).unwrap();
    catalog
        .insert(ShardKey::building(1), Box::new(knn))
        .unwrap();
    let probe = Matrix::zeros(1, 2);
    assert_eq!(
        catalog.localize(ShardKey::building(0), &probe).unwrap(),
        vec![Point::new(1.0, 2.0)]
    );
    let wide = Matrix::zeros(1, campaign.num_waps());
    catalog.localize(ShardKey::building(1), &wide).unwrap();
    assert_eq!(
        catalog.localize(ShardKey::building(0), &probe).unwrap(),
        vec![Point::new(1.0, 2.0)],
        "pinned model was lost"
    );
    // Pinning is not silent: the stats carry a counted warning that the
    // budget could not be honored for the unsnapshotable model.
    assert!(
        catalog.stats().pinned > 0,
        "eviction walked past a pinned model without counting it"
    );
}

#[test]
fn mem_store_backs_the_same_lifecycle_as_fs() {
    let campaign = quick_campaign();
    let model = KnnFingerprint::fit(&campaign, 5).unwrap();
    let snapshot = SnapshotLocalizer::snapshot(&model);
    let key = ShardKey::building(3);
    let store = MemStore::new();
    store.put(key, &snapshot).unwrap();

    let mut catalog = ModelCatalog::with_store(CatalogBudget::Count(1), Box::new(store)).unwrap();
    assert_eq!(catalog.keys(), vec![key]);
    let features = campaign.features(&campaign.test[..3.min(campaign.test.len())]);
    let mut direct: Box<dyn Localizer> = Box::new(model);
    assert_eq!(
        catalog.localize(key, &features).unwrap(),
        direct.localize_batch(&features).unwrap()
    );
    assert_eq!(catalog.stats().hydrations, 1);
}

#[test]
fn partitioned_specs_match_partition_campaign() {
    // register_wifi_campaign must shard exactly like the eager path.
    let campaign = quick_campaign();
    let reg_cfg = RegistryConfig {
        policy: ShardPolicy::PerBuildingFloor,
        max_train_samples_per_shard: Some(32),
        parallel_training: false,
    };
    let parts = partition_campaign(
        &campaign,
        |s| reg_cfg.policy.key_of(s),
        reg_cfg.max_train_samples_per_shard,
    );
    let mut catalog = ModelCatalog::new(CatalogBudget::Unbounded).unwrap();
    let keys = catalog
        .register_wifi_campaign(&campaign, &fast_model_cfg(), &reg_cfg)
        .unwrap();
    assert_eq!(keys, parts.keys().copied().collect::<Vec<_>>());
    assert_eq!(catalog.len(), parts.len());
}
