//! The tracking-session determinism contract.
//!
//! The load-bearing test is
//! `tracked_fixes_bit_identical_across_session_shard_counts`: the same
//! interleaving of per-device observations must produce bit-identical
//! smoothed tracks (vs a direct single-threaded `TrajectorySmoother`
//! replay) and identical `ZoneEvent` sequences at session-shard counts
//! 1, 2 and 4, driven from one client thread per device. CI greps for
//! this suite and its hysteresis property tests by name — do not rename
//! them casually.

use noble::wifi::tracking::{SmootherConfig, TrajectorySmoother, ZoneDetector};
use noble::wifi::WifiNobleConfig;
use noble::Localizer;
use noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};
use noble_geo::{Point, ZoneSet};
use noble_serve::{
    partition_campaign, BatchConfig, CatalogBudget, DeviceId, MemStore, ModelCatalog, ModelStore,
    RegistryConfig, SessionTable, ShardKey, ShardPolicy, ShardedRegistry, TrackingServer,
    ZoneEvent, ZoneEventKind,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

const DEVICES: u64 = 12;
const PHASE_A: u64 = 8; // observations every device makes
const PHASE_B: u64 = 8; // further observations only live devices make
const STABILITY_K: u32 = 2;
const AWAY_TIMEOUT: u64 = 3;

fn quick_campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.seed = 42;
    uji_campaign(&cfg).unwrap()
}

fn fast_model_cfg() -> WifiNobleConfig {
    WifiNobleConfig {
        epochs: 4,
        ..WifiNobleConfig::small()
    }
}

fn registry_cfg() -> RegistryConfig {
    RegistryConfig {
        policy: ShardPolicy::PerBuilding,
        max_train_samples_per_shard: None,
        parallel_training: true,
    }
}

/// Dropout devices observe only in phase A, go silent, and are retired
/// by the away-timeout sweeps.
fn is_dropout(device: DeviceId) -> bool {
    device.is_multiple_of(3)
}

/// One device's scripted life: the serving shard it reports through and
/// its fingerprint sequence (phase A for everyone, phase B only for
/// devices that stay live).
struct DeviceScript {
    device: DeviceId,
    key: ShardKey,
    fingerprints: Vec<Vec<f64>>,
}

/// Builds the scripts plus the reference raw fix for every observation,
/// computed by direct per-shard `localize_batch` calls on models
/// hydrated from `store` — bit-identical to what any server built over
/// the same snapshots serves.
fn device_scripts(campaign: &WifiCampaign, store: &MemStore) -> Vec<(DeviceScript, Vec<Point>)> {
    let shards = partition_campaign(campaign, |s| ShardPolicy::PerBuilding.key_of(s), None);
    let mut rows_by_key: BTreeMap<ShardKey, Vec<Vec<f64>>> = BTreeMap::new();
    let mut models: BTreeMap<ShardKey, Box<dyn Localizer>> = BTreeMap::new();
    for (key, shard) in &shards {
        let features = shard.features(&shard.test);
        rows_by_key.insert(
            *key,
            (0..features.rows())
                .map(|i| features.row(i).to_vec())
                .collect(),
        );
        let snapshot = store.get(*key).unwrap().expect("saved shard");
        models.insert(*key, noble::hydrate(&snapshot).unwrap());
    }
    let keys: Vec<ShardKey> = rows_by_key.keys().copied().collect();
    (0..DEVICES)
        .map(|device| {
            let key = keys[device as usize % keys.len()];
            let rows = &rows_by_key[&key];
            let len = if is_dropout(device) {
                PHASE_A
            } else {
                PHASE_A + PHASE_B
            } as usize;
            let fingerprints: Vec<Vec<f64>> = (0..len)
                .map(|j| rows[(device as usize + j) % rows.len()].clone())
                .collect();
            let model = models.get_mut(&key).unwrap();
            let raw: Vec<Point> = fingerprints
                .iter()
                .map(|fp| {
                    let m = noble_linalg::Matrix::from_vec(1, fp.len(), fp.clone()).unwrap();
                    model.localize_batch(&m).unwrap()[0]
                })
                .collect();
            (
                DeviceScript {
                    device,
                    key,
                    fingerprints,
                },
                raw,
            )
        })
        .collect()
}

/// A device's observed life: smoothed track + fix-driven events.
type DeviceTrace = (Vec<Point>, Vec<ZoneEvent>);

/// The single-threaded reference: replay each device's raw fixes through
/// its own smoother + detector, exactly as a session would.
struct Reference {
    /// Per device: (smoothed track, fix-driven events).
    tracks: BTreeMap<DeviceId, DeviceTrace>,
    /// Expected events of the first sweep (closing `Left`s of in-zone
    /// dropout devices), sorted by device.
    sweep_left: Vec<ZoneEvent>,
}

fn reference_replay(
    scripts: &[(DeviceScript, Vec<Point>)],
    zones: &ZoneSet,
    map: &noble_geo::CampusMap,
    smoother_cfg: SmootherConfig,
    sweep_at: u64,
) -> Reference {
    let mut tracks = BTreeMap::new();
    let mut sweep_left = Vec::new();
    for (script, raw) in scripts {
        let mut smoother = TrajectorySmoother::new(smoother_cfg);
        let mut detector = ZoneDetector::new(STABILITY_K);
        let mut track = Vec::new();
        let mut events = Vec::new();
        for (j, &fix) in raw.iter().enumerate() {
            let at = j as u64;
            let smoothed = smoother.update(fix, Some(map));
            track.push(smoothed);
            if let Some(t) = detector.observe(zones.locate(smoothed)) {
                if let Some(zone) = t.left {
                    events.push(ZoneEvent {
                        device: script.device,
                        zone,
                        kind: ZoneEventKind::Left,
                        at,
                    });
                }
                if let Some(zone) = t.entered {
                    events.push(ZoneEvent {
                        device: script.device,
                        zone,
                        kind: ZoneEventKind::Entered,
                        at,
                    });
                }
            }
        }
        if is_dropout(script.device) {
            if let Some(zone) = detector.current() {
                sweep_left.push(ZoneEvent {
                    device: script.device,
                    zone,
                    kind: ZoneEventKind::Left,
                    at: sweep_at,
                });
            }
        }
        tracks.insert(script.device, (track, events));
    }
    sweep_left.sort_by_key(|e| e.device);
    Reference { tracks, sweep_left }
}

/// Drives the scripted devices through `server`, one client thread per
/// device (per-device submission order preserved, cross-device
/// interleaving arbitrary), phase A then phase B, and returns each
/// device's observed (track, fix events).
fn drive(
    server: &TrackingServer,
    scripts: &[(DeviceScript, Vec<Point>)],
) -> BTreeMap<DeviceId, DeviceTrace> {
    let observed: Mutex<BTreeMap<DeviceId, DeviceTrace>> = Mutex::new(BTreeMap::new());
    for phase in [0..PHASE_A, PHASE_A..PHASE_A + PHASE_B] {
        std::thread::scope(|s| {
            for (script, raw) in scripts {
                let client = server.client();
                let observed = &observed;
                let phase = phase.clone();
                s.spawn(move || {
                    let mut track = Vec::new();
                    let mut events = Vec::new();
                    for at in phase {
                        let Some(fp) = script.fingerprints.get(at as usize) else {
                            break; // dropout device: no phase-B script
                        };
                        let (fix, evs) = client
                            .submit(script.device, script.key, at, fp.clone())
                            .unwrap();
                        assert_eq!(fix.raw, raw[at as usize], "raw fix must be bit-identical");
                        track.push(fix.smoothed);
                        events.extend(evs);
                    }
                    let mut map = observed.lock().unwrap();
                    let entry = map.entry(script.device).or_default();
                    entry.0.extend(track);
                    entry.1.extend(events);
                });
            }
        });
    }
    observed.into_inner().unwrap()
}

#[test]
fn tracked_fixes_bit_identical_across_session_shard_counts() {
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let store = MemStore::new();
    registry.save_to(&store).unwrap();
    drop(registry);

    let scripts = device_scripts(&campaign, &store);
    let zones = ZoneSet::building_grid(&campaign.map, 2, 1).unwrap();
    let smoother_cfg = SmootherConfig::default();
    // Both sweeps run after phase B (last live observation at t = 15):
    // at t = 16 dropout devices (silent since t = 7) are stale — in-zone
    // ones emit their closing Left and are kept; at t = 17 they are
    // evicted silently. Live devices are 1–2 ticks old, never stale.
    let sweep_at = PHASE_A + PHASE_B;
    let reference = reference_replay(&scripts, &zones, &campaign.map, smoother_cfg, sweep_at);
    let total_events: usize = reference.tracks.values().map(|(_, e)| e.len()).sum();
    assert!(total_events > 0, "scenario produced no zone events");
    assert!(
        !reference.sweep_left.is_empty(),
        "no in-zone dropout device"
    );

    let dropouts = (0..DEVICES).filter(|d| is_dropout(*d)).count();
    for session_shards in [1usize, 2, 4] {
        let mut registry = ShardedRegistry::new();
        for key in store.list().unwrap() {
            let snapshot = store.get(key).unwrap().unwrap();
            registry.insert(key, noble::hydrate(&snapshot).unwrap());
        }
        let server = TrackingServer::start(
            registry,
            zones.clone(),
            Some(campaign.map.clone()),
            smoother_cfg,
            BatchConfig {
                session_shards,
                stability_k: STABILITY_K,
                away_timeout: Some(AWAY_TIMEOUT),
                ..BatchConfig::default()
            },
        )
        .unwrap();

        let observed = drive(&server, &scripts);
        for (script, _) in &scripts {
            let got = &observed[&script.device];
            let want = &reference.tracks[&script.device];
            assert_eq!(
                got.0, want.0,
                "device {} track diverged at {session_shards} session shards",
                script.device
            );
            assert_eq!(
                got.1, want.1,
                "device {} events diverged at {session_shards} session shards",
                script.device
            );
        }

        // Sweep 1: closing Lefts of in-zone dropouts, sorted by device;
        // sweep 2: silent eviction of the rest. Identical at every shard
        // count because both are pinned to the same reference.
        assert_eq!(server.sweep(sweep_at), reference.sweep_left);
        assert_eq!(server.sweep(sweep_at + 1), Vec::<ZoneEvent>::new());
        let stats = server.session_stats();
        assert_eq!(stats.created, DEVICES);
        assert_eq!(stats.evicted, dropouts as u64);
        assert_eq!(stats.live, (DEVICES as usize) - dropouts);
        let (_, final_stats) = server.shutdown();
        assert_eq!(final_stats, stats);
    }
}

#[test]
fn tracking_over_paged_server_matches_resident_reference() {
    // The tentpole wiring claim: sessions route through the demand-paged
    // BatchServer without changing a single bit. Budget of 1 forces
    // every shard revisit through an evict-and-refault cycle.
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let store = MemStore::new();
    registry.save_to(&store).unwrap();
    drop(registry);

    let scripts = device_scripts(&campaign, &store);
    let zones = ZoneSet::building_grid(&campaign.map, 2, 1).unwrap();
    let smoother_cfg = SmootherConfig::default();
    let reference = reference_replay(
        &scripts,
        &zones,
        &campaign.map,
        smoother_cfg,
        PHASE_A + PHASE_B,
    );

    let catalog = ModelCatalog::with_store(CatalogBudget::Count(1), Box::new(store)).unwrap();
    let server = TrackingServer::start_paged(
        catalog,
        zones,
        Some(campaign.map.clone()),
        smoother_cfg,
        BatchConfig {
            stability_k: STABILITY_K,
            away_timeout: Some(AWAY_TIMEOUT),
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let observed = drive(&server, &scripts);
    for (script, _) in &scripts {
        let got = &observed[&script.device];
        let want = &reference.tracks[&script.device];
        assert_eq!(got.0, want.0, "paged track diverged for {}", script.device);
        assert_eq!(got.1, want.1, "paged events diverged for {}", script.device);
    }
    let paged = server.paged_stats().expect("paged fix tier");
    assert!(paged.faults >= 1);
}

#[test]
fn revived_session_does_not_inherit_stale_velocity() {
    // Regression for smoother reset semantics: an evicted-then-revived
    // device must start from a fresh smoother — the first post-revival
    // fix passes through verbatim instead of being dragged by velocity
    // accumulated before the eviction.
    let campaign = quick_campaign();
    let registry =
        ShardedRegistry::train_wifi(&campaign, &fast_model_cfg(), &registry_cfg()).unwrap();
    let server = TrackingServer::start(
        registry,
        ZoneSet::from_buildings(&campaign.map),
        None,
        SmootherConfig {
            snap_to_map: false,
            ..SmootherConfig::default()
        },
        BatchConfig {
            away_timeout: Some(2),
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let key = server.keys()[0];
    let shards = partition_campaign(&campaign, |s| ShardPolicy::PerBuilding.key_of(s), None);
    let shard = &shards.iter().find(|(k, _)| **k == key).unwrap().1;
    let features = shard.features(&shard.test);
    let rows: Vec<Vec<f64>> = (0..features.rows().min(6))
        .map(|i| features.row(i).to_vec())
        .collect();
    assert!(rows.len() >= 2, "need at least two distinct fingerprints");

    // Build up motion state across several distinct fixes.
    for (at, row) in rows.iter().enumerate() {
        server.submit(1, key, at as u64, row.clone()).unwrap();
    }
    assert_eq!(server.session_stats().live, 1);
    // Two sweeps past the timeout: Left (if in a zone), then eviction.
    server.sweep(100);
    server.sweep(101);
    assert_eq!(server.session_stats().live, 0);
    assert_eq!(server.session_stats().evicted, 1);

    // Revival: the first fix of the fresh session is returned verbatim.
    let (fix, _) = server.submit(1, key, 200, rows[0].clone()).unwrap();
    assert_eq!(
        fix.smoothed, fix.raw,
        "revived session shows phantom motion on its first fix"
    );
    assert_eq!(server.session_stats().created, 2);
}

/// Replays `observations` (each `Some(zone)` / `None`) through one
/// detector and returns the indices at which a transition committed.
fn committed_indices(k: u32, observations: &[Option<usize>]) -> Vec<usize> {
    let mut detector = ZoneDetector::new(k);
    observations
        .iter()
        .enumerate()
        .filter_map(|(i, &z)| detector.observe(z).map(|_| i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hysteresis stability window: whatever the zone-observation
    /// sequence — boundary jitter included — two committed transitions
    /// are always at least `k` observations apart, and a strictly
    /// alternating two-zone jitter never commits anything at all
    /// once `k >= 2`.
    #[test]
    fn hysteresis_boundary_jitter_never_flaps_within_stability_window(
        k in 1u32..6,
        observations in proptest::collection::vec(
            (0u8..4).prop_map(|z| if z == 3 { None } else { Some(z as usize) }),
            1..120,
        ),
    ) {
        let commits = committed_indices(k, &observations);
        for pair in commits.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= k as usize,
                "transitions {} and {} closer than the k = {k} window",
                pair[0],
                pair[1]
            );
        }
        // Pure boundary jitter between two zones: with any real window
        // the detector must hold its first commitment forever.
        if k >= 2 {
            let jitter: Vec<Option<usize>> =
                (0..100).map(|i| Some(i % 2)).collect();
            let mut detector = ZoneDetector::new(k);
            let flaps = jitter.iter().filter(|&&z| detector.observe(z).is_some()).count();
            prop_assert!(flaps == 0, "alternating jitter flapped with k = {}", k);
        }
    }

    /// Hysteresis pairing under forced timeout: driving random walks
    /// through a session table and then sweeping until empty, every
    /// `Entered` is eventually paired with exactly one `Left` of the
    /// same zone, in strict alternation per device.
    #[test]
    fn hysteresis_every_entered_pairs_with_exactly_one_left_under_forced_timeout(
        k in 1u32..4,
        steps in proptest::collection::vec((0u64..5, 0u8..3), 1..150),
    ) {
        let zones = ZoneSet::new(vec![
            noble_geo::Zone::new("a", noble_geo::Polygon::rectangle(0.0, 0.0, 5.0, 10.0).unwrap()),
            noble_geo::Zone::new("b", noble_geo::Polygon::rectangle(5.0, 0.0, 10.0, 10.0).unwrap()),
        ]);
        let smoother = SmootherConfig {
            fix_weight: 1.0,
            velocity_retention: 0.0,
            max_step_m: 1e9,
            snap_to_map: false,
        };
        let cfg = BatchConfig {
            stability_k: k,
            away_timeout: Some(4),
            session_shards: 3,
            ..BatchConfig::default()
        };
        let table = SessionTable::new(zones, None, smoother, &cfg).unwrap();

        let mut events: Vec<ZoneEvent> = Vec::new();
        let mut last_at = 0u64;
        for (i, (device, spot)) in steps.iter().enumerate() {
            let at = i as u64;
            // spot 0/1: inside zone a/b; spot 2: outside every zone.
            let p = match spot {
                0 => Point::new(2.0, 5.0),
                1 => Point::new(7.0, 5.0),
                _ => Point::new(50.0, 50.0),
            };
            events.extend(table.observe(*device, at, p).2);
            // Interleave sweeps so timeouts fire mid-run too.
            if i % 7 == 6 {
                events.extend(table.sweep(at));
            }
            last_at = at;
        }
        // Forced timeout: sweep until every session is gone.
        let mut now = last_at + 5;
        while table.stats().live > 0 {
            events.extend(table.sweep(now));
            now += 1;
        }

        // Per device, events alternate Entered(z) / Left(z) and end
        // closed: one Left per Entered, same zone, never two opens.
        let mut open: BTreeMap<DeviceId, usize> = BTreeMap::new();
        for e in &events {
            match e.kind {
                ZoneEventKind::Entered => {
                    prop_assert!(
                        open.insert(e.device, e.zone).is_none(),
                        "device {} entered twice without leaving", e.device
                    );
                }
                ZoneEventKind::Left => {
                    prop_assert!(
                        open.remove(&e.device) == Some(e.zone),
                        "device {} left a zone it was not in", e.device
                    );
                }
            }
        }
        prop_assert!(open.is_empty(), "unpaired Entered after forced timeout: {open:?}");
        let stats = table.stats();
        prop_assert!(stats.entered == stats.left, "counter pairing broke");
    }

    /// Eviction safety: a sweep either emits a session's closing event
    /// or evicts it — never both. Every device named in a sweep's
    /// events is still live after that sweep.
    #[test]
    fn sweep_never_both_emits_and_evicts_a_session(
        steps in proptest::collection::vec((0u64..6, 0u8..3), 1..100),
        sweep_every in 3usize..9,
    ) {
        let zones = ZoneSet::new(vec![noble_geo::Zone::new(
            "z",
            noble_geo::Polygon::rectangle(0.0, 0.0, 10.0, 10.0).unwrap(),
        )]);
        let smoother = SmootherConfig {
            fix_weight: 1.0,
            velocity_retention: 0.0,
            max_step_m: 1e9,
            snap_to_map: false,
        };
        let cfg = BatchConfig {
            stability_k: 1,
            away_timeout: Some(2),
            ..BatchConfig::default()
        };
        let table = SessionTable::new(zones, None, smoother, &cfg).unwrap();
        let mut at = 0u64;
        for (i, (device, spot)) in steps.iter().enumerate() {
            let p = if *spot == 0 {
                Point::new(50.0, 50.0) // outside
            } else {
                Point::new(5.0, 5.0) // inside
            };
            table.observe(*device, at, p);
            if i % sweep_every == sweep_every - 1 {
                // Jump time so some sessions are stale at the sweep.
                at += 3;
                for e in table.sweep(at) {
                    prop_assert!(
                        table.track(e.device).is_some(),
                        "sweep emitted for device {} and evicted it in the same pass",
                        e.device
                    );
                }
            }
            at += 1;
        }
    }
}
