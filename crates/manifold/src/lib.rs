//! From-scratch manifold learning for the NObLe baselines.
//!
//! The paper contrasts NObLe with classical manifold methods that rely on
//! input-space Euclidean neighborhoods. This crate implements those
//! comparators end to end:
//!
//! - [`knn_brute`] / [`KdTree`] — nearest-neighbor search,
//! - [`NeighborGraph`] — symmetric kNN graphs with connectivity analysis,
//! - [`geodesic_distances`] — Dijkstra shortest paths over the graph,
//! - [`classical_mds`] — multidimensional scaling (the objective NObLe's
//!   §III-C analysis references),
//! - [`Isomap`] — geodesic MDS \[Tenenbaum et al., Science 2000\] with
//!   Nyström out-of-sample extension,
//! - [`Lle`] — locally linear embedding \[Roweis & Saul, Science 2000\]
//!   with barycentric out-of-sample extension.
//!
//! # Example
//!
//! ```
//! use noble_linalg::Matrix;
//! use noble_manifold::Isomap;
//!
//! // Points along a line embed to a line.
//! let data = Matrix::from_fn(20, 3, |i, j| if j == 0 { i as f64 } else { 0.0 });
//! let isomap = Isomap::fit(&data, 3, 1, 42).unwrap();
//! assert_eq!(isomap.embedding().shape(), (20, 1));
//! ```

mod error;
mod graph;
mod isomap;
mod knn;
mod lle;
mod mds;
mod pca;

pub use error::ManifoldError;
pub use graph::{dijkstra, geodesic_distances, NeighborGraph};
pub use isomap::Isomap;
pub use knn::{knn_brute, pairwise_distances, KdTree};
pub use lle::Lle;
pub use mds::classical_mds;
pub use pca::Pca;
