//! Classical multidimensional scaling.
//!
//! The paper's §III-C frames NObLe's cross-entropy objective as implicit
//! MDS on the learned embedding; this module provides the explicit
//! algorithm, both for the Isomap baseline and for tests of that analogy.

use crate::ManifoldError;
use noble_linalg::{gram_from_distances, top_eigenpairs, Matrix};

/// Classical (Torgerson) MDS: embeds `n` points into `dim` dimensions from
/// an `n x n` matrix of pairwise distances, preserving them as well as a
/// Euclidean embedding can.
///
/// Returns an `(n, dim)` coordinate matrix. Components with non-positive
/// eigenvalues (non-Euclidean residue) are zero-filled — callers asking for
/// more dimensions than the distance matrix supports get degenerate
/// trailing columns rather than an error, matching standard
/// implementations.
///
/// # Errors
///
/// - [`ManifoldError::BadDimension`] when `dim` is zero or exceeds `n`.
/// - Propagates eigensolver failures.
pub fn classical_mds(distances: &Matrix, dim: usize, seed: u64) -> Result<Matrix, ManifoldError> {
    let n = distances.rows();
    if dim == 0 || dim > n {
        return Err(ManifoldError::BadDimension { dim, max: n });
    }
    let gram = gram_from_distances(distances)?;
    let pairs = top_eigenpairs(&gram, dim, seed)?;
    let mut coords = Matrix::zeros(n, dim);
    for (k, pair) in pairs.iter().enumerate() {
        if pair.value <= 0.0 {
            continue; // non-Euclidean component: leave zeros
        }
        let scale = pair.value.sqrt();
        for i in 0..n {
            coords[(i, k)] = scale * pair.vector[i];
        }
    }
    Ok(coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_linalg::euclidean_distance;

    fn distance_matrix(points: &[Vec<f64>]) -> Matrix {
        let n = points.len();
        Matrix::from_fn(n, n, |i, j| euclidean_distance(&points[i], &points[j]))
    }

    #[test]
    fn recovers_line_configuration() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![6.0]];
        let d = distance_matrix(&pts);
        let y = classical_mds(&d, 1, 3).unwrap();
        // Distances in the embedding must match the input distances.
        for i in 0..4 {
            for j in 0..4 {
                let de = (y[(i, 0)] - y[(j, 0)]).abs();
                assert!(
                    (de - d[(i, j)]).abs() < 1e-6,
                    "pair ({i},{j}): {de} vs {}",
                    d[(i, j)]
                );
            }
        }
    }

    #[test]
    fn recovers_planar_configuration() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ];
        let d = distance_matrix(&pts);
        let y = classical_mds(&d, 2, 5).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let de = euclidean_distance(y.row(i), y.row(j));
                assert!((de - d[(i, j)]).abs() < 1e-6, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn extra_dimensions_zero_filled() {
        // Three collinear points have rank-1 structure; dim 3 of 3 points.
        let pts = vec![vec![0.0], vec![2.0], vec![5.0]];
        let d = distance_matrix(&pts);
        let y = classical_mds(&d, 3, 1).unwrap();
        // Column 1 and 2 carry (near) zero variance.
        for k in 1..3 {
            let col = y.column(k);
            let spread = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - col.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread < 1e-6, "column {k} spread {spread}");
        }
    }

    #[test]
    fn rejects_bad_dims() {
        let d = Matrix::zeros(3, 3);
        assert!(classical_mds(&d, 0, 0).is_err());
        assert!(classical_mds(&d, 4, 0).is_err());
    }

    #[test]
    fn embedding_is_centered() {
        let pts = vec![vec![10.0, 3.0], vec![12.0, 3.0], vec![11.0, 7.0]];
        let d = distance_matrix(&pts);
        let y = classical_mds(&d, 2, 2).unwrap();
        let means = y.column_means();
        assert!(means.iter().all(|m| m.abs() < 1e-8), "means {means:?}");
    }
}
