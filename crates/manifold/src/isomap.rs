//! Isomap \[Tenenbaum, de Silva & Langford, Science 2000\]: geodesic MDS.
//!
//! Follows the three-step template the paper describes in §II — kNN graph,
//! shortest-path distances, partial eigendecomposition — plus the Nyström
//! out-of-sample extension needed to embed *test* signals so the Isomap
//! Deep Regression baseline (Table II) can run on held-out data.

use crate::{geodesic_distances, knn_brute, ManifoldError, NeighborGraph};
use noble_linalg::{gram_from_distances, top_eigenpairs_lenient, EigenPair, Matrix};

/// A fitted Isomap embedding with out-of-sample extension.
#[derive(Debug, Clone)]
pub struct Isomap {
    /// Training rows the model was fitted on (restricted to the largest
    /// connected component when the kNN graph was disconnected).
    data: Matrix,
    /// Indices into the original data of the retained rows.
    retained: Vec<usize>,
    embedding: Matrix,
    geodesics: Matrix,
    /// Column means of the squared geodesic matrix (Nyström formula).
    mean_sq_cols: Vec<f64>,
    eigen: Vec<EigenPair>,
    k: usize,
    dim: usize,
}

impl Isomap {
    /// Fits Isomap on the rows of `data` with `k`-NN graphs and `dim`
    /// output dimensions.
    ///
    /// A disconnected neighborhood graph is handled the standard way: the
    /// fit silently restricts itself to the largest connected component
    /// ([`Isomap::retained_indices`] reports which rows survived).
    ///
    /// # Errors
    ///
    /// - [`ManifoldError::TooFewPoints`] when `data.rows() <= k`.
    /// - [`ManifoldError::BadDimension`] when `dim` is zero or exceeds the
    ///   retained point count.
    /// - Propagates eigensolver failures.
    pub fn fit(data: &Matrix, k: usize, dim: usize, seed: u64) -> Result<Self, ManifoldError> {
        let graph = NeighborGraph::knn_graph(data, k)?;
        let component = graph.largest_component();
        let (data, graph, retained) = if component.len() == data.rows() {
            (data.clone(), graph, (0..data.rows()).collect::<Vec<_>>())
        } else {
            let sub = graph.induced_subgraph(&component);
            (data.select_rows(&component), sub, component)
        };
        let n = data.rows();
        if dim == 0 || dim > n {
            return Err(ManifoldError::BadDimension { dim, max: n });
        }
        let geodesics = geodesic_distances(&graph)?;
        let gram = gram_from_distances(&geodesics)?;
        let eigen: Vec<EigenPair> = top_eigenpairs_lenient(&gram, dim, seed)?
            .into_iter()
            .filter(|p| p.value > 1e-10)
            .collect();
        let mut embedding = Matrix::zeros(n, dim);
        for (col, pair) in eigen.iter().enumerate() {
            let scale = pair.value.sqrt();
            for i in 0..n {
                embedding[(i, col)] = scale * pair.vector[i];
            }
        }
        let sq = geodesics.map(|v| v * v);
        let mean_sq_cols: Vec<f64> = (0..n)
            .map(|j| (0..n).map(|i| sq[(i, j)]).sum::<f64>() / n as f64)
            .collect();
        Ok(Isomap {
            data,
            retained,
            embedding,
            geodesics,
            mean_sq_cols,
            eigen,
            k,
            dim,
        })
    }

    /// The `(n_retained, dim)` training embedding.
    pub fn embedding(&self) -> &Matrix {
        &self.embedding
    }

    /// Indices of the original rows retained by the fit.
    pub fn retained_indices(&self) -> &[usize] {
        &self.retained
    }

    /// Neighborhood size used at fit time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds one new point via the Nyström / landmark-MDS formula.
    ///
    /// The geodesic distance from the query to every training point `j` is
    /// approximated through the query's `k` nearest training points `i`:
    /// `d(q, j) = min_i (||q - x_i|| + G[i, j])`, then projected onto the
    /// fitted eigenbasis.
    pub fn transform_point(&self, query: &[f64]) -> Vec<f64> {
        let n = self.data.rows();
        let anchors = knn_brute(&self.data, query, self.k.min(n));
        // Approximate squared geodesics from the query to all points.
        let mut sq = vec![f64::INFINITY; n];
        for (j, s) in sq.iter_mut().enumerate() {
            let mut best = f64::INFINITY;
            for &(i, d_qi) in &anchors {
                let via = d_qi + self.geodesics[(i, j)];
                if via < best {
                    best = via;
                }
            }
            *s = best * best;
        }
        let mut out = vec![0.0; self.dim];
        for (col, pair) in self.eigen.iter().enumerate() {
            let scale = 1.0 / (2.0 * pair.value.sqrt());
            let mut acc = 0.0;
            for ((v, m), s) in pair.vector.iter().zip(&self.mean_sq_cols).zip(&sq) {
                acc += v * (m - s);
            }
            out[col] = scale * acc;
        }
        out
    }

    /// Embeds every row of `queries`; returns an `(m, dim)` matrix.
    pub fn transform(&self, queries: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(queries.rows(), self.dim);
        for i in 0..queries.rows() {
            let row = self.transform_point(queries.row(i));
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_linalg::euclidean_distance;

    #[test]
    fn line_embeds_isometrically() {
        let data = Matrix::from_fn(15, 3, |i, j| if j == 0 { i as f64 } else { 0.0 });
        let iso = Isomap::fit(&data, 2, 1, 7).unwrap();
        let e = iso.embedding();
        // Geodesic distances along a line equal Euclidean; embedding must
        // reproduce them.
        for i in 0..15 {
            for j in 0..15 {
                let de = (e[(i, 0)] - e[(j, 0)]).abs();
                let expected = (i as f64 - j as f64).abs();
                assert!((de - expected).abs() < 1e-5, "pair ({i},{j}): {de}");
            }
        }
    }

    #[test]
    fn transform_consistent_with_training_embedding() {
        let data = Matrix::from_fn(20, 2, |i, j| if j == 0 { i as f64 * 0.5 } else { 0.0 });
        let iso = Isomap::fit(&data, 3, 1, 1).unwrap();
        // Re-embedding training points lands near their fitted embedding.
        for i in [0usize, 7, 19] {
            let t = iso.transform_point(data.row(i));
            let fitted = iso.embedding().row(i);
            assert!(
                (t[0] - fitted[0]).abs() < 0.3,
                "row {i}: transform {t:?} vs fitted {fitted:?}"
            );
        }
    }

    #[test]
    fn unrolls_a_curve_better_than_euclid() {
        // Points on a C-shaped arc: geodesic (along-curve) distance between
        // the tips is much larger than the Euclidean chord. Isomap with a
        // 1-D output should place the tips far apart.
        let n = 30;
        let mut pts = Matrix::zeros(n, 2);
        for i in 0..n {
            let theta = std::f64::consts::PI * 1.5 * (i as f64) / (n - 1) as f64;
            pts[(i, 0)] = theta.cos();
            pts[(i, 1)] = theta.sin();
        }
        let iso = Isomap::fit(&pts, 3, 1, 11).unwrap();
        let e = iso.embedding();
        let embedded_span = (e[(0, 0)] - e[(n - 1, 0)]).abs();
        let chord = euclidean_distance(pts.row(0), pts.row(n - 1));
        assert!(
            embedded_span > chord * 1.5,
            "embedded span {embedded_span} should exceed chord {chord}"
        );
    }

    #[test]
    fn disconnected_data_restricts_to_largest_component() {
        // Two far-apart clusters, k=1: graph splits. Within-cluster gaps
        // shrink monotonically so each point's single nearest neighbor
        // chains the cluster together without relying on tie-breaking.
        let mut data = Matrix::zeros(9, 1);
        for (i, &x) in [0.0, 1.0, 1.9, 2.7, 3.4, 4.0].iter().enumerate() {
            data[(i, 0)] = x;
        }
        for (i, &x) in [1000.0, 1000.5, 1001.5].iter().enumerate() {
            data[(6 + i, 0)] = x;
        }
        let iso = Isomap::fit(&data, 1, 1, 0).unwrap();
        assert_eq!(iso.retained_indices(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(iso.embedding().rows(), 6);
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = Matrix::zeros(5, 2);
        assert!(Isomap::fit(&data, 5, 1, 0).is_err());
        let line = Matrix::from_fn(10, 1, |i, _| i as f64);
        assert!(Isomap::fit(&line, 2, 0, 0).is_err());
        assert!(Isomap::fit(&line, 2, 11, 0).is_err());
    }

    #[test]
    fn transform_batch_shape() {
        let data = Matrix::from_fn(12, 2, |i, j| (i * (j + 1)) as f64 * 0.3);
        let iso = Isomap::fit(&data, 3, 2, 5).unwrap();
        let q = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        assert_eq!(iso.transform(&q).shape(), (4, 2));
        assert_eq!(iso.dim(), 2);
        assert_eq!(iso.k(), 3);
    }
}
