//! Nearest-neighbor search: brute force and a k-d tree.
//!
//! Distances are ordered with [`f64::total_cmp`] throughout, so `NaN`
//! distances (real RSSI traces contain missing APs) sort *after* every
//! finite distance instead of panicking mid-sort.

use noble_linalg::threads::{num_threads, parallel_chunks_mut, parallel_map_ranges};
use noble_linalg::{euclidean_distance, Matrix};

/// Row count above which [`pairwise_distances`] fans out over scoped
/// threads (the kernel is `O(n^2 d)`; small inputs stay serial).
const PARALLEL_PAIRWISE_MIN_ROWS: usize = 64;

/// Full pairwise Euclidean distance matrix between the rows of `data`.
///
/// Above a small row threshold the strict upper triangle is computed in
/// parallel over row chunks (worker count
/// from [`num_threads`]) and mirrored afterwards; entries are identical
/// regardless of thread count since each is computed independently.
pub fn pairwise_distances(data: &Matrix) -> Matrix {
    let n = data.rows();
    let mut d = Matrix::zeros(n, n);
    let threads = if n >= PARALLEL_PAIRWISE_MIN_ROWS {
        num_threads()
    } else {
        1
    };
    // One row per chunk: round-robin dealing interleaves short (late)
    // and long (early) triangle rows across workers, so the load stays
    // balanced even though row i holds n-i-1 entries. The mirror pass
    // below is a cheap copy.
    parallel_chunks_mut(d.as_mut_slice(), n.max(1), threads, |i, row| {
        for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
            *slot = euclidean_distance(data.row(i), data.row(j));
        }
    });
    for i in 0..n {
        for j in (i + 1)..n {
            d[(j, i)] = d[(i, j)];
        }
    }
    d
}

/// Brute-force k-nearest-neighbor query against the rows of `data`.
///
/// Returns up to `k` `(row_index, distance)` pairs sorted by distance;
/// `NaN` distances sort last. A row exactly equal to `query` is
/// *included* (callers that search a dataset for one of its own rows
/// should ask for `k + 1` and drop the self-match).
pub fn knn_brute(data: &Matrix, query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = (0..data.rows())
        .map(|i| (i, euclidean_distance(data.row(i), query)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1));
    all.truncate(k);
    all
}

/// A k-d tree over the rows of a matrix for `O(log n)` expected-time
/// nearest-neighbor queries.
///
/// Built once from a dataset; nodes split on the dimension of maximum
/// spread at the median. Query results are identical to [`knn_brute`].
///
/// # Example
///
/// ```
/// use noble_linalg::Matrix;
/// use noble_manifold::KdTree;
///
/// let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![1.0, 1.0]]).unwrap();
/// let tree = KdTree::build(&data);
/// let hits = tree.knn(&[0.9, 0.9], 2);
/// assert_eq!(hits[0].0, 2);
/// assert_eq!(hits[1].0, 0);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Matrix,
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    point_index: usize,
    split_dim: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Builds a tree over the rows of `data`. An empty matrix yields an
    /// empty tree that returns no neighbors.
    pub fn build(data: &Matrix) -> Self {
        let mut tree = KdTree {
            points: data.clone(),
            nodes: Vec::with_capacity(data.rows()),
            root: None,
        };
        let mut indices: Vec<usize> = (0..data.rows()).collect();
        tree.root = tree.build_recursive(&mut indices);
        tree
    }

    /// The indexed points, row `i` being the point queries report as
    /// index `i`. [`KdTree::build`] is deterministic, so serializing this
    /// matrix and rebuilding reproduces the tree (and its query results)
    /// exactly.
    pub fn points(&self) -> &Matrix {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn build_recursive(&mut self, indices: &mut [usize]) -> Option<usize> {
        if indices.is_empty() {
            return None;
        }
        let dim = self.widest_dimension(indices);
        // total_cmp: NaN coordinates (missing APs) sort to one end instead
        // of panicking; the tree stays valid for the finite rows.
        indices.sort_by(|&a, &b| self.points[(a, dim)].total_cmp(&self.points[(b, dim)]));
        let mid = indices.len() / 2;
        let point_index = indices[mid];
        let node_index = self.nodes.len();
        self.nodes.push(Node {
            point_index,
            split_dim: dim,
            left: None,
            right: None,
        });
        // Split buffers around the median; recursion owns each side.
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = self.build_recursive(&mut left_slice.to_vec());
        let right = self.build_recursive(&mut right_slice.to_vec());
        self.nodes[node_index].left = left;
        self.nodes[node_index].right = right;
        Some(node_index)
    }

    fn widest_dimension(&self, indices: &[usize]) -> usize {
        let d = self.points.cols();
        let mut best_dim = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for j in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices {
                let v = self.points[(i, j)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_dim = j;
            }
        }
        best_dim
    }

    /// The `k` nearest neighbors of `query` as `(row_index, distance)`
    /// pairs sorted by distance.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the indexed dimensionality
    /// (for a non-empty tree).
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        assert_eq!(
            query.len(),
            self.points.cols(),
            "query dimension {} != indexed dimension {}",
            query.len(),
            self.points.cols()
        );
        // Max-heap of the best k (store negated distance comparisons via Vec
        // kept sorted; k is small in all our uses).
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        self.search(self.root, query, k, &mut best);
        best
    }

    fn search(&self, node: Option<usize>, query: &[f64], k: usize, best: &mut Vec<(usize, f64)>) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        let point = self.points.row(n.point_index);
        let dist = euclidean_distance(point, query);
        // Insert into the sorted best list; total_cmp keeps NaN distances
        // at the tail instead of panicking.
        let pos = best
            .binary_search_by(|probe| probe.1.total_cmp(&dist))
            .unwrap_or_else(|p| p);
        best.insert(pos, (n.point_index, dist));
        best.truncate(k);

        let diff = query[n.split_dim] - point[n.split_dim];
        let (near, far) = if diff < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search(near, query, k, best);
        // Prune the far side unless the splitting plane is within the
        // current worst distance (or we still lack k results, or either
        // bound is NaN — a NaN split coordinate or NaN worst "distance"
        // gives no pruning information and must never drop finite hits).
        let worst = best.last().map(|b| b.1).unwrap_or(f64::INFINITY);
        if best.len() < k || diff.abs() < worst || worst.is_nan() || diff.is_nan() {
            self.search(far, query, k, best);
        }
    }

    /// Batched k-nearest-neighbor queries: one result list per row of
    /// `queries`, computed in parallel over row chunks with scoped threads
    /// (worker count from [`num_threads`]). Each entry equals
    /// `self.knn(queries.row(i), k)` exactly — queries are independent, so
    /// results do not depend on the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `queries.cols()` differs from the indexed dimensionality
    /// (for a non-empty tree).
    pub fn knn_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<(usize, f64)>> {
        let chunks = parallel_map_ranges(queries.rows(), num_threads(), |range| {
            range
                .map(|i| self.knn(queries.row(i), k))
                .collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen_range(-10.0..10.0))
    }

    #[test]
    fn pairwise_symmetric_zero_diagonal() {
        let data = random_data(8, 3, 1);
        let d = pairwise_distances(&data);
        assert!(d.is_symmetric(1e-12));
        for i in 0..8 {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    fn brute_force_finds_nearest() {
        let data = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![3.0]]).unwrap();
        let hits = knn_brute(&data, &[2.5], 2);
        assert_eq!(hits[0].0, 2);
        assert_eq!(hits[1].0, 0);
        assert!((hits[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brute_force_k_larger_than_n() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(knn_brute(&data, &[0.0], 10).len(), 2);
    }

    #[test]
    fn kdtree_matches_brute_force() {
        let data = random_data(200, 4, 7);
        let tree = KdTree::build(&data);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..25 {
            let q: Vec<f64> = (0..4).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let brute = knn_brute(&data, &q, 5);
            let fast = tree.knn(&q, 5);
            assert_eq!(fast.len(), 5);
            for (b, f) in brute.iter().zip(&fast) {
                assert!(
                    (b.1 - f.1).abs() < 1e-9,
                    "distance mismatch: brute {b:?} vs kdtree {f:?}"
                );
            }
        }
    }

    #[test]
    fn nan_features_sort_last_instead_of_panicking() {
        // Regression: the sort comparator used partial_cmp().expect(),
        // which panicked on the first NaN distance. Real RSSI traces have
        // missing APs, so NaN rows must degrade gracefully instead.
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![3.0, 0.0],
            vec![1.0, 0.0],
        ])
        .unwrap();
        let hits = knn_brute(&data, &[0.1, 0.0], 4);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 3);
        assert_eq!(hits[2].0, 2);
        assert_eq!(hits[3].0, 1, "NaN row must sort last");
        assert!(hits[3].1.is_nan());
        // Asking for fewer neighbors never surfaces the NaN row.
        assert!(knn_brute(&data, &[0.1, 0.0], 3)
            .iter()
            .all(|h| h.1.is_finite()));

        // The k-d tree accepts the same data without panicking and keeps
        // finite rows ahead of the NaN row.
        let tree = KdTree::build(&data);
        let tree_hits = tree.knn(&[0.1, 0.0], 4);
        assert_eq!(tree_hits.len(), 4);
        assert_eq!(tree_hits[0].0, 0);
        assert!(tree_hits[..3].iter().all(|h| h.1.is_finite()));
        assert!(tree_hits[3].1.is_nan());

        // A NaN query degrades to "everything is NaN" without crashing.
        let nan_query = knn_brute(&data, &[f64::NAN, 0.0], 2);
        assert_eq!(nan_query.len(), 2);
        assert!(tree.knn(&[f64::NAN, 0.0], 2).len() == 2);
    }

    #[test]
    fn kdtree_nan_split_node_does_not_prune_finite_neighbors() {
        // Regression: when NaN rows outnumber finite rows in a subtree,
        // the median (internal) node itself has a NaN coordinate, making
        // the plane distance NaN; the pruning test must then visit both
        // children or finite true neighbors are silently dropped.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![100.0],
            vec![101.0],
            vec![102.0],
            vec![103.0],
            vec![f64::NAN],
            vec![f64::NAN],
            vec![f64::NAN],
        ])
        .unwrap();
        let tree = KdTree::build(&data);
        let hits = tree.knn(&[103.5], 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 5, "true nearest neighbor 103.0 was pruned");
        assert!((hits[0].1 - 0.5).abs() < 1e-12);
        // And the tree still agrees with brute force on the finite rows.
        let brute = knn_brute(&data, &[103.5], 3);
        let fast = tree.knn(&[103.5], 3);
        for (b, f) in brute.iter().zip(&fast) {
            assert_eq!(b.0, f.0);
        }
    }

    #[test]
    fn knn_batch_matches_sequential_queries() {
        let data = random_data(120, 3, 11);
        let tree = KdTree::build(&data);
        let queries = random_data(37, 3, 12);
        for threads in [1, 2, 4] {
            noble_linalg::set_num_threads(threads);
            let batched = tree.knn_batch(&queries, 4);
            assert_eq!(batched.len(), queries.rows());
            for (i, hits) in batched.iter().enumerate() {
                assert_eq!(hits, &tree.knn(queries.row(i), 4), "query {i}");
            }
        }
        noble_linalg::set_num_threads(0);
        assert!(tree.knn_batch(&Matrix::zeros(0, 3), 4).is_empty());
    }

    #[test]
    fn pairwise_distances_thread_invariant() {
        let data = random_data(80, 4, 21);
        noble_linalg::set_num_threads(1);
        let serial = pairwise_distances(&data);
        noble_linalg::set_num_threads(4);
        let parallel = pairwise_distances(&data);
        noble_linalg::set_num_threads(0);
        assert_eq!(serial, parallel);
        assert!(serial.is_symmetric(0.0));
    }

    #[test]
    fn kdtree_exact_match_distance_zero() {
        let data = random_data(50, 3, 3);
        let tree = KdTree::build(&data);
        let q: Vec<f64> = data.row(17).to_vec();
        let hits = tree.knn(&q, 1);
        assert_eq!(hits[0].0, 17);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn kdtree_empty_and_zero_k() {
        let empty = KdTree::build(&Matrix::zeros(0, 3));
        assert!(empty.is_empty());
        assert!(empty.knn(&[0.0, 0.0, 0.0], 3).is_empty());
        let tree = KdTree::build(&random_data(5, 2, 0));
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
        assert_eq!(tree.len(), 5);
    }

    #[test]
    #[should_panic(expected = "query dimension")]
    fn kdtree_rejects_wrong_dimension() {
        let tree = KdTree::build(&random_data(5, 3, 0));
        tree.knn(&[0.0, 0.0], 1);
    }

    #[test]
    fn kdtree_duplicate_points() {
        let data = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let tree = KdTree::build(&data);
        let hits = tree.knn(&[1.0, 1.0], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, 0.0);
        assert_eq!(hits[1].1, 0.0);
    }
}
