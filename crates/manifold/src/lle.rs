//! Locally linear embedding \[Roweis & Saul, Science 2000\].
//!
//! Step 2 of the paper's manifold-learning template specializes to LLE's
//! local reconstruction weights (a small regularized Gram solve per point);
//! step 3 takes the *bottom* eigenvectors of `(I - W)ᵀ(I - W)`. New points
//! embed barycentrically: reconstruct the query from its training
//! neighbors with the same weight computation, then combine the neighbors'
//! embeddings.

use crate::{knn_brute, ManifoldError};
use noble_linalg::{jacobi_eigen, smallest_eigenpairs, solve, EigenSort, Matrix};

/// A fitted LLE embedding with barycentric out-of-sample extension.
#[derive(Debug, Clone)]
pub struct Lle {
    data: Matrix,
    embedding: Matrix,
    k: usize,
    dim: usize,
    reg: f64,
}

impl Lle {
    /// Fits LLE on the rows of `data` with `k` neighbors, `dim` output
    /// dimensions and regularization `reg` (relative to the local Gram
    /// trace; `1e-3` is the customary default).
    ///
    /// # Errors
    ///
    /// - [`ManifoldError::TooFewPoints`] when `data.rows() <= k` or `k == 0`.
    /// - [`ManifoldError::BadDimension`] when `dim` is zero or
    ///   `dim + 1 > data.rows()`.
    /// - Propagates linear-algebra failures.
    pub fn fit(
        data: &Matrix,
        k: usize,
        dim: usize,
        reg: f64,
        seed: u64,
    ) -> Result<Self, ManifoldError> {
        let n = data.rows();
        if n <= k || k == 0 {
            return Err(ManifoldError::TooFewPoints { points: n, k });
        }
        if dim == 0 || dim + 1 > n {
            return Err(ManifoldError::BadDimension {
                dim,
                max: n.saturating_sub(1),
            });
        }

        // Reconstruction weights W: each row i reconstructs x_i from its k
        // nearest neighbors.
        let mut w = Matrix::zeros(n, n);
        for i in 0..n {
            let neighbors: Vec<usize> = knn_brute(data, data.row(i), k + 1)
                .into_iter()
                .filter(|&(j, _)| j != i)
                .take(k)
                .map(|(j, _)| j)
                .collect();
            let weights = local_weights(data, i, &neighbors, reg)?;
            for (w_ij, &j) in weights.iter().zip(&neighbors) {
                w[(i, j)] = *w_ij;
            }
        }

        // M = (I - W)^T (I - W)
        let mut iw = w.scale(-1.0);
        for i in 0..n {
            iw[(i, i)] += 1.0;
        }
        let m = iw.transpose().matmul(&iw)?;

        // Bottom dim+1 eigenvectors; drop the constant (near-zero eigenvalue)
        // one. Power iteration with spectral shift first; Jacobi fallback for
        // clustered spectra.
        let pairs = match smallest_eigenpairs(&m, dim + 1, seed) {
            Ok(p) if p.len() == dim + 1 => p,
            // Clustered bottom spectra can stall power iteration; Jacobi is
            // slower but unconditionally robust for these sizes.
            _ => jacobi_eigen(&m, EigenSort::Ascending)
                .map_err(ManifoldError::from)?
                .into_iter()
                .take(dim + 1)
                .collect(),
        };

        let mut embedding = Matrix::zeros(n, dim);
        for (col, pair) in pairs.iter().skip(1).take(dim).enumerate() {
            for i in 0..n {
                embedding[(i, col)] = pair.vector[i] * (n as f64).sqrt();
            }
        }
        Ok(Lle {
            data: data.clone(),
            embedding,
            k,
            dim,
            reg,
        })
    }

    /// The `(n, dim)` training embedding.
    pub fn embedding(&self) -> &Matrix {
        &self.embedding
    }

    /// Neighborhood size used at fit time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds one new point barycentrically.
    pub fn transform_point(&self, query: &[f64]) -> Vec<f64> {
        let neighbors: Vec<usize> = knn_brute(&self.data, query, self.k)
            .into_iter()
            .map(|(j, _)| j)
            .collect();
        let weights = local_weights_for_query(&self.data, query, &neighbors, self.reg)
            .unwrap_or_else(|_| vec![1.0 / neighbors.len() as f64; neighbors.len()]);
        let mut out = vec![0.0; self.dim];
        for (w, &j) in weights.iter().zip(&neighbors) {
            for (o, &e) in out.iter_mut().zip(self.embedding.row(j)) {
                *o += w * e;
            }
        }
        out
    }

    /// Embeds every row of `queries`; returns an `(m, dim)` matrix.
    pub fn transform(&self, queries: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(queries.rows(), self.dim);
        for i in 0..queries.rows() {
            let row = self.transform_point(queries.row(i));
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

/// Solves the regularized local reconstruction weights of training row `i`.
fn local_weights(
    data: &Matrix,
    i: usize,
    neighbors: &[usize],
    reg: f64,
) -> Result<Vec<f64>, ManifoldError> {
    local_weights_for_query(data, data.row(i), neighbors, reg)
}

/// Solves `min_w ||q - sum_j w_j x_j||^2 s.t. sum w = 1` via the local Gram
/// system `(G + reg*tr(G)/k * I) w = 1`, then normalizes.
fn local_weights_for_query(
    data: &Matrix,
    query: &[f64],
    neighbors: &[usize],
    reg: f64,
) -> Result<Vec<f64>, ManifoldError> {
    let k = neighbors.len();
    let mut gram = Matrix::zeros(k, k);
    // Shifted neighbors z_j = x_j - q.
    let diffs: Vec<Vec<f64>> = neighbors
        .iter()
        .map(|&j| data.row(j).iter().zip(query).map(|(x, q)| x - q).collect())
        .collect();
    for a in 0..k {
        for b in a..k {
            let dot: f64 = diffs[a].iter().zip(&diffs[b]).map(|(x, y)| x * y).sum();
            gram[(a, b)] = dot;
            gram[(b, a)] = dot;
        }
    }
    let trace: f64 = (0..k).map(|a| gram[(a, a)]).sum();
    let ridge = if trace > 0.0 {
        reg * trace / k as f64
    } else {
        reg.max(1e-12)
    };
    for a in 0..k {
        gram[(a, a)] += ridge;
    }
    let ones = vec![1.0; k];
    let mut w = solve(&gram, &ones).map_err(ManifoldError::from)?;
    let sum: f64 = w.iter().sum();
    if sum.abs() > 1e-300 {
        for v in &mut w {
            *v /= sum;
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| if j == 0 { i as f64 } else { 0.0 })
    }

    #[test]
    fn weights_sum_to_one() {
        let data = line_data(10);
        let w = local_weights(&data, 5, &[4, 6, 3], 1e-3).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn weights_reconstruct_interior_point() {
        let data = line_data(10);
        // Point 5 from neighbors 4 and 6: weights 0.5 / 0.5 reconstruct exactly.
        let w = local_weights(&data, 5, &[4, 6], 1e-6).unwrap();
        assert!((w[0] - 0.5).abs() < 1e-3);
        assert!((w[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn fit_preserves_line_ordering() {
        let data = line_data(20);
        let lle = Lle::fit(&data, 3, 1, 1e-3, 9).unwrap();
        let e = lle.embedding();
        // A line must embed monotonically (up to sign).
        let col: Vec<f64> = (0..20).map(|i| e[(i, 0)]).collect();
        let increasing = col.windows(2).all(|w| w[1] > w[0]);
        let decreasing = col.windows(2).all(|w| w[1] < w[0]);
        assert!(
            increasing || decreasing,
            "line embedding should be monotone, got {col:?}"
        );
    }

    #[test]
    fn embedding_is_centered_and_scaled() {
        let data = line_data(16);
        let lle = Lle::fit(&data, 3, 1, 1e-3, 3).unwrap();
        let col = lle.embedding().column(0);
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn transform_interpolates_between_neighbors() {
        let data = line_data(20);
        let lle = Lle::fit(&data, 3, 1, 1e-3, 17).unwrap();
        // Query halfway between points 7 and 8.
        let q = [7.5, 0.0];
        let t = lle.transform_point(&q)[0];
        let e7 = lle.embedding()[(7, 0)];
        let e8 = lle.embedding()[(8, 0)];
        let lo = e7.min(e8) - 0.35 * (e8 - e7).abs();
        let hi = e7.max(e8) + 0.35 * (e8 - e7).abs();
        assert!(t > lo && t < hi, "transform {t} not between {e7} and {e8}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = line_data(5);
        assert!(Lle::fit(&data, 5, 1, 1e-3, 0).is_err());
        assert!(Lle::fit(&data, 0, 1, 1e-3, 0).is_err());
        assert!(Lle::fit(&data, 2, 0, 1e-3, 0).is_err());
        assert!(Lle::fit(&data, 2, 5, 1e-3, 0).is_err());
    }

    #[test]
    fn transform_batch_shape() {
        let data = line_data(12);
        let lle = Lle::fit(&data, 3, 1, 1e-3, 2).unwrap();
        let q = Matrix::from_fn(3, 2, |i, _| i as f64 + 0.25);
        assert_eq!(lle.transform(&q).shape(), (3, 1));
        assert_eq!(lle.k(), 3);
        assert_eq!(lle.dim(), 1);
    }
}
