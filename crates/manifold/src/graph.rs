//! Symmetric k-nearest-neighbor graphs and geodesic (shortest-path)
//! distances — step 1 and step 2 of the Isomap template the paper
//! describes in §II.

use crate::{knn_brute, ManifoldError};
use noble_linalg::Matrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A weighted undirected graph over data points, stored as adjacency
/// lists.
#[derive(Debug, Clone)]
pub struct NeighborGraph {
    adj: Vec<Vec<(usize, f64)>>,
}

impl NeighborGraph {
    /// Builds the symmetric kNN graph of the rows of `data`: an edge
    /// `(i, j)` exists when `j` is among `i`'s `k` nearest neighbors *or*
    /// vice versa, weighted by Euclidean distance.
    ///
    /// # Errors
    ///
    /// Returns [`ManifoldError::TooFewPoints`] when `data.rows() <= k`.
    pub fn knn_graph(data: &Matrix, k: usize) -> Result<Self, ManifoldError> {
        let n = data.rows();
        if n <= k || k == 0 {
            return Err(ManifoldError::TooFewPoints { points: n, k });
        }
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            // k+1 because the row itself is returned at distance 0.
            for (j, d) in knn_brute(data, data.row(i), k + 1) {
                if j == i {
                    continue;
                }
                if !adj[i].iter().any(|&(e, _)| e == j) {
                    adj[i].push((j, d));
                }
                if !adj[j].iter().any(|&(e, _)| e == i) {
                    adj[j].push((i, d));
                }
            }
        }
        Ok(NeighborGraph { adj })
    }

    /// Builds a graph from explicit undirected edges.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b, w) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        NeighborGraph { adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of vertex `i` as `(vertex, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adj[i]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Component label of every vertex (labels are dense from 0).
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.len();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            label[start] = next;
            while let Some(v) = stack.pop() {
                for &(u, _) in &self.adj[v] {
                    if label[u] == usize::MAX {
                        label[u] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Indices of the largest connected component (ties break toward the
    /// lowest label).
    pub fn largest_component(&self) -> Vec<usize> {
        let labels = self.connected_components();
        let count = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
        let mut sizes = vec![0usize; count];
        for &l in &labels {
            sizes[l] += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l)
            .unwrap_or(0);
        (0..self.len()).filter(|&i| labels[i] == best).collect()
    }

    /// Restricts the graph to a vertex subset (vertices renumbered in the
    /// order given).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> NeighborGraph {
        let mut remap = vec![usize::MAX; self.len()];
        for (new, &old) in vertices.iter().enumerate() {
            assert!(old < self.len(), "vertex out of range");
            remap[old] = new;
        }
        let adj = vertices
            .iter()
            .map(|&old| {
                self.adj[old]
                    .iter()
                    .filter_map(|&(u, w)| (remap[u] != usize::MAX).then_some((remap[u], w)))
                    .collect()
            })
            .collect();
        NeighborGraph { adj }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Single-source shortest-path distances by Dijkstra's algorithm.
/// Unreachable vertices get `f64::INFINITY`.
///
/// # Panics
///
/// Panics when `source >= graph.len()`.
pub fn dijkstra(graph: &NeighborGraph, source: usize) -> Vec<f64> {
    assert!(source < graph.len(), "source out of range");
    let mut dist = vec![f64::INFINITY; graph.len()];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &(u, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: u,
                });
            }
        }
    }
    dist
}

/// Number of sources below which the all-pairs sweep stays serial (the
/// per-call scoped-thread spawn would outweigh the Dijkstra work).
const PARALLEL_GEODESIC_MIN_SOURCES: usize = 64;

/// All-pairs geodesic distance matrix (Dijkstra from every vertex).
///
/// Sources are independent, so on graphs with at least
/// `PARALLEL_GEODESIC_MIN_SOURCES` vertices the sweep fans the sources out
/// over [`noble_linalg::parallel_map_ranges`] (worker count from
/// [`noble_linalg::num_threads`]). Each source's row is written by exactly
/// one worker running the identical serial algorithm, so the result is
/// bit-identical to the serial sweep at any thread count.
///
/// # Errors
///
/// Returns [`ManifoldError::Disconnected`] when the graph has more than one
/// component — geodesic MDS is undefined across components; restrict to
/// [`NeighborGraph::largest_component`] first.
pub fn geodesic_distances(graph: &NeighborGraph) -> Result<Matrix, ManifoldError> {
    let labels = graph.connected_components();
    let components = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
    if components > 1 {
        return Err(ManifoldError::Disconnected { components });
    }
    let n = graph.len();
    let mut d = Matrix::zeros(n, n);
    let threads = noble_linalg::num_threads();
    if threads > 1 && n >= PARALLEL_GEODESIC_MIN_SOURCES {
        let row_blocks = noble_linalg::parallel_map_ranges(n, threads, |range| {
            range
                .map(|source| dijkstra(graph, source))
                .collect::<Vec<_>>()
        });
        for (i, row) in row_blocks.into_iter().flatten().enumerate() {
            d.row_mut(i).copy_from_slice(&row);
        }
    } else {
        for i in 0..n {
            let row = dijkstra(graph, i);
            d.row_mut(i).copy_from_slice(&row);
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> NeighborGraph {
        NeighborGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5)])
    }

    #[test]
    fn dijkstra_path_distances() {
        let g = path_graph();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.5]);
    }

    #[test]
    fn dijkstra_prefers_shortcut() {
        let g = NeighborGraph::from_edges(3, &[(0, 1, 5.0), (1, 2, 5.0), (0, 2, 1.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], 1.0);
        assert_eq!(d[1], 5.0);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = NeighborGraph::from_edges(3, &[(0, 1, 1.0)]);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn geodesic_matrix_symmetric() {
        let g = path_graph();
        let m = geodesic_distances(&g).unwrap();
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m[(0, 3)], 4.5);
    }

    #[test]
    fn geodesic_rejects_disconnected() {
        let g = NeighborGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(matches!(
            geodesic_distances(&g),
            Err(ManifoldError::Disconnected { components: 2 })
        ));
    }

    #[test]
    fn knn_graph_connects_line() {
        let data = Matrix::from_fn(10, 1, |i, _| i as f64);
        let g = NeighborGraph::knn_graph(&data, 2).unwrap();
        assert_eq!(g.len(), 10);
        let labels = g.connected_components();
        assert!(
            labels.iter().all(|&l| l == 0),
            "a line with k=2 is connected"
        );
        // Geodesic 0 -> 9 should be exactly 9 (sum of unit steps).
        let m = geodesic_distances(&g).unwrap();
        assert!((m[(0, 9)] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_geodesic_matches_serial() {
        // Big enough to cross PARALLEL_GEODESIC_MIN_SOURCES: a 2-D point
        // cloud whose kNN graph is connected.
        let n = 80;
        let data = Matrix::from_fn(n, 2, |i, j| {
            let a = i as f64 * 0.37 + j as f64;
            a.sin() * 3.0 + i as f64 * 0.05
        });
        let g = NeighborGraph::knn_graph(&data, 6).unwrap();
        let g = g.induced_subgraph(&g.largest_component());
        // Serial reference computed directly, one Dijkstra per source.
        let mut serial = Matrix::zeros(g.len(), g.len());
        for i in 0..g.len() {
            serial.row_mut(i).copy_from_slice(&dijkstra(&g, i));
        }
        for threads in [1, 2, 5] {
            noble_linalg::set_num_threads(threads);
            let parallel = geodesic_distances(&g).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
        noble_linalg::set_num_threads(0);
    }

    #[test]
    fn knn_graph_rejects_small_n() {
        let data = Matrix::zeros(3, 2);
        assert!(NeighborGraph::knn_graph(&data, 3).is_err());
        assert!(NeighborGraph::knn_graph(&data, 0).is_err());
    }

    #[test]
    fn knn_graph_is_symmetric_structure() {
        let data = Matrix::from_fn(20, 2, |i, j| ((i * 13 + j * 7) % 17) as f64);
        let g = NeighborGraph::knn_graph(&data, 3).unwrap();
        for i in 0..g.len() {
            for &(j, w) in g.neighbors(i) {
                assert!(
                    g.neighbors(j)
                        .iter()
                        .any(|&(b, bw)| b == i && (bw - w).abs() < 1e-12),
                    "edge ({i},{j}) missing its mirror"
                );
            }
        }
    }

    #[test]
    fn largest_component_picks_bigger_side() {
        let g = NeighborGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        assert_eq!(g.largest_component(), vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = NeighborGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let s = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.edge_count(), 2);
        // Old vertex 1 is new vertex 0; its only surviving neighbor is old 2 (new 1).
        assert_eq!(s.neighbors(0), &[(1, 2.0)]);
    }

    #[test]
    fn edge_count_counts_undirected_edges() {
        assert_eq!(path_graph().edge_count(), 3);
    }
}
