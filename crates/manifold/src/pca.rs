//! Principal component analysis.
//!
//! The linear-projection reference point for the manifold baselines: if
//! Isomap/LLE cannot beat PCA on a task, the nonlinear neighborhood
//! structure was not informative. Implemented as the top eigenpairs of the
//! sample covariance matrix.

use crate::ManifoldError;
use noble_linalg::{top_eigenpairs, Matrix};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `(d, dim)` projection matrix (columns are components).
    components: Matrix,
    /// Variance captured by each retained component.
    explained: Vec<f64>,
}

impl Pca {
    /// Fits PCA on the rows of `data`, retaining `dim` components.
    ///
    /// # Errors
    ///
    /// - [`ManifoldError::TooFewPoints`] for an empty matrix.
    /// - [`ManifoldError::BadDimension`] when `dim` is zero or exceeds the
    ///   feature dimension.
    /// - Propagates eigensolver failures.
    pub fn fit(data: &Matrix, dim: usize, seed: u64) -> Result<Self, ManifoldError> {
        let n = data.rows();
        let d = data.cols();
        if n == 0 {
            return Err(ManifoldError::TooFewPoints { points: 0, k: 1 });
        }
        if dim == 0 || dim > d {
            return Err(ManifoldError::BadDimension { dim, max: d });
        }
        let mean = data.column_means();
        // Covariance (d x d), computed as (X - mu)^T (X - mu) / n.
        let mut centered = data.clone();
        for i in 0..n {
            for (v, m) in centered.row_mut(i).iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        let cov = centered
            .transpose()
            .matmul(&centered)
            .map_err(ManifoldError::from)?
            .scale(1.0 / n as f64);
        let pairs = top_eigenpairs(&cov, dim, seed)?;
        let mut components = Matrix::zeros(d, dim);
        let mut explained = Vec::with_capacity(dim);
        for (c, pair) in pairs.iter().enumerate() {
            for r in 0..d {
                components[(r, c)] = pair.vector[r];
            }
            explained.push(pair.value.max(0.0));
        }
        Ok(Pca {
            mean,
            components,
            explained,
        })
    }

    /// Number of retained components.
    pub fn dim(&self) -> usize {
        self.components.cols()
    }

    /// Variance captured by each retained component, in order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Projects one point into the principal subspace.
    pub fn transform_point(&self, x: &[f64]) -> Vec<f64> {
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        (0..self.dim())
            .map(|c| {
                centered
                    .iter()
                    .enumerate()
                    .map(|(r, v)| v * self.components[(r, c)])
                    .sum()
            })
            .collect()
    }

    /// Projects every row of `data`.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.dim());
        for i in 0..data.rows() {
            let row = self.transform_point(data.row(i));
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }

    /// Reconstructs a projected point back in the original space.
    pub fn inverse_transform_point(&self, z: &[f64]) -> Vec<f64> {
        let d = self.mean.len();
        let mut out = self.mean.clone();
        for (c, &zc) in z.iter().enumerate().take(self.dim()) {
            for (r, o) in out.iter_mut().enumerate().take(d) {
                *o += zc * self.components[(r, c)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data along the diagonal y = x with small orthogonal noise.
    fn diagonal_data(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| {
            let t = i as f64 / n as f64 * 10.0;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            if j == 0 {
                t + noise
            } else {
                t - noise
            }
        })
    }

    #[test]
    fn first_component_follows_diagonal() {
        let data = diagonal_data(50);
        let pca = Pca::fit(&data, 1, 3).unwrap();
        // Component should be ~(1/sqrt2, 1/sqrt2) up to sign.
        let c0 = (pca.components[(0, 0)], pca.components[(1, 0)]);
        assert!(
            (c0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "component {c0:?}"
        );
        assert!((c0.0 - c0.1).abs() < 0.02, "diagonal components equal");
    }

    #[test]
    fn explained_variance_ordered() {
        let data = diagonal_data(50);
        let pca = Pca::fit(&data, 2, 3).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] > ev[1]);
        assert!(ev[1] >= 0.0);
        // Diagonal direction dominates by construction.
        assert!(ev[0] / (ev[1] + 1e-12) > 100.0);
    }

    #[test]
    fn transform_centers_data() {
        let data = diagonal_data(40);
        let pca = Pca::fit(&data, 2, 1).unwrap();
        let z = pca.transform(&data);
        let means = z.column_means();
        assert!(
            means.iter().all(|m| m.abs() < 1e-9),
            "projected means {means:?}"
        );
    }

    #[test]
    fn round_trip_reconstruction() {
        // Full-dimensional PCA reconstructs exactly.
        let data = diagonal_data(30);
        let pca = Pca::fit(&data, 2, 1).unwrap();
        for i in [0usize, 7, 29] {
            let z = pca.transform_point(data.row(i));
            let back = pca.inverse_transform_point(&z);
            for (a, b) in back.iter().zip(data.row(i)) {
                assert!((a - b).abs() < 1e-5, "reconstruction {a} vs {b}");
            }
        }
    }

    #[test]
    fn rejects_bad_dimensions() {
        let data = diagonal_data(10);
        assert!(Pca::fit(&data, 0, 0).is_err());
        assert!(Pca::fit(&data, 3, 0).is_err());
        assert!(Pca::fit(&Matrix::zeros(0, 2), 1, 0).is_err());
    }

    #[test]
    fn reduction_loses_orthogonal_noise_only() {
        let data = diagonal_data(60);
        let pca = Pca::fit(&data, 1, 5).unwrap();
        let z = pca.transform(&data);
        for i in [0usize, 30, 59] {
            let back = pca.inverse_transform_point(z.row(i));
            // Reconstruction stays within the noise amplitude of the truth.
            for (a, b) in back.iter().zip(data.row(i)) {
                assert!(
                    (a - b).abs() < 0.12,
                    "lossy reconstruction too far: {a} vs {b}"
                );
            }
        }
    }
}
