use noble_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced by manifold-learning routines.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifoldError {
    /// Not enough data points for the requested neighborhood size.
    TooFewPoints {
        /// Points available.
        points: usize,
        /// Neighbors requested.
        k: usize,
    },
    /// The requested embedding dimension is infeasible.
    BadDimension {
        /// Requested dimension.
        dim: usize,
        /// Maximum feasible dimension.
        max: usize,
    },
    /// The neighborhood graph is disconnected and the operation requires a
    /// connected graph.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for ManifoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifoldError::TooFewPoints { points, k } => {
                write!(f, "{points} points cannot support k={k} neighborhoods")
            }
            ManifoldError::BadDimension { dim, max } => {
                write!(
                    f,
                    "embedding dimension {dim} exceeds the feasible maximum {max}"
                )
            }
            ManifoldError::Disconnected { components } => {
                write!(
                    f,
                    "neighborhood graph has {components} components; increase k"
                )
            }
            ManifoldError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for ManifoldError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ManifoldError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ManifoldError {
    fn from(e: LinalgError) -> Self {
        ManifoldError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ManifoldError::TooFewPoints { points: 2, k: 5 }
            .to_string()
            .contains("k=5"));
        assert!(ManifoldError::Disconnected { components: 3 }
            .to_string()
            .contains("3 components"));
        assert!(ManifoldError::BadDimension { dim: 9, max: 4 }
            .to_string()
            .contains("9"));
    }

    #[test]
    fn linalg_source() {
        let e: ManifoldError = LinalgError::Empty.into();
        assert!(Error::source(&e).is_some());
    }
}
