use noble_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor had the wrong shape for the operation.
    ShapeMismatch {
        /// What was being computed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension found.
        found: usize,
    },
    /// Training data was empty or degenerate.
    EmptyData,
    /// A configuration value was invalid (e.g. zero batch size).
    InvalidConfig(String),
    /// Loss diverged to a non-finite value.
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, found {found}"
            ),
            NnError::EmptyData => write!(f, "empty training data"),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::Diverged { epoch } => {
                write!(f, "training diverged to a non-finite loss at epoch {epoch}")
            }
            NnError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NnError {
    fn from(e: LinalgError) -> Self {
        NnError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NnError::ShapeMismatch {
            context: "dense forward",
            expected: 8,
            found: 4,
        };
        assert!(e.to_string().contains("dense forward"));
        assert!(NnError::EmptyData.to_string().contains("empty"));
        assert!(NnError::Diverged { epoch: 3 }
            .to_string()
            .contains("epoch 3"));
    }

    #[test]
    fn from_linalg_preserves_source() {
        let e: NnError = LinalgError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
