//! Gradient-descent update rules.

use crate::Param;

/// A first-order optimizer applied uniformly to every [`Param`].
///
/// Construct with [`Optimizer::sgd`], [`Optimizer::sgd_momentum`] or
/// [`Optimizer::adam`]; tune with the builder-style [`Optimizer::with_weight_decay`].
#[derive(Debug, Clone, PartialEq)]
pub struct Optimizer {
    rule: Rule,
    learning_rate: f64,
    weight_decay: f64,
    /// Adam step counter (bias correction).
    step: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    Sgd,
    Momentum { beta: f64 },
    Adam { beta1: f64, beta2: f64, eps: f64 },
}

impl Optimizer {
    /// Plain stochastic gradient descent.
    pub fn sgd(learning_rate: f64) -> Self {
        Optimizer {
            rule: Rule::Sgd,
            learning_rate,
            weight_decay: 0.0,
            step: 0,
        }
    }

    /// SGD with classical momentum (`beta = 0.9`).
    pub fn sgd_momentum(learning_rate: f64) -> Self {
        Optimizer {
            rule: Rule::Momentum { beta: 0.9 },
            learning_rate,
            weight_decay: 0.0,
            step: 0,
        }
    }

    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyper-parameters.
    pub fn adam(learning_rate: f64) -> Self {
        Optimizer {
            rule: Rule::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            learning_rate,
            weight_decay: 0.0,
            step: 0,
        }
    }

    /// Adds decoupled L2 weight decay (applied directly to the value, not
    /// through the gradient; AdamW-style when combined with Adam).
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Replaces the learning rate (used by the trainer's decay schedule).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    /// Advances the shared step counter; call once per batch before
    /// updating parameters so Adam's bias correction is consistent.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Applies one update to a parameter in place and clears its gradient.
    pub fn update(&self, p: &mut Param) {
        let lr = self.learning_rate;
        match self.rule {
            Rule::Sgd => {
                for ((v, g), _) in p
                    .value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(p.grad.as_slice())
                    .zip(0..)
                {
                    *v -= lr * g;
                }
            }
            Rule::Momentum { beta } => {
                let n = p.value.as_slice().len();
                for i in 0..n {
                    let g = p.grad.as_slice()[i];
                    let m = beta * p.m.as_slice()[i] + g;
                    p.m.as_mut_slice()[i] = m;
                    p.value.as_mut_slice()[i] -= lr * m;
                }
            }
            Rule::Adam { beta1, beta2, eps } => {
                let t = self.step.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let n = p.value.as_slice().len();
                for i in 0..n {
                    let g = p.grad.as_slice()[i];
                    let m = beta1 * p.m.as_slice()[i] + (1.0 - beta1) * g;
                    let v = beta2 * p.v.as_slice()[i] + (1.0 - beta2) * g * g;
                    p.m.as_mut_slice()[i] = m;
                    p.v.as_mut_slice()[i] = v;
                    let m_hat = m / bc1;
                    let v_hat = v / bc2;
                    p.value.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
        if self.weight_decay > 0.0 {
            let decay = 1.0 - lr * self.weight_decay;
            for v in p.value.as_mut_slice() {
                *v *= decay;
            }
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_linalg::Matrix;

    fn quadratic_step(opt: &mut Optimizer, p: &mut Param) {
        // f(x) = x^2, grad = 2x
        let g: Vec<f64> = p.value.as_slice().iter().map(|v| 2.0 * v).collect();
        p.grad.as_mut_slice().copy_from_slice(&g);
        opt.begin_step();
        opt.update(p);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 5.0));
        let mut opt = Optimizer::sgd(0.1);
        for _ in 0..100 {
            quadratic_step(&mut opt, &mut p);
        }
        assert!(p.value[(0, 0)].abs() < 1e-6);
    }

    #[test]
    fn momentum_descends_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 5.0));
        let mut opt = Optimizer::sgd_momentum(0.02);
        for _ in 0..300 {
            quadratic_step(&mut opt, &mut p);
        }
        assert!(p.value[(0, 0)].abs() < 1e-4, "got {}", p.value[(0, 0)]);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 5.0));
        let mut opt = Optimizer::adam(0.3);
        for _ in 0..300 {
            quadratic_step(&mut opt, &mut p);
        }
        assert!(p.value[(0, 0)].abs() < 1e-3, "got {}", p.value[(0, 0)]);
    }

    #[test]
    fn update_clears_gradient() {
        let mut p = Param::new(Matrix::filled(1, 2, 1.0));
        p.grad.as_mut_slice().copy_from_slice(&[1.0, 1.0]);
        let opt = Optimizer::sgd(0.1);
        opt.update(&mut p);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Matrix::filled(1, 1, 10.0));
        let opt = Optimizer::sgd(0.1).with_weight_decay(1.0);
        // Zero gradient: only the decay acts.
        opt.update(&mut p);
        assert!((p.value[(0, 0)] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Optimizer::sgd(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    fn sgd_exact_first_step() {
        let mut p = Param::new(Matrix::filled(1, 1, 2.0));
        p.grad.as_mut_slice()[0] = 4.0;
        let opt = Optimizer::sgd(0.5);
        opt.update(&mut p);
        assert_eq!(p.value[(0, 0)], 0.0);
    }
}
