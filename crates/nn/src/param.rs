use noble_linalg::Matrix;

/// A trainable parameter tensor with its gradient and optimizer state.
///
/// Keeping the Adam/momentum moments inside the parameter avoids a separate
/// state registry keyed by parameter identity: the optimizer is a pure
/// update rule applied uniformly to every [`Param`] a network exposes.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient for the current step.
    pub grad: Matrix,
    /// First-moment buffer (momentum / Adam m).
    pub m: Matrix,
    /// Second-moment buffer (Adam v).
    pub v: Matrix,
}

impl Param {
    /// Wraps an initial value with zeroed gradient and moments.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters in this tensor.
    pub fn len(&self) -> usize {
        self.value.as_slice().len()
    }

    /// Whether this parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_zeroed_state() {
        let p = Param::new(Matrix::filled(2, 3, 1.5));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(p.m.as_slice().iter().all(|&g| g == 0.0));
        assert!(p.v.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad.as_mut_slice().copy_from_slice(&[1.0, -2.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
