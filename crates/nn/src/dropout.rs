//! Inverted dropout regularization.
//!
//! Not used by the paper's base models but exercised by the ablation
//! configurations; provided so capacity/regularization sweeps don't need
//! an external framework.

use crate::{NnError, Param};
use noble_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: in training mode, zeroes each activation with
/// probability `rate` and scales survivors by `1/(1-rate)`; in inference
/// mode it is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f64,
    rng: StdRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout stage.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `0 <= rate < 1`.
    pub fn new(rate: f64, seed: u64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(NnError::InvalidConfig(format!(
                "dropout rate {rate} outside [0, 1)"
            )));
        }
        Ok(Dropout {
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        })
    }

    /// Drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if self.rng.gen_range(0.0..1.0) < keep {
                scale
            } else {
                0.0
            }
        });
        let y = x.hadamard(&mask).expect("same shape by construction");
        self.mask = Some(mask);
        y
    }

    /// Backward pass: applies the cached mask to the gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when called before a
    /// training-mode forward pass (inference-mode forwards clear the mask).
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix, NnError> {
        match &self.mask {
            Some(mask) => Ok(grad_out.hadamard(mask)?),
            None => {
                if self.rate == 0.0 {
                    Ok(grad_out.clone())
                } else {
                    Err(NnError::InvalidConfig(
                        "dropout backward called before training forward".into(),
                    ))
                }
            }
        }
    }

    /// Dropout holds no trainable parameters; provided for interface
    /// symmetry with the other stages.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_rates() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(0.0, 0).is_ok());
        assert!(Dropout::new(0.99, 0).is_ok());
    }

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let x = Matrix::filled(4, 4, 2.0);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.4, 7).unwrap();
        let x = Matrix::filled(200, 50, 1.0);
        let y = d.forward(&x, true);
        let mean: f64 = y.as_slice().iter().sum::<f64>() / y.as_slice().len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        // Entries are either 0 or 1/keep.
        let keep_scale = 1.0 / 0.6;
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - keep_scale).abs() < 1e-12));
    }

    #[test]
    fn backward_masks_gradient_identically() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Matrix::filled(5, 5, 1.0);
        let y = d.forward(&x, true);
        let g = Matrix::filled(5, 5, 1.0);
        let gx = d.backward(&g).unwrap();
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        assert!(d.backward(&Matrix::zeros(1, 1)).is_err());
        // Rate 0 is exempt (identity).
        let mut d0 = Dropout::new(0.0, 3).unwrap();
        assert!(d0.backward(&Matrix::zeros(1, 1)).is_ok());
    }

    #[test]
    fn zero_rate_passthrough() {
        let mut d = Dropout::new(0.0, 0).unwrap();
        let x = Matrix::filled(3, 3, 5.0);
        assert_eq!(d.forward(&x, true), x);
        assert!(d.params_mut().is_empty());
        assert_eq!(d.rate(), 0.0);
    }
}
