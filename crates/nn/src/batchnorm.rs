//! Batch normalization \[Ioffe & Szegedy, ICML 2015\].
//!
//! The paper's networks use batch normalization between the dense layer and
//! the tanh activation. This implementation keeps running statistics for
//! inference mode and exposes trainable scale (`gamma`) and shift (`beta`).

use crate::{NnError, Param};
use noble_linalg::Matrix;

/// Batch normalization over the feature dimension of `(batch, dim)` inputs.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
    // Training-pass cache.
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Matrix,
    inv_std: Vec<f64>,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `dim` features with momentum 0.9 and
    /// epsilon `1e-5`.
    pub fn new(dim: usize) -> Self {
        BatchNorm {
            gamma: Param::new(Matrix::filled(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    /// Forward pass. In training mode, normalizes by batch statistics and
    /// updates the running estimates; in inference mode, uses the running
    /// estimates.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for a wrong feature dimension and
    /// [`NnError::EmptyData`] for an empty batch in training mode.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Result<Matrix, NnError> {
        if x.cols() != self.dim() {
            return Err(NnError::ShapeMismatch {
                context: "batchnorm forward",
                expected: self.dim(),
                found: x.cols(),
            });
        }
        let n = x.rows();
        if training {
            if n == 0 {
                return Err(NnError::EmptyData);
            }
            let mean = x.column_means();
            let mut var = vec![0.0; self.dim()];
            for i in 0..n {
                for (j, &v) in x.row(i).iter().enumerate() {
                    let d = v - mean[j];
                    var[j] += d * d;
                }
            }
            for v in &mut var {
                *v /= n as f64;
            }
            let inv_std: Vec<f64> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut x_hat = Matrix::zeros(n, self.dim());
            for i in 0..n {
                for j in 0..self.dim() {
                    x_hat[(i, j)] = (x[(i, j)] - mean[j]) * inv_std[j];
                }
            }
            let mut y = Matrix::zeros(n, self.dim());
            for i in 0..n {
                for j in 0..self.dim() {
                    y[(i, j)] = self.gamma.value[(0, j)] * x_hat[(i, j)] + self.beta.value[(0, j)];
                }
            }
            for j in 0..self.dim() {
                self.running_mean[j] =
                    self.momentum * self.running_mean[j] + (1.0 - self.momentum) * mean[j];
                self.running_var[j] =
                    self.momentum * self.running_var[j] + (1.0 - self.momentum) * var[j];
            }
            self.cache = Some(BnCache { x_hat, inv_std });
            Ok(y)
        } else {
            let mut y = Matrix::zeros(n, self.dim());
            for i in 0..n {
                for j in 0..self.dim() {
                    let x_hat = (x[(i, j)] - self.running_mean[j])
                        / (self.running_var[j] + self.eps).sqrt();
                    y[(i, j)] = self.gamma.value[(0, j)] * x_hat + self.beta.value[(0, j)];
                }
            }
            Ok(y)
        }
    }

    /// Backward pass through the batch-norm transform.
    ///
    /// Accumulates gradients for `gamma`/`beta` and returns the input
    /// gradient using the standard fused formula.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if called before a training-mode
    /// forward pass, or [`NnError::ShapeMismatch`] on a bad gradient shape.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix, NnError> {
        let cache = self.cache.as_ref().ok_or_else(|| {
            NnError::InvalidConfig("batchnorm backward called before training forward".to_string())
        })?;
        let n = cache.x_hat.rows();
        if grad_out.rows() != n || grad_out.cols() != self.dim() {
            return Err(NnError::ShapeMismatch {
                context: "batchnorm backward",
                expected: self.dim(),
                found: grad_out.cols(),
            });
        }
        let d = self.dim();
        let mut dgamma = vec![0.0; d];
        let mut dbeta = vec![0.0; d];
        for i in 0..n {
            for j in 0..d {
                dgamma[j] += grad_out[(i, j)] * cache.x_hat[(i, j)];
                dbeta[j] += grad_out[(i, j)];
            }
        }
        for j in 0..d {
            self.gamma.grad[(0, j)] += dgamma[j];
            self.beta.grad[(0, j)] += dbeta[j];
        }
        // dX = gamma*inv_std/n * (n*G - sum(G) - x_hat * sum(G*x_hat))
        let mut dx = Matrix::zeros(n, d);
        let nf = n as f64;
        for i in 0..n {
            for j in 0..d {
                let g = self.gamma.value[(0, j)];
                dx[(i, j)] = g * cache.inv_std[j] / nf
                    * (nf * grad_out[(i, j)] - dbeta[j] - cache.x_hat[(i, j)] * dgamma[j]);
            }
        }
        Ok(dx)
    }

    /// Mutable access to the parameter tensors (gamma, beta), for the
    /// optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Immutable view of the parameter tensors (gamma, beta), for
    /// serialization.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    /// The running inference statistics `(mean, variance)`.
    ///
    /// These are *state*, not trainable parameters, but inference-mode
    /// forward passes depend on them — a serialized model must carry them
    /// to reproduce its outputs bit-exactly.
    pub fn running_stats(&self) -> (&[f64], &[f64]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrites the running inference statistics (deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when either slice's length is not
    /// the layer dimension.
    pub fn set_running_stats(&mut self, mean: &[f64], var: &[f64]) -> Result<(), NnError> {
        for s in [mean, var] {
            if s.len() != self.dim() {
                return Err(NnError::ShapeMismatch {
                    context: "batchnorm running stats",
                    expected: self.dim(),
                    found: s.len(),
                });
            }
        }
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_forward_standardizes_batch() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        // Per-column mean should be ~0, variance ~1 (gamma=1, beta=0).
        for j in 0..2 {
            let col = y.column(j);
            let m: f64 = col.iter().sum::<f64>() / 3.0;
            let v: f64 = col.iter().map(|c| (c - m) * (c - m)).sum::<f64>() / 3.0;
            assert!(m.abs() < 1e-10, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let x = Matrix::from_rows(&[vec![4.0], vec![6.0]]).unwrap();
        // Several passes to converge the running stats toward mean 5.
        for _ in 0..200 {
            bn.forward(&x, true).unwrap();
        }
        let probe = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let y = bn.forward(&probe, false).unwrap();
        assert!(
            y[(0, 0)].abs() < 0.1,
            "running mean should be near 5, got output {}",
            y[(0, 0)]
        );
    }

    #[test]
    fn forward_rejects_wrong_dim() {
        let mut bn = BatchNorm::new(3);
        assert!(bn.forward(&Matrix::zeros(2, 2), true).is_err());
        assert!(bn.forward(&Matrix::zeros(0, 3), true).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm::new(2);
        assert!(bn.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn backward_matches_finite_difference() {
        // Check dX numerically through a sum-of-outputs-squared objective.
        let x = Matrix::from_rows(&[vec![0.2, -0.5], vec![1.0, 0.7], vec![-0.3, 0.1]]).unwrap();
        let loss = |bn: &mut BatchNorm, x: &Matrix| -> f64 {
            let y = bn.forward(x, true).unwrap();
            y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        let mut bn = BatchNorm::new(2);
        let y = bn.forward(&x, true).unwrap();
        let grad_out = y.scale(2.0); // d(sum y^2)/dy
        let dx = bn.backward(&grad_out).unwrap();
        let h = 1e-5;
        for (i, j) in [(0, 0), (1, 1), (2, 0)] {
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            // Fresh layers so running stats do not contaminate the check.
            let mut bp = BatchNorm::new(2);
            let mut bm = BatchNorm::new(2);
            let num = (loss(&mut bp, &xp) - loss(&mut bm, &xm)) / (2.0 * h);
            assert!(
                (dx[(i, j)] - num).abs() < 1e-4,
                "dX[{i}{j}]: analytic {} vs numeric {num}",
                dx[(i, j)]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut bn = BatchNorm::new(1);
        bn.forward(&x, true).unwrap();
        let g = Matrix::filled(3, 1, 1.0);
        bn.backward(&g).unwrap();
        // dbeta = sum of grad = 3; dgamma = sum(g * x_hat) = 0 for symmetric x_hat.
        assert!((bn.beta.grad[(0, 0)] - 3.0).abs() < 1e-12);
        assert!(bn.gamma.grad[(0, 0)].abs() < 1e-10);
    }

    #[test]
    fn parameter_count_and_dim() {
        let bn = BatchNorm::new(7);
        assert_eq!(bn.dim(), 7);
        assert_eq!(bn.parameter_count(), 14);
    }
}
