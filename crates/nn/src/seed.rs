//! Deterministic seed derivation for independent RNG streams.
//!
//! Everything random in this workspace flows through a locally owned
//! `StdRng` seeded from a `u64` — there is deliberately **no** process-wide
//! RNG — so two models trained concurrently from the same configuration
//! produce bit-identical parameters (see the determinism test in
//! [`crate::trainer`]). What *was* fragile is how sub-seeds were spun off a
//! base seed: ad-hoc XORs with small constants (`seed ^ 0xA5`, `seed ^
//! 0x44`) collide easily — `derive_seed(s, a) == derive_seed(s ^ a ^ b, b)`
//! under XOR — which correlates streams that must be independent (two
//! shards of a serving registry, a model's init vs. its shuffle order).
//!
//! [`derive_seed`] replaces that idiom *for new code* — the serving
//! registry's per-shard seeds are the first user — with a SplitMix64-style
//! finalizer over the `(base, stream)` pair: a bijective mix per input
//! whose outputs decorrelate even for adjacent bases and streams. It is a
//! pure function — no global state, safe to call from any thread. The
//! pre-existing XOR call sites inside `WifiNoble`/`ImuNoble` training are
//! deliberately left untouched: changing them would re-roll every trained
//! model in the suite and invalidate the committed experiment baselines;
//! migrate them the next time those models' numerics change anyway.

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index.
///
/// Deterministic, order-free (stream `k` gets the same seed no matter how
/// many sibling streams exist or in what order they are created) and
/// avalanche-mixed (nearby `(base, stream)` pairs yield uncorrelated
/// seeds). Use it wherever one configuration seed must fan out into
/// several components — per-shard models, per-layer weights, shuffle
/// order — instead of XORing constants.
///
/// ```
/// use noble_nn::derive_seed;
///
/// let shard0 = derive_seed(0xCAFE, 0);
/// let shard1 = derive_seed(0xCAFE, 1);
/// assert_ne!(shard0, shard1);
/// // Same inputs, same stream — across threads, processes, shard orders.
/// assert_eq!(shard1, derive_seed(0xCAFE, 1));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    mix(mix(base) ^ mix(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }

    #[test]
    fn no_xor_style_collisions() {
        // The failure mode of `seed ^ constant` derivation: distinct
        // (base, stream) pairs collapsing onto one seed.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(base, stream)),
                    "collision at base={base} stream={stream}"
                );
            }
        }
    }

    #[test]
    fn zero_inputs_are_mixed() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 1), 1);
    }
}
