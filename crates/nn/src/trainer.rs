//! Mini-batch training loop with shuffling, learning-rate decay and early
//! stopping.

use crate::{Loss, Mlp, NnError, Optimizer};
use noble_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Early-stopping policy on a validation loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopping {
    /// Number of epochs without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum decrease in validation loss that counts as improvement.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping {
            patience: 10,
            min_delta: 1e-4,
        }
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size; the final batch of an epoch may be smaller.
    pub batch_size: usize,
    /// Update rule (consumed as the initial state; the decayed learning
    /// rate stays internal to the run).
    pub optimizer: Optimizer,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f64,
    /// Shuffle seed; training visits batches in a deterministic order for
    /// a given seed.
    pub shuffle_seed: u64,
    /// Optional early stopping, active only when a validation set is given.
    pub early_stopping: Option<EarlyStopping>,
    /// If set, training returns [`NnError::Diverged`] when the loss stops
    /// being finite.
    pub detect_divergence: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 64,
            optimizer: Optimizer::adam(1e-3),
            lr_decay: 1.0,
            shuffle_seed: 0x5EED,
            early_stopping: None,
            detect_divergence: true,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of each completed epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f64>,
    /// Training loss of the final epoch.
    pub final_train_loss: f64,
    /// Epochs actually run (may be fewer than configured with early
    /// stopping).
    pub epochs_run: usize,
    /// Whether early stopping triggered.
    pub stopped_early: bool,
}

/// Mini-batch gradient-descent driver.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer from a configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `(x, y)` with the given loss.
    ///
    /// `validation` optionally provides `(x_val, y_val)` for early stopping
    /// and per-epoch validation losses.
    ///
    /// # Errors
    ///
    /// - [`NnError::EmptyData`] when `x` has no rows.
    /// - [`NnError::InvalidConfig`] for a zero batch size or zero epochs.
    /// - [`NnError::ShapeMismatch`] when `x`/`y` row counts differ.
    /// - [`NnError::Diverged`] when divergence detection trips.
    pub fn fit(
        &self,
        model: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &dyn Loss,
        validation: Option<(&Matrix, &Matrix)>,
    ) -> Result<TrainReport, NnError> {
        let n = x.rows();
        if n == 0 {
            return Err(NnError::EmptyData);
        }
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be positive".into()));
        }
        if self.config.epochs == 0 {
            return Err(NnError::InvalidConfig("epochs must be positive".into()));
        }
        if y.rows() != n {
            return Err(NnError::ShapeMismatch {
                context: "trainer targets",
                expected: n,
                found: y.rows(),
            });
        }

        let mut optimizer = self.config.optimizer.clone();
        let mut rng = StdRng::seed_from_u64(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..n).collect();

        let mut report = TrainReport {
            train_losses: Vec::with_capacity(self.config.epochs),
            val_losses: Vec::new(),
            final_train_loss: f64::INFINITY,
            epochs_run: 0,
            stopped_early: false,
        };
        let mut best_val = f64::INFINITY;
        let mut epochs_since_best = 0usize;

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let xb = x.select_rows(chunk);
                let yb = y.select_rows(chunk);
                let out = model.forward(&xb, true)?;
                let (l, grad) = loss.evaluate(&out, &yb)?;
                if self.config.detect_divergence && !l.is_finite() {
                    return Err(NnError::Diverged { epoch });
                }
                model.backward(&grad)?;
                model.apply_gradients(&mut optimizer);
                epoch_loss += l;
                batches += 1;
            }
            epoch_loss /= batches.max(1) as f64;
            report.train_losses.push(epoch_loss);
            report.final_train_loss = epoch_loss;
            report.epochs_run = epoch + 1;

            if let Some((xv, yv)) = validation {
                let out = model.forward(xv, false)?;
                let (vl, _) = loss.evaluate(&out, yv)?;
                report.val_losses.push(vl);
                if let Some(es) = self.config.early_stopping {
                    if vl < best_val - es.min_delta {
                        best_val = vl;
                        epochs_since_best = 0;
                    } else {
                        epochs_since_best += 1;
                        if epochs_since_best >= es.patience {
                            report.stopped_early = true;
                            break;
                        }
                    }
                }
            }

            if self.config.lr_decay != 1.0 {
                let lr = optimizer.learning_rate() * self.config.lr_decay;
                optimizer.set_learning_rate(lr);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::one_hot;
    use crate::{Activation, MseLoss, SoftmaxCrossEntropyLoss};

    fn line_data(n: usize) -> (Matrix, Matrix) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let y = x.map(|v| 3.0 * v - 1.0);
        (x, y)
    }

    #[test]
    fn fit_linear_regression() {
        let (x, y) = line_data(64);
        let mut mlp = Mlp::builder(1, 3).dense(1).build();
        let cfg = TrainConfig {
            epochs: 400,
            batch_size: 16,
            optimizer: Optimizer::adam(0.05),
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg)
            .fit(&mut mlp, &x, &y, &MseLoss, None)
            .unwrap();
        assert!(
            report.final_train_loss < 1e-4,
            "loss {}",
            report.final_train_loss
        );
        assert_eq!(report.epochs_run, 400);
        assert!(!report.stopped_early);
    }

    #[test]
    fn fit_classification_with_batchnorm() {
        // Two separable blobs.
        let n = 40;
        let x = Matrix::from_fn(n, 2, |i, j| {
            let base = if i < n / 2 { -2.0 } else { 2.0 };
            base + 0.1 * ((i * 7 + j * 3) % 10) as f64 / 10.0
        });
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        let y = one_hot(&labels, 2);
        let mut mlp = Mlp::builder(2, 11)
            .dense(8)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let cfg = TrainConfig {
            epochs: 100,
            batch_size: 10,
            optimizer: Optimizer::adam(0.01),
            ..TrainConfig::default()
        };
        Trainer::new(cfg)
            .fit(&mut mlp, &x, &y, &SoftmaxCrossEntropyLoss, None)
            .unwrap();
        let out = mlp.predict(&x).unwrap();
        let predicted: Vec<usize> = (0..n)
            .map(|i| noble_linalg::argmax(out.row(i)).unwrap())
            .collect();
        let acc = crate::metrics::accuracy(&predicted, &labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_halts() {
        let (x, y) = line_data(32);
        let mut mlp = Mlp::builder(1, 5)
            .dense(4)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 8,
            optimizer: Optimizer::adam(0.05),
            early_stopping: Some(EarlyStopping {
                patience: 5,
                min_delta: 1e-7,
            }),
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg)
            .fit(&mut mlp, &x, &y, &MseLoss, Some((&x, &y)))
            .unwrap();
        assert!(report.stopped_early);
        assert!(report.epochs_run < 500);
        assert_eq!(report.val_losses.len(), report.epochs_run);
    }

    #[test]
    fn rejects_bad_configs() {
        let (x, y) = line_data(4);
        let mut mlp = Mlp::builder(1, 0).dense(1).build();
        let mut cfg = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            Trainer::new(cfg.clone()).fit(&mut mlp, &x, &y, &MseLoss, None),
            Err(NnError::InvalidConfig(_))
        ));
        cfg.batch_size = 4;
        cfg.epochs = 0;
        assert!(Trainer::new(cfg)
            .fit(&mut mlp, &x, &y, &MseLoss, None)
            .is_err());
        let empty = Matrix::zeros(0, 1);
        assert!(matches!(
            Trainer::new(TrainConfig::default()).fit(&mut mlp, &empty, &empty, &MseLoss, None),
            Err(NnError::EmptyData)
        ));
    }

    #[test]
    fn rejects_mismatched_targets() {
        let x = Matrix::zeros(4, 1);
        let y = Matrix::zeros(3, 1);
        let mut mlp = Mlp::builder(1, 0).dense(1).build();
        assert!(matches!(
            Trainer::new(TrainConfig::default()).fit(&mut mlp, &x, &y, &MseLoss, None),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn divergence_detection() {
        let (x, y) = line_data(16);
        let mut mlp = Mlp::builder(1, 1).dense(1).build();
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 16,
            optimizer: Optimizer::sgd(1e12), // absurd LR guarantees blow-up
            ..TrainConfig::default()
        };
        let result = Trainer::new(cfg).fit(&mut mlp, &x, &y, &MseLoss, None);
        assert!(matches!(result, Err(NnError::Diverged { .. })));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = line_data(32);
        let run = |seed: u64| {
            let mut mlp = Mlp::builder(1, 7)
                .dense(4)
                .activation(Activation::Tanh)
                .dense(1)
                .build();
            let cfg = TrainConfig {
                epochs: 20,
                batch_size: 8,
                shuffle_seed: seed,
                ..TrainConfig::default()
            };
            Trainer::new(cfg)
                .fit(&mut mlp, &x, &y, &MseLoss, None)
                .unwrap()
                .final_train_loss
        };
        assert_eq!(run(1).to_bits(), run(1).to_bits());
        assert_ne!(run(1).to_bits(), run(2).to_bits());
    }

    #[test]
    fn loss_curves_invariant_to_thread_count() {
        // Mini-batch products (batch 64, width 128 — 1M MACs) now cross
        // the per-worker parallel threshold, so with threads configured
        // the trainer's forward/backward run on `matmul_parallel`. That
        // kernel is bit-identical to the serial blocked kernel, so the
        // loss trajectory must not move by even one bit.
        let x = Matrix::from_fn(256, 128, |i, j| ((i * 31 + j * 7) % 23) as f64 / 23.0 - 0.5);
        let y = Matrix::from_fn(256, 1, |i, _| (i % 17) as f64 / 17.0);
        let run = |threads: usize| {
            noble_linalg::set_num_threads(threads);
            let mut mlp = Mlp::builder(128, 33)
                .dense(128)
                .activation(Activation::Tanh)
                .dense(1)
                .build();
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 64,
                ..TrainConfig::default()
            };
            let report = Trainer::new(cfg)
                .fit(&mut mlp, &x, &y, &MseLoss, None)
                .unwrap();
            noble_linalg::set_num_threads(0);
            report
                .train_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn concurrent_training_with_same_seed_is_bit_identical() {
        // Two serving shards training at once with the same seed must end
        // up with identical models: nothing in Mlp/Trainer may read shared
        // RNG state, and the matmul dispatch must stay bit-stable even
        // while another thread flips the global worker-count override.
        let (x, y) = line_data(48);
        let train_one = || {
            let mut mlp = Mlp::builder(1, 99)
                .dense(32)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(1)
                .build();
            let cfg = TrainConfig {
                epochs: 12,
                batch_size: 8,
                shuffle_seed: crate::derive_seed(99, 1),
                ..TrainConfig::default()
            };
            Trainer::new(cfg)
                .fit(&mut mlp, &x, &y, &MseLoss, None)
                .unwrap();
            let bits: Vec<u64> = mlp
                .params_mut()
                .iter()
                .flat_map(|p| p.value.as_slice().iter().map(|v| v.to_bits()))
                .collect();
            bits
        };
        let stop = std::sync::atomic::AtomicBool::new(false);
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(train_one);
            let hb = s.spawn(train_one);
            // Adversary: churn the process-wide thread override while both
            // trainings run; results must not depend on it. The deadline
            // bounds the spin so a panicking training thread fails the
            // test instead of deadlocking scope exit.
            let toggler = s.spawn(|| {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
                let mut t = 1;
                while !stop.load(std::sync::atomic::Ordering::Relaxed)
                    && std::time::Instant::now() < deadline
                {
                    noble_linalg::set_num_threads(t);
                    t = t % 4 + 1;
                    std::thread::yield_now();
                }
                noble_linalg::set_num_threads(0);
            });
            let a = ha.join().unwrap();
            let b = hb.join().unwrap();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            toggler.join().unwrap();
            (a, b)
        });
        assert_eq!(a, b, "concurrent same-seed trainings diverged");
    }

    #[test]
    fn lr_decay_changes_trajectory() {
        let (x, y) = line_data(32);
        let run = |decay: f64| {
            let mut mlp = Mlp::builder(1, 7).dense(1).build();
            let cfg = TrainConfig {
                epochs: 30,
                batch_size: 8,
                lr_decay: decay,
                optimizer: Optimizer::sgd(0.5),
                ..TrainConfig::default()
            };
            Trainer::new(cfg)
                .fit(&mut mlp, &x, &y, &MseLoss, None)
                .unwrap()
                .final_train_loss
        };
        // Merely assert both run and produce finite losses, and that decay
        // changed the outcome.
        let a = run(1.0);
        let b = run(0.5);
        assert!(a.is_finite() && b.is_finite());
        assert_ne!(a.to_bits(), b.to_bits());
    }
}
