//! Element-wise activation functions with analytic derivatives.

use noble_linalg::Matrix;

/// An element-wise activation function.
///
/// The paper's WiFi and IMU networks use hyperbolic tangent activations;
/// ReLU and sigmoid are included for ablations and for the sigmoid output
/// interpretation of the multi-label loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's choice).
    #[default]
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op; useful for testing layer stacks).
    Identity,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        match self {
            Activation::Tanh => x.map(f64::tanh),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Sigmoid => x.map(sigmoid),
            Activation::Identity => x.clone(),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All four supported activations admit this form, which lets the
    /// backward pass reuse the cached forward output instead of the input.
    pub fn derivative_from_output(&self, y: &Matrix) -> Matrix {
        match self {
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
            Activation::Identity => Matrix::filled(y.rows(), y.cols(), 1.0),
        }
    }
}

/// Numerically stable logistic sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn tanh_forward_and_derivative() {
        let x = Matrix::from_rows(&[vec![0.0, 1.0, -2.0]]).unwrap();
        let y = Activation::Tanh.forward(&x);
        assert_eq!(y[(0, 0)], 0.0);
        assert!((y[(0, 1)] - 1.0f64.tanh()).abs() < 1e-15);
        let d = Activation::Tanh.derivative_from_output(&y);
        for (j, &xv) in [0.0, 1.0, -2.0].iter().enumerate() {
            let expected = finite_diff(f64::tanh, xv);
            assert!((d[(0, j)] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]).unwrap();
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let d = Activation::Relu.derivative_from_output(&y);
        assert_eq!(d.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_matches_definition_and_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-300_f64.max(1e-100));
        let x = Matrix::from_rows(&[vec![2.0]]).unwrap();
        let y = Activation::Sigmoid.forward(&x);
        let d = Activation::Sigmoid.derivative_from_output(&y);
        let expected = finite_diff(sigmoid, 2.0);
        assert!((d[(0, 0)] - expected).abs() < 1e-6);
    }

    #[test]
    fn identity_passthrough() {
        let x = Matrix::from_rows(&[vec![3.0, -4.0]]).unwrap();
        assert_eq!(Activation::Identity.forward(&x), x);
        let d = Activation::Identity.derivative_from_output(&x);
        assert!(d.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn default_is_tanh() {
        assert_eq!(Activation::default(), Activation::Tanh);
    }
}
