//! Loss functions.
//!
//! All losses implement [`Loss`], returning the scalar loss and the gradient
//! with respect to the network's raw output (logits for the classification
//! losses). Gradients are averaged over the batch so learning rates are
//! batch-size independent.

use crate::activation::sigmoid;
use crate::metrics::softmax_row;
use crate::NnError;
use noble_linalg::Matrix;

/// A differentiable training objective.
///
/// `outputs` and `targets` are `(batch, k)` matrices; the meaning of
/// `targets` depends on the loss (regression targets, one-hot rows, or
/// multi-hot rows).
pub trait Loss {
    /// Computes `(loss, dL/d_outputs)`.
    ///
    /// # Errors
    ///
    /// Implementations return [`NnError::ShapeMismatch`] when `outputs` and
    /// `targets` disagree, and [`NnError::EmptyData`] on empty batches.
    fn evaluate(&self, outputs: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), NnError>;
}

fn check_shapes(outputs: &Matrix, targets: &Matrix, context: &'static str) -> Result<(), NnError> {
    if outputs.shape() != targets.shape() {
        return Err(NnError::ShapeMismatch {
            context,
            expected: targets.cols(),
            found: outputs.cols(),
        });
    }
    if outputs.rows() == 0 {
        return Err(NnError::EmptyData);
    }
    Ok(())
}

/// Mean squared error: `1/(2n) * sum ||y - t||^2` (per-batch mean, the 1/2
/// makes the gradient exactly `(y - t)/n`).
///
/// This is the objective of the paper's *Deep Regression* baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn evaluate(&self, outputs: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), NnError> {
        check_shapes(outputs, targets, "mse")?;
        let n = outputs.rows() as f64;
        let diff = outputs.sub(targets)?;
        let loss = diff.as_slice().iter().map(|v| v * v).sum::<f64>() / (2.0 * n);
        Ok((loss, diff.scale(1.0 / n)))
    }
}

/// Binary cross-entropy over logits, averaged over the batch: the paper's
/// multi-label objective `J(h, ĥ) = -Σ h log ĥ + (1-h) log(1-ĥ)` with
/// `ĥ = sigmoid(logit)`.
///
/// Targets are multi-hot rows in `{0, 1}` (soft labels in `[0,1]` are also
/// accepted). The loss is summed over classes and averaged over the batch,
/// matching the paper's formulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BceWithLogitsLoss;

impl Loss for BceWithLogitsLoss {
    fn evaluate(&self, outputs: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), NnError> {
        check_shapes(outputs, targets, "bce")?;
        let n = outputs.rows() as f64;
        let mut loss = 0.0;
        let mut grad = Matrix::zeros(outputs.rows(), outputs.cols());
        for i in 0..outputs.rows() {
            for j in 0..outputs.cols() {
                let z = outputs[(i, j)];
                let t = targets[(i, j)];
                // Stable: max(z,0) - z*t + ln(1 + e^{-|z|})
                loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
                grad[(i, j)] = (sigmoid(z) - t) / n;
            }
        }
        Ok((loss / n, grad))
    }
}

/// Softmax cross-entropy over logits with one-hot targets, averaged over
/// the batch. Used for the single-label heads (building, floor) and for the
/// single-resolution NObLe variant.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropyLoss;

impl Loss for SoftmaxCrossEntropyLoss {
    fn evaluate(&self, outputs: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), NnError> {
        check_shapes(outputs, targets, "softmax-ce")?;
        let n = outputs.rows() as f64;
        let mut loss = 0.0;
        let mut grad = Matrix::zeros(outputs.rows(), outputs.cols());
        for i in 0..outputs.rows() {
            let probs = softmax_row(outputs.row(i));
            for j in 0..outputs.cols() {
                let t = targets[(i, j)];
                if t > 0.0 {
                    loss -= t * probs[j].max(1e-300).ln();
                }
                grad[(i, j)] = (probs[j] - t) / n;
            }
        }
        Ok((loss / n, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(loss: &dyn Loss, outputs: &Matrix, targets: &Matrix, tol: f64) {
        let (_, grad) = loss.evaluate(outputs, targets).unwrap();
        let h = 1e-6;
        for i in 0..outputs.rows() {
            for j in 0..outputs.cols() {
                let mut op = outputs.clone();
                op[(i, j)] += h;
                let mut om = outputs.clone();
                om[(i, j)] -= h;
                let (lp, _) = loss.evaluate(&op, targets).unwrap();
                let (lm, _) = loss.evaluate(&om, targets).unwrap();
                let num = (lp - lm) / (2.0 * h);
                assert!(
                    (grad[(i, j)] - num).abs() < tol,
                    "grad[{i}{j}]: analytic {} vs numeric {num}",
                    grad[(i, j)]
                );
            }
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let y = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let (l, g) = MseLoss.evaluate(&y, &y).unwrap();
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let y = Matrix::from_rows(&[vec![3.0], vec![0.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![1.0], vec![0.0]]).unwrap();
        let (l, g) = MseLoss.evaluate(&y, &t).unwrap();
        assert!((l - 1.0).abs() < 1e-12); // (2^2)/(2*2)
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12); // (3-1)/2
        grad_check(&MseLoss, &y, &t, 1e-6);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let z = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let (l, g) = BceWithLogitsLoss.evaluate(&z, &t).unwrap();
        assert!((l - (2.0f64).ln()).abs() < 1e-12); // -ln(0.5)
        assert!((g[(0, 0)] + 0.5).abs() < 1e-12); // sigmoid(0) - 1
    }

    #[test]
    fn bce_gradient_check_multihot() {
        let z = Matrix::from_rows(&[vec![0.3, -1.2, 2.0], vec![-0.5, 0.8, 0.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]]).unwrap();
        grad_check(&BceWithLogitsLoss, &z, &t, 1e-6);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let z = Matrix::from_rows(&[vec![500.0, -500.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let (l, g) = BceWithLogitsLoss.evaluate(&z, &t).unwrap();
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
        assert!(
            l < 1e-6,
            "perfectly classified extreme logits should give ~0 loss"
        );
    }

    #[test]
    fn softmax_ce_uniform_logits() {
        let z = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![0.0, 1.0, 0.0]]).unwrap();
        let (l, _) = SoftmaxCrossEntropyLoss.evaluate(&z, &t).unwrap();
        assert!((l - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softmax_ce_gradient_check() {
        let z = Matrix::from_rows(&[vec![1.0, -0.5, 0.2], vec![0.0, 2.0, -1.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]]).unwrap();
        grad_check(&SoftmaxCrossEntropyLoss, &z, &t, 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_rows_sum_to_zero() {
        let z = Matrix::from_rows(&[vec![3.0, 1.0, -2.0]]).unwrap();
        let t = Matrix::from_rows(&[vec![0.0, 1.0, 0.0]]).unwrap();
        let (_, g) = SoftmaxCrossEntropyLoss.evaluate(&z, &t).unwrap();
        let row_sum: f64 = g.row(0).iter().sum();
        assert!(row_sum.abs() < 1e-12);
    }

    #[test]
    fn losses_reject_shape_mismatch_and_empty() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(MseLoss.evaluate(&a, &b).is_err());
        assert!(BceWithLogitsLoss.evaluate(&a, &b).is_err());
        assert!(SoftmaxCrossEntropyLoss.evaluate(&a, &b).is_err());
        let e = Matrix::zeros(0, 2);
        assert!(MseLoss.evaluate(&e, &e).is_err());
    }
}
