//! Weight initialization schemes.
//!
//! The paper trains its MLPs with Xavier (Glorot) initialization
//! \[Glorot & Bengio, AISTATS 2010\]; He initialization is provided for the
//! ReLU variants exercised in ablations.

use noble_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot *uniform* initialization: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Xavier/Glorot *normal* initialization: entries drawn from
/// `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let std = (2.0 / (fan_in + fan_out) as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| std * standard_normal(&mut rng))
}

/// He (Kaiming) uniform initialization for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let a = (6.0 / fan_in as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Standard normal sample via Box–Muller.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_uniform_within_bounds() {
        let m = xavier_uniform(100, 50, 1);
        let a = (6.0 / 150.0f64).sqrt();
        assert_eq!(m.shape(), (100, 50));
        assert!(m.as_slice().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn xavier_uniform_deterministic_per_seed() {
        assert_eq!(
            xavier_uniform(10, 10, 7).as_slice(),
            xavier_uniform(10, 10, 7).as_slice()
        );
        assert_ne!(
            xavier_uniform(10, 10, 7).as_slice(),
            xavier_uniform(10, 10, 8).as_slice()
        );
    }

    #[test]
    fn xavier_normal_variance_close() {
        let m = xavier_normal(200, 200, 3);
        let vals = m.as_slice();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        let expected = 2.0 / 400.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn he_uniform_wider_than_xavier_for_relu() {
        let he = he_uniform(100, 100, 5);
        let a_he = (6.0 / 100.0f64).sqrt();
        assert!(he.as_slice().iter().all(|&v| v.abs() < a_he));
        // He bound is strictly wider than the Xavier bound for equal fans.
        let a_xavier = (6.0 / 200.0f64).sqrt();
        assert!(a_he > a_xavier);
    }
}
