//! From-scratch neural-network substrate for the NObLe localization suite.
//!
//! Implements exactly what the paper's models need, with no external ML
//! dependencies:
//!
//! - dense (fully connected) layers with Xavier/Glorot initialization
//!   ([`init`](xavier_uniform)),
//! - hyperbolic tangent / ReLU / sigmoid activations ([`Activation`]),
//! - batch normalization with running statistics ([`BatchNorm`]),
//! - losses: mean squared error, binary cross-entropy with logits
//!   (the paper's multi-label objective), and softmax cross-entropy,
//!   including the multi-head composition used by NObLe's
//!   building/floor/class outputs ([`MultiHeadLoss`]),
//! - optimizers: SGD, SGD with momentum, Adam ([`Optimizer`]),
//! - a mini-batch [`Trainer`] with shuffling, learning-rate decay and
//!   early stopping.
//!
//! # Example
//!
//! ```
//! use noble_nn::{Activation, Mlp, MseLoss, Optimizer, Trainer, TrainConfig};
//! use noble_linalg::Matrix;
//!
//! // Learn y = 2x on a few points.
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
//! let y = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0], vec![6.0]]).unwrap();
//! let mut mlp = Mlp::builder(1, 42)
//!     .dense(8)
//!     .activation(Activation::Tanh)
//!     .dense(1)
//!     .build();
//! let config = TrainConfig {
//!     epochs: 200,
//!     batch_size: 4,
//!     optimizer: Optimizer::adam(0.05),
//!     ..TrainConfig::default()
//! };
//! let report = Trainer::new(config).fit(&mut mlp, &x, &y, &MseLoss, None).unwrap();
//! assert!(report.final_train_loss < 0.1);
//! ```

mod activation;
mod batchnorm;
mod dropout;
mod error;
mod heads;
mod init;
mod layer;
mod loss;
mod lowered;
mod metrics;
mod network;
mod optimizer;
mod param;
mod seed;
mod serialize;
mod trainer;

pub use activation::Activation;
pub use batchnorm::BatchNorm;
pub use dropout::Dropout;
pub use error::NnError;
pub use heads::{HeadKind, HeadSpec, MultiHeadLoss, OutputLayout};
pub use init::{he_uniform, xavier_normal, xavier_uniform};
pub use layer::Dense;
pub use loss::{BceWithLogitsLoss, Loss, MseLoss, SoftmaxCrossEntropyLoss};
pub use lowered::{narrow, InferencePrecision, LoweredMlp};
pub use metrics::{accuracy, confusion_counts, one_hot, softmax_row};
pub use network::{Mlp, MlpBuilder, MlpLayerSpec};
pub use optimizer::Optimizer;
pub use param::Param;
pub use seed::derive_seed;
pub use serialize::{
    blob_encoding, load_parameters, save_parameters, save_parameters_with, ParamEncoding,
};
pub use trainer::{EarlyStopping, TrainConfig, TrainReport, Trainer};
