//! Binary serialization of trained parameters.
//!
//! On-device deployment (the paper's whole premise) ships trained weights
//! to the edge; this module provides a dependency-free, versioned binary
//! format for any [`Mlp`]'s parameters. Only values needed to reproduce
//! inference travel — optimizer state and training caches stay behind.
//!
//! Format (version 2): magic `NOBL`, format version u32, tensor count
//! u32, then per tensor: rows u32, cols u32, row-major f64 little-endian
//! payload; then a running-statistics section: stat-vector count u32,
//! then per vector: len u32, f64 payload. The stat vectors are each
//! batch-norm stage's running mean and variance in layer order — without
//! them an inference pass through a restored network would not be
//! bit-identical to the saved one. Version 1 (no statistics section) is
//! no longer readable; loading it is a typed error, never a panic.
//!
//! Version 3 is the **compact encoding** ([`ParamEncoding::F32`]): the
//! identical layout with every scalar stored as f32 little-endian
//! (4 bytes), halving edge-store footprints. Narrowing is lossy, so a
//! v3 round trip reproduces inference only to f32 accuracy — the same
//! accuracy-gated contract as the lowered serving tier, checked by the
//! round-trip tests here and the accuracy-delta gate in
//! `exp_model_store`. [`load_parameters`] reads both versions; the
//! default writer [`save_parameters`] still emits byte-identical v2.

use crate::{Mlp, NnError};

const MAGIC: &[u8; 4] = b"NOBL";
const VERSION_F64: u32 = 2;
const VERSION_F32: u32 = 3;

/// Scalar encoding of a parameter blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParamEncoding {
    /// Exact f64 scalars (format version 2) — the default; round trips
    /// are bit-identical.
    #[default]
    F64,
    /// Compact f32 scalars (format version 3) — ~2x smaller, round
    /// trips reproduce inference to f32 accuracy.
    F32,
}

impl ParamEncoding {
    /// Bytes per stored scalar.
    fn unit(self) -> usize {
        match self {
            ParamEncoding::F64 => 8,
            ParamEncoding::F32 => 4,
        }
    }

    fn version(self) -> u32 {
        match self {
            ParamEncoding::F64 => VERSION_F64,
            ParamEncoding::F32 => VERSION_F32,
        }
    }
}

/// Serializes every trainable parameter of `mlp`, plus its batch-norm
/// running statistics, into a byte buffer (exact f64 encoding).
pub fn save_parameters(mlp: &Mlp) -> Vec<u8> {
    save_parameters_with(mlp, ParamEncoding::F64)
}

/// [`save_parameters`] with an explicit scalar encoding.
pub fn save_parameters_with(mlp: &Mlp, encoding: ParamEncoding) -> Vec<u8> {
    let params = mlp.params();
    let stats = mlp.running_stats();
    let unit = encoding.unit();
    let tensor_bytes: usize = params.iter().map(|p| 8 + p.len() * unit).sum();
    let stat_bytes: usize = stats
        .iter()
        .map(|(m, v)| 8 + (m.len() + v.len()) * unit)
        .sum();
    let mut out = Vec::with_capacity(16 + tensor_bytes + 4 + stat_bytes);
    let push_scalar = |out: &mut Vec<u8>, v: f64| match encoding {
        ParamEncoding::F64 => out.extend_from_slice(&v.to_le_bytes()),
        ParamEncoding::F32 => out.extend_from_slice(&crate::lowered::narrow(v).to_le_bytes()),
    };
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&encoding.version().to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        let (r, c) = p.value.shape();
        out.extend_from_slice(&(r as u32).to_le_bytes());
        out.extend_from_slice(&(c as u32).to_le_bytes());
        for &v in p.value.as_slice() {
            push_scalar(&mut out, v);
        }
    }
    out.extend_from_slice(&(2 * stats.len() as u32).to_le_bytes());
    for (mean, var) in stats {
        for vector in [mean, var] {
            out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for &v in vector {
                push_scalar(&mut out, v);
            }
        }
    }
    out
}

/// The scalar encoding of a parameter blob, sniffed from its header.
///
/// # Errors
///
/// [`NnError::InvalidConfig`] when the header is truncated, has the
/// wrong magic, or names an unknown version.
pub fn blob_encoding(bytes: &[u8]) -> Result<ParamEncoding, NnError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    if cursor.take(4)? != MAGIC {
        return Err(NnError::InvalidConfig(
            "bad magic: not a NObLe parameter blob".into(),
        ));
    }
    match cursor.u32()? {
        VERSION_F64 => Ok(ParamEncoding::F64),
        VERSION_F32 => Ok(ParamEncoding::F32),
        v => Err(NnError::InvalidConfig(format!(
            "unsupported parameter format version {v} (this build reads {VERSION_F64} and {VERSION_F32})"
        ))),
    }
}

/// Restores parameters and running statistics previously produced by
/// [`save_parameters`] / [`save_parameters_with`] into a *structurally
/// identical* network (same builder calls, or [`Mlp::from_specs`] on
/// the saved architecture).
///
/// Both encodings load: f64 blobs restore exactly; f32 blobs widen each
/// scalar to f64 (the widening itself is exact — the loss happened at
/// save time).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the buffer is malformed or
/// truncated, the version is unsupported, or tensor shapes do not match
/// the target network.
pub fn load_parameters(mlp: &mut Mlp, bytes: &[u8]) -> Result<(), NnError> {
    let encoding = blob_encoding(bytes)?;
    let unit = encoding.unit();
    let mut cursor = Cursor { bytes, pos: 8 };
    let count = cursor.u32()? as usize;
    {
        let mut params = mlp.params_mut();
        if count != params.len() {
            return Err(NnError::InvalidConfig(format!(
                "blob has {count} tensors, network has {}",
                params.len()
            )));
        }
        for p in params.iter_mut() {
            let rows = cursor.u32()? as usize;
            let cols = cursor.u32()? as usize;
            if (rows, cols) != p.value.shape() {
                return Err(NnError::InvalidConfig(format!(
                    "tensor shape {rows}x{cols} does not match network tensor {}x{}",
                    p.value.shape().0,
                    p.value.shape().1
                )));
            }
            for v in p.value.as_mut_slice() {
                *v = cursor.scalar(encoding)?;
            }
        }
    }
    // Every vector needs at least a 4-byte length prefix; bounding the
    // counts against the remaining bytes keeps a corrupt length field
    // from demanding a huge allocation before any payload is read.
    let stat_count = cursor.checked_len(4)?;
    if !stat_count.is_multiple_of(2) {
        return Err(NnError::InvalidConfig(format!(
            "running-statistics section has odd vector count {stat_count}"
        )));
    }
    let mut stats = Vec::with_capacity(stat_count / 2);
    for _ in 0..stat_count / 2 {
        let mut pair = Vec::with_capacity(2);
        for _ in 0..2 {
            let len = cursor.checked_len(unit)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(cursor.scalar(encoding)?);
            }
            pair.push(v);
        }
        let var = pair.pop().expect("two vectors pushed");
        let mean = pair.pop().expect("two vectors pushed");
        stats.push((mean, var));
    }
    mlp.set_running_stats(&stats)?;
    if cursor.pos != bytes.len() {
        return Err(NnError::InvalidConfig(format!(
            "{} trailing bytes after parameters",
            bytes.len() - cursor.pos
        )));
    }
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.bytes.len() {
            return Err(NnError::InvalidConfig("truncated parameter blob".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, NnError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a count that prefixes `unit`-byte elements, rejecting values
    /// the remaining buffer cannot possibly hold (allocation guard).
    fn checked_len(&mut self, unit: usize) -> Result<usize, NnError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.checked_mul(unit).is_none_or(|bytes| bytes > remaining) {
            return Err(NnError::InvalidConfig(format!(
                "corrupt length {n}: exceeds {remaining} remaining blob bytes"
            )));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, NnError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads one scalar in the blob's encoding, widened to f64.
    fn scalar(&mut self, encoding: ParamEncoding) -> Result<f64, NnError> {
        match encoding {
            ParamEncoding::F64 => self.f64(),
            ParamEncoding::F32 => {
                let b = self.take(4)?;
                Ok(f64::from(f32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use noble_linalg::Matrix;

    fn network(seed: u64) -> Mlp {
        Mlp::builder(3, seed)
            .dense(5)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build()
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let mut a = network(1);
        // Drive the running stats away from init so the round-trip result
        // depends on them being carried.
        let warm = Matrix::from_fn(16, 3, |i, j| ((i * 3 + j) % 7) as f64 / 3.0 - 1.0);
        a.forward(&warm, true).unwrap();
        let blob = save_parameters(&a);
        let mut b = network(99); // different init
        load_parameters(&mut b, &blob).unwrap();
        let x = Matrix::from_rows(&[vec![0.4, -1.0, 2.0]]).unwrap();
        let ya = a.predict(&x).unwrap();
        let yb = b.predict(&x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn round_trip_through_specs_preserves_outputs() {
        let mut a = network(7);
        let warm = Matrix::from_fn(8, 3, |i, j| (i as f64 - j as f64) / 4.0);
        a.forward(&warm, true).unwrap();
        let blob = save_parameters(&a);
        let mut b = Mlp::from_specs(a.in_dim(), &a.layer_specs()).unwrap();
        load_parameters(&mut b, &blob).unwrap();
        let x = Matrix::from_rows(&[vec![1.5, -0.25, 0.75]]).unwrap();
        assert_eq!(
            a.predict(&x).unwrap().as_slice(),
            b.predict(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let a = network(1);
        let mut blob = save_parameters(&a);
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(load_parameters(&mut network(2), &bad).is_err());
        blob.truncate(blob.len() - 3);
        assert!(load_parameters(&mut network(2), &blob).is_err());
    }

    #[test]
    fn rejects_structural_mismatch() {
        let a = network(1);
        let blob = save_parameters(&a);
        let mut wider = Mlp::builder(3, 0)
            .dense(6)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        assert!(load_parameters(&mut wider, &blob).is_err());
        let mut fewer = Mlp::builder(3, 0).dense(2).build();
        assert!(load_parameters(&mut fewer, &blob).is_err());
    }

    #[test]
    fn rejects_trailing_bytes_and_bad_version() {
        let a = network(1);
        let mut blob = save_parameters(&a);
        blob.push(0);
        assert!(load_parameters(&mut network(2), &blob).is_err());
        let mut blob = save_parameters(&a);
        blob[4] = 9; // version
        let err = load_parameters(&mut network(2), &blob).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Version 1 blobs (no statistics section) are also a typed error.
        blob[4] = 1;
        assert!(load_parameters(&mut network(2), &blob).is_err());
    }

    #[test]
    fn blob_size_is_deterministic() {
        let a = network(1);
        let b1 = save_parameters(&a);
        let b2 = save_parameters(&a);
        assert_eq!(b1, b2);
    }

    #[test]
    fn compact_f32_blob_halves_scalar_bytes_and_round_trips_closely() {
        let mut a = network(1);
        let warm = Matrix::from_fn(16, 3, |i, j| ((i * 3 + j) % 7) as f64 / 3.0 - 1.0);
        a.forward(&warm, true).unwrap();
        let exact = save_parameters_with(&a, ParamEncoding::F64);
        let compact = save_parameters_with(&a, ParamEncoding::F32);
        assert_eq!(blob_encoding(&exact).unwrap(), ParamEncoding::F64);
        assert_eq!(blob_encoding(&compact).unwrap(), ParamEncoding::F32);
        // Scalar payloads halve; only the fixed headers stay 8/4-byte.
        let scalars = a.parameter_count()
            + a.running_stats()
                .iter()
                .map(|(m, v)| m.len() + v.len())
                .sum::<usize>();
        assert_eq!(exact.len() - compact.len(), scalars * 4);

        let mut b = network(99);
        load_parameters(&mut b, &compact).unwrap();
        let x = Matrix::from_rows(&[vec![0.4, -1.0, 2.0]]).unwrap();
        let ya = a.predict(&x).unwrap();
        let yb = b.predict(&x).unwrap();
        let drift = ya.max_abs_diff(&yb).unwrap();
        assert!(drift > 0.0, "narrowing should be lossy on trained weights");
        assert!(drift < 1e-4, "f32 round trip drifted {drift}");
    }

    #[test]
    fn default_writer_is_still_byte_identical_v2() {
        // The compact encoding must not perturb the default format:
        // existing snapshots in stores hydrate against these exact bytes.
        let a = network(4);
        let blob = save_parameters(&a);
        assert_eq!(&blob[..4], b"NOBL");
        assert_eq!(u32::from_le_bytes([blob[4], blob[5], blob[6], blob[7]]), 2);
        assert_eq!(blob, save_parameters_with(&a, ParamEncoding::F64));
    }

    #[test]
    fn blob_encoding_rejects_garbage() {
        assert!(blob_encoding(b"NOB").is_err());
        assert!(blob_encoding(b"XOBL\x02\x00\x00\x00").is_err());
        assert!(blob_encoding(b"NOBL\x07\x00\x00\x00").is_err());
    }
}
