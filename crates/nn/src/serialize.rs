//! Binary serialization of trained parameters.
//!
//! On-device deployment (the paper's whole premise) ships trained weights
//! to the edge; this module provides a dependency-free, versioned binary
//! format for any [`Mlp`]'s parameters. Only parameter *values* travel —
//! optimizer state and caches stay behind.
//!
//! Format: magic `NOBL`, format version u32, tensor count u32, then per
//! tensor: rows u32, cols u32, row-major f64 little-endian payload.

use crate::{Mlp, NnError};

const MAGIC: &[u8; 4] = b"NOBL";
const VERSION: u32 = 1;

/// Serializes every trainable parameter of `mlp` into a byte buffer.
pub fn save_parameters(mlp: &mut Mlp) -> Vec<u8> {
    let params = mlp.params_mut();
    let mut out = Vec::with_capacity(16 + params.iter().map(|p| 8 + p.len() * 8).sum::<usize>());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        let (r, c) = p.value.shape();
        out.extend_from_slice(&(r as u32).to_le_bytes());
        out.extend_from_slice(&(c as u32).to_le_bytes());
        for v in p.value.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Restores parameters previously produced by [`save_parameters`] into a
/// *structurally identical* network (same builder calls).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the buffer is malformed, the
/// version is unsupported, or tensor shapes do not match the target
/// network.
pub fn load_parameters(mlp: &mut Mlp, bytes: &[u8]) -> Result<(), NnError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != MAGIC {
        return Err(NnError::InvalidConfig(
            "bad magic: not a NObLe parameter blob".into(),
        ));
    }
    let version = cursor.u32()?;
    if version != VERSION {
        return Err(NnError::InvalidConfig(format!(
            "unsupported parameter format version {version}"
        )));
    }
    let count = cursor.u32()? as usize;
    let mut params = mlp.params_mut();
    if count != params.len() {
        return Err(NnError::InvalidConfig(format!(
            "blob has {count} tensors, network has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        let rows = cursor.u32()? as usize;
        let cols = cursor.u32()? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(NnError::InvalidConfig(format!(
                "tensor shape {rows}x{cols} does not match network tensor {}x{}",
                p.value.shape().0,
                p.value.shape().1
            )));
        }
        for v in p.value.as_mut_slice() {
            *v = cursor.f64()?;
        }
    }
    if cursor.pos != bytes.len() {
        return Err(NnError::InvalidConfig(format!(
            "{} trailing bytes after parameters",
            bytes.len() - cursor.pos
        )));
    }
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.bytes.len() {
            return Err(NnError::InvalidConfig("truncated parameter blob".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, NnError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, NnError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use noble_linalg::Matrix;

    fn network(seed: u64) -> Mlp {
        Mlp::builder(3, seed)
            .dense(5)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build()
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let mut a = network(1);
        let blob = save_parameters(&mut a);
        let mut b = network(99); // different init
        load_parameters(&mut b, &blob).unwrap();
        let x = Matrix::from_rows(&[vec![0.4, -1.0, 2.0]]).unwrap();
        let ya = a.predict(&x).unwrap();
        let yb = b.predict(&x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut a = network(1);
        let mut blob = save_parameters(&mut a);
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(load_parameters(&mut network(2), &bad).is_err());
        blob.truncate(blob.len() - 3);
        assert!(load_parameters(&mut network(2), &blob).is_err());
    }

    #[test]
    fn rejects_structural_mismatch() {
        let mut a = network(1);
        let blob = save_parameters(&mut a);
        let mut wider = Mlp::builder(3, 0)
            .dense(6)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        assert!(load_parameters(&mut wider, &blob).is_err());
        let mut fewer = Mlp::builder(3, 0).dense(2).build();
        assert!(load_parameters(&mut fewer, &blob).is_err());
    }

    #[test]
    fn rejects_trailing_bytes_and_bad_version() {
        let mut a = network(1);
        let mut blob = save_parameters(&mut a);
        blob.push(0);
        assert!(load_parameters(&mut network(2), &blob).is_err());
        let mut blob = save_parameters(&mut a);
        blob[4] = 9; // version
        assert!(load_parameters(&mut network(2), &blob).is_err());
    }

    #[test]
    fn blob_size_is_deterministic() {
        let mut a = network(1);
        let b1 = save_parameters(&mut a);
        let b2 = save_parameters(&mut a);
        assert_eq!(b1, b2);
    }
}
