//! The dense (fully connected) layer.

use crate::{xavier_uniform, NnError, Param};
use noble_linalg::Matrix;

/// A fully connected layer computing `Y = X W + b` on row-major batches.
///
/// `X` is `(batch, in_dim)`, `W` is `(in_dim, out_dim)`, `b` broadcasts over
/// the batch. The layer caches its input during [`Dense::forward`] in
/// training mode so [`Dense::backward`] can form the weight gradient.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Dense {
            weights: Param::new(xavier_uniform(in_dim, out_dim, seed)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit weights and bias (for tests and
    /// deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `bias.cols() != weights.cols()`
    /// or `bias.rows() != 1`.
    pub fn from_parts(weights: Matrix, bias: Matrix) -> Result<Self, NnError> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(NnError::ShapeMismatch {
                context: "dense bias",
                expected: weights.cols(),
                found: bias.cols(),
            });
        }
        Ok(Dense {
            weights: Param::new(weights),
            bias: Param::new(bias),
            cached_input: None,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.value.cols()
    }

    /// Immutable view of the weight matrix `(in_dim, out_dim)`.
    pub fn weights(&self) -> &Matrix {
        &self.weights.value
    }

    /// Immutable view of the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias.value
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass. When `training` is true the input is cached for the
    /// backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `x.cols() != in_dim`.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Result<Matrix, NnError> {
        if x.cols() != self.in_dim() {
            return Err(NnError::ShapeMismatch {
                context: "dense forward",
                expected: self.in_dim(),
                found: x.cols(),
            });
        }
        let mut y = x.matmul(&self.weights.value)?;
        let b = self.bias.value.row(0);
        for i in 0..y.rows() {
            for (yv, &bv) in y.row_mut(i).iter_mut().zip(b) {
                *yv += bv;
            }
        }
        if training {
            self.cached_input = Some(x.clone());
        }
        Ok(y)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when called before a training-mode
    /// forward pass, or [`NnError::ShapeMismatch`] on a bad gradient shape.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix, NnError> {
        let x = self.cached_input.as_ref().ok_or_else(|| {
            NnError::InvalidConfig("dense backward called before training forward".to_string())
        })?;
        if grad_out.cols() != self.out_dim() || grad_out.rows() != x.rows() {
            return Err(NnError::ShapeMismatch {
                context: "dense backward",
                expected: self.out_dim(),
                found: grad_out.cols(),
            });
        }
        // dW = X^T G ; db = column sums of G ; dX = G W^T
        let dw = x.transpose().matmul(grad_out)?;
        let dw_sum = self.weights.grad.add(&dw)?;
        self.weights.grad = dw_sum;
        for j in 0..self.out_dim() {
            let col_sum: f64 = (0..grad_out.rows()).map(|i| grad_out[(i, j)]).sum();
            self.bias.grad[(0, j)] += col_sum;
        }
        Ok(grad_out.matmul(&self.weights.value.transpose())?)
    }

    /// Mutable access to the parameter tensors (weights, bias), for the
    /// optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weights, &mut self.bias]
    }

    /// Immutable view of the parameter tensors (weights, bias), for
    /// serialization.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weights, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer() -> Dense {
        // W = [[1, 2], [3, 4]], b = [10, 20]
        Dense::from_parts(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            Matrix::from_rows(&[vec![10.0, 20.0]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn forward_affine() {
        let mut layer = simple_layer();
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn forward_shape_check() {
        let mut layer = simple_layer();
        let x = Matrix::zeros(1, 3);
        assert!(layer.forward(&x, false).is_err());
    }

    #[test]
    fn from_parts_validates_bias() {
        let w = Matrix::zeros(2, 3);
        assert!(Dense::from_parts(w.clone(), Matrix::zeros(1, 2)).is_err());
        assert!(Dense::from_parts(w.clone(), Matrix::zeros(2, 3)).is_err());
        assert!(Dense::from_parts(w, Matrix::zeros(1, 3)).is_ok());
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = simple_layer();
        assert!(layer.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let x = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.3]]).unwrap();
        // Scalar objective: sum of outputs. dL/dY = ones.
        let loss_of =
            |layer: &mut Dense, x: &Matrix| -> f64 { layer.forward(x, false).unwrap().sum() };
        let mut layer = simple_layer();
        layer.forward(&x, true).unwrap();
        let ones = Matrix::filled(2, 2, 1.0);
        let dx = layer.backward(&ones).unwrap();

        let h = 1e-6;
        // Weight gradient check.
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut lp = simple_layer();
            let mut lm = simple_layer();
            let mut wp = lp.weights.value.clone();
            wp[(i, j)] += h;
            lp.weights.value = wp;
            let mut wm = lm.weights.value.clone();
            wm[(i, j)] -= h;
            lm.weights.value = wm;
            let num = (loss_of(&mut lp, &x) - loss_of(&mut lm, &x)) / (2.0 * h);
            assert!(
                (layer.weights.grad[(i, j)] - num).abs() < 1e-5,
                "dW[{i}{j}]: analytic {} vs numeric {num}",
                layer.weights.grad[(i, j)]
            );
        }
        // Input gradient check.
        for (i, j) in [(0, 0), (1, 1)] {
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            let mut l = simple_layer();
            let num = (loss_of(&mut l, &xp) - loss_of(&mut l, &xm)) / (2.0 * h);
            assert!((dx[(i, j)] - num).abs() < 1e-5);
        }
        // Bias gradient: column sums of ones = batch size.
        assert_eq!(layer.bias.grad.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut layer = simple_layer();
        let x = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let g = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        let first = layer.weights.grad.clone();
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        assert_eq!(layer.weights.grad.as_slice()[0], 2.0 * first.as_slice()[0]);
        for p in layer.params_mut() {
            p.zero_grad();
        }
        assert!(layer.weights.grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parameter_count() {
        let layer = Dense::new(4, 3, 0);
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
    }
}
