//! Classification metrics and small encoding helpers.

use noble_linalg::Matrix;

/// Numerically stable softmax of one row of logits.
pub fn softmax_row(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// One-hot encodes `labels` into a `(n, num_classes)` matrix.
///
/// # Panics
///
/// Panics if any label is `>= num_classes`.
pub fn one_hot(labels: &[usize], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < num_classes, "label {c} >= num_classes {num_classes}");
        m[(i, c)] = 1.0;
    }
    m
}

/// Fraction of positions where `predicted == actual`.
///
/// Returns 0.0 for empty inputs.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "accuracy: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// Confusion counts as a `(num_classes, num_classes)` matrix where entry
/// `(a, p)` counts samples of true class `a` predicted as `p`.
///
/// # Panics
///
/// Panics if lengths differ or a label is out of range.
pub fn confusion_counts(predicted: &[usize], actual: &[usize], num_classes: usize) -> Matrix {
    assert_eq!(predicted.len(), actual.len(), "confusion: length mismatch");
    let mut m = Matrix::zeros(num_classes, num_classes);
    for (&p, &a) in predicted.iter().zip(actual) {
        assert!(p < num_classes && a < num_classes, "label out of range");
        m[(a, p)] += 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax_row(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let p = softmax_row(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn one_hot_layout() {
        let m = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn one_hot_rejects_out_of_range() {
        one_hot(&[3], 3);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_entries() {
        let m = confusion_counts(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(m[(0, 0)], 1.0); // true 0 predicted 0
        assert_eq!(m[(0, 1)], 1.0); // true 0 predicted 1
        assert_eq!(m[(1, 1)], 1.0); // true 1 predicted 1
        assert_eq!(m[(1, 0)], 0.0);
    }
}
