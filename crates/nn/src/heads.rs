//! Multi-head output composition.
//!
//! NObLe's WiFi model predicts several labels at once from one logit
//! vector: neighborhood class `C`, building `B`, floor `F` (Fig. 3 of the
//! paper), and optionally a coarse-resolution class `R` (§III-B). Each head
//! occupies a contiguous column range of the network output and carries its
//! own loss:
//!
//! - [`HeadKind::Softmax`] — single-label softmax cross-entropy (building,
//!   floor),
//! - [`HeadKind::MultiLabelSigmoid`] — the paper's binary cross-entropy over
//!   sigmoid outputs, which supports multi-hot targets (fine class with
//!   adjacency expansion).

use crate::loss::Loss;
use crate::metrics::softmax_row;
use crate::{activation, NnError};
use noble_linalg::Matrix;

/// Loss family attached to one output head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// Single-label softmax cross-entropy.
    Softmax,
    /// Multi-label binary cross-entropy on sigmoid outputs (the paper's
    /// NObLe objective).
    MultiLabelSigmoid,
}

/// One named output head covering `width` logits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadSpec {
    /// Display name (e.g. `"building"`).
    pub name: String,
    /// Number of classes in this head.
    pub width: usize,
    /// Loss family.
    pub kind: HeadKind,
    /// Relative weight of this head's loss in the total objective.
    pub loss_weight_millis: u32,
}

impl HeadSpec {
    /// A softmax head with unit loss weight.
    pub fn softmax(name: &str, width: usize) -> Self {
        HeadSpec {
            name: name.to_string(),
            width,
            kind: HeadKind::Softmax,
            loss_weight_millis: 1000,
        }
    }

    /// A multi-label sigmoid head with unit loss weight.
    pub fn multi_label(name: &str, width: usize) -> Self {
        HeadSpec {
            name: name.to_string(),
            width,
            kind: HeadKind::MultiLabelSigmoid,
            loss_weight_millis: 1000,
        }
    }

    /// Overrides the loss weight (expressed as a float, stored in millis so
    /// the spec stays `Eq`).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.loss_weight_millis = (weight * 1000.0).round().max(0.0) as u32;
        self
    }

    fn weight(&self) -> f64 {
        self.loss_weight_millis as f64 / 1000.0
    }
}

/// Layout of a multi-head output vector: column ranges per head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLayout {
    heads: Vec<HeadSpec>,
}

impl OutputLayout {
    /// Builds a layout from head specs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when no heads are given or a head
    /// has zero width.
    pub fn new(heads: Vec<HeadSpec>) -> Result<Self, NnError> {
        if heads.is_empty() {
            return Err(NnError::InvalidConfig(
                "output layout needs at least one head".into(),
            ));
        }
        if let Some(h) = heads.iter().find(|h| h.width == 0) {
            return Err(NnError::InvalidConfig(format!(
                "head '{}' has zero width",
                h.name
            )));
        }
        Ok(OutputLayout { heads })
    }

    /// Total number of logits.
    pub fn total_width(&self) -> usize {
        self.heads.iter().map(|h| h.width).sum()
    }

    /// The head specs in layout order.
    pub fn heads(&self) -> &[HeadSpec] {
        &self.heads
    }

    /// Column range of head `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn range(&self, index: usize) -> std::ops::Range<usize> {
        let start: usize = self.heads[..index].iter().map(|h| h.width).sum();
        start..start + self.heads[index].width
    }

    /// Index of the head named `name`, if present.
    pub fn head_index(&self, name: &str) -> Option<usize> {
        self.heads.iter().position(|h| h.name == name)
    }

    /// Extracts the arg-max class of head `head_index` for every row of
    /// `logits`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `logits` does not match the
    /// layout width.
    pub fn predict_classes(
        &self,
        logits: &Matrix,
        head_index: usize,
    ) -> Result<Vec<usize>, NnError> {
        if logits.cols() != self.total_width() {
            return Err(NnError::ShapeMismatch {
                context: "predict_classes",
                expected: self.total_width(),
                found: logits.cols(),
            });
        }
        let range = self.range(head_index);
        Ok((0..logits.rows())
            .map(|i| {
                let row = &logits.row(i)[range.clone()];
                noble_linalg::argmax(row).unwrap_or(0)
            })
            .collect())
    }

    /// Per-class probabilities of head `head_index` for every row.
    ///
    /// Softmax heads produce a distribution; sigmoid heads produce
    /// independent Bernoulli probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `logits` does not match the
    /// layout width.
    pub fn predict_probabilities(
        &self,
        logits: &Matrix,
        head_index: usize,
    ) -> Result<Matrix, NnError> {
        if logits.cols() != self.total_width() {
            return Err(NnError::ShapeMismatch {
                context: "predict_probabilities",
                expected: self.total_width(),
                found: logits.cols(),
            });
        }
        let range = self.range(head_index);
        let head = &self.heads[head_index];
        let mut out = Matrix::zeros(logits.rows(), head.width);
        for i in 0..logits.rows() {
            let row = &logits.row(i)[range.clone()];
            match head.kind {
                HeadKind::Softmax => {
                    out.row_mut(i).copy_from_slice(&softmax_row(row));
                }
                HeadKind::MultiLabelSigmoid => {
                    for (o, &z) in out.row_mut(i).iter_mut().zip(row) {
                        *o = activation::sigmoid(z);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The combined multi-head loss: a weighted sum of per-head losses over a
/// shared logit matrix.
///
/// Targets are given as one `(batch, total_width)` matrix whose column
/// blocks hold the per-head one-hot / multi-hot targets.
#[derive(Debug, Clone)]
pub struct MultiHeadLoss {
    layout: OutputLayout,
}

impl MultiHeadLoss {
    /// Wraps an output layout as a trainable loss.
    pub fn new(layout: OutputLayout) -> Self {
        MultiHeadLoss { layout }
    }

    /// The underlying layout.
    pub fn layout(&self) -> &OutputLayout {
        &self.layout
    }

    /// Per-head loss values for diagnostics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::evaluate`].
    pub fn per_head_losses(
        &self,
        outputs: &Matrix,
        targets: &Matrix,
    ) -> Result<Vec<(String, f64)>, NnError> {
        let mut out = Vec::with_capacity(self.layout.heads.len());
        for (idx, head) in self.layout.heads.iter().enumerate() {
            let (l, _) = self.head_loss(outputs, targets, idx)?;
            out.push((head.name.clone(), l));
        }
        Ok(out)
    }

    fn head_loss(
        &self,
        outputs: &Matrix,
        targets: &Matrix,
        idx: usize,
    ) -> Result<(f64, Matrix), NnError> {
        let n = outputs.rows();
        if n == 0 {
            return Err(NnError::EmptyData);
        }
        let range = self.layout.range(idx);
        let head = &self.layout.heads[idx];
        let nf = n as f64;
        let mut loss = 0.0;
        let mut grad = Matrix::zeros(n, head.width);
        match head.kind {
            HeadKind::Softmax => {
                for i in 0..n {
                    let logit_row = &outputs.row(i)[range.clone()];
                    let target_row = &targets.row(i)[range.clone()];
                    let probs = softmax_row(logit_row);
                    for j in 0..head.width {
                        let t = target_row[j];
                        if t > 0.0 {
                            loss -= t * probs[j].max(1e-300).ln();
                        }
                        grad[(i, j)] = (probs[j] - t) / nf;
                    }
                }
            }
            HeadKind::MultiLabelSigmoid => {
                for i in 0..n {
                    let logit_row = &outputs.row(i)[range.clone()];
                    let target_row = &targets.row(i)[range.clone()];
                    for j in 0..head.width {
                        let z = logit_row[j];
                        let t = target_row[j];
                        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
                        grad[(i, j)] = (activation::sigmoid(z) - t) / nf;
                    }
                }
            }
        }
        Ok((loss / nf, grad))
    }
}

impl Loss for MultiHeadLoss {
    fn evaluate(&self, outputs: &Matrix, targets: &Matrix) -> Result<(f64, Matrix), NnError> {
        if outputs.shape() != targets.shape() || outputs.cols() != self.layout.total_width() {
            return Err(NnError::ShapeMismatch {
                context: "multi-head loss",
                expected: self.layout.total_width(),
                found: outputs.cols(),
            });
        }
        let mut total = 0.0;
        let mut grad = Matrix::zeros(outputs.rows(), outputs.cols());
        for (idx, head) in self.layout.heads.iter().enumerate() {
            let w = head.weight();
            if w == 0.0 {
                continue;
            }
            let (l, g) = self.head_loss(outputs, targets, idx)?;
            total += w * l;
            let range = self.layout.range(idx);
            for i in 0..outputs.rows() {
                for (j, col) in range.clone().enumerate() {
                    grad[(i, col)] += w * g[(i, j)];
                }
            }
        }
        Ok((total, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> OutputLayout {
        OutputLayout::new(vec![
            HeadSpec::softmax("building", 3),
            HeadSpec::softmax("floor", 4),
            HeadSpec::multi_label("class", 5),
        ])
        .unwrap()
    }

    #[test]
    fn layout_ranges() {
        let l = layout();
        assert_eq!(l.total_width(), 12);
        assert_eq!(l.range(0), 0..3);
        assert_eq!(l.range(1), 3..7);
        assert_eq!(l.range(2), 7..12);
        assert_eq!(l.head_index("floor"), Some(1));
        assert_eq!(l.head_index("nope"), None);
    }

    #[test]
    fn layout_rejects_bad_specs() {
        assert!(OutputLayout::new(vec![]).is_err());
        assert!(OutputLayout::new(vec![HeadSpec::softmax("x", 0)]).is_err());
    }

    #[test]
    fn predict_classes_per_head() {
        let l = layout();
        let mut logits = Matrix::zeros(1, 12);
        logits[(0, 1)] = 5.0; // building 1
        logits[(0, 6)] = 5.0; // floor 3
        logits[(0, 7)] = 5.0; // class 0
        assert_eq!(l.predict_classes(&logits, 0).unwrap(), vec![1]);
        assert_eq!(l.predict_classes(&logits, 1).unwrap(), vec![3]);
        assert_eq!(l.predict_classes(&logits, 2).unwrap(), vec![0]);
        assert!(l.predict_classes(&Matrix::zeros(1, 11), 0).is_err());
    }

    #[test]
    fn predict_probabilities_normalized_for_softmax() {
        let l = layout();
        let logits = Matrix::filled(2, 12, 0.3);
        let p = l.predict_probabilities(&logits, 0).unwrap();
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Sigmoid head: independent probabilities, equal logits -> equal probs.
        let q = l.predict_probabilities(&logits, 2).unwrap();
        assert!(q.as_slice().iter().all(|&v| (v - q[(0, 0)]).abs() < 1e-12));
    }

    #[test]
    fn multi_head_loss_gradient_check() {
        let l = MultiHeadLoss::new(layout());
        let outputs = Matrix::from_fn(2, 12, |i, j| ((i * 12 + j) as f64 * 0.37).sin());
        let mut targets = Matrix::zeros(2, 12);
        targets[(0, 0)] = 1.0; // building 0
        targets[(0, 5)] = 1.0; // floor 2
        targets[(0, 8)] = 1.0; // class: multi-hot
        targets[(0, 9)] = 1.0;
        targets[(1, 2)] = 1.0;
        targets[(1, 3)] = 1.0;
        targets[(1, 11)] = 1.0;

        let (_, grad) = l.evaluate(&outputs, &targets).unwrap();
        let h = 1e-6;
        for (i, j) in [(0, 0), (0, 4), (0, 8), (1, 2), (1, 11), (1, 6)] {
            let mut op = outputs.clone();
            op[(i, j)] += h;
            let mut om = outputs.clone();
            om[(i, j)] -= h;
            let (lp, _) = l.evaluate(&op, &targets).unwrap();
            let (lm, _) = l.evaluate(&om, &targets).unwrap();
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (grad[(i, j)] - num).abs() < 1e-6,
                "grad[{i}{j}]: analytic {} vs numeric {num}",
                grad[(i, j)]
            );
        }
    }

    #[test]
    fn head_weights_scale_loss() {
        let base = OutputLayout::new(vec![HeadSpec::softmax("a", 2)]).unwrap();
        let double = OutputLayout::new(vec![HeadSpec::softmax("a", 2).with_weight(2.0)]).unwrap();
        let outputs = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let targets = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let (l1, g1) = MultiHeadLoss::new(base)
            .evaluate(&outputs, &targets)
            .unwrap();
        let (l2, g2) = MultiHeadLoss::new(double)
            .evaluate(&outputs, &targets)
            .unwrap();
        assert!((l2 - 2.0 * l1).abs() < 1e-12);
        assert!((g2[(0, 0)] - 2.0 * g1[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_head_ignored() {
        let l = OutputLayout::new(vec![
            HeadSpec::softmax("a", 2).with_weight(0.0),
            HeadSpec::softmax("b", 2),
        ])
        .unwrap();
        let outputs = Matrix::from_rows(&[vec![100.0, -100.0, 0.0, 0.0]]).unwrap();
        let mut targets = Matrix::zeros(1, 4);
        targets[(0, 1)] = 1.0; // head a: totally wrong, but weight 0
        targets[(0, 2)] = 1.0;
        let (loss, grad) = MultiHeadLoss::new(l).evaluate(&outputs, &targets).unwrap();
        assert!((loss - 2.0f64.ln()).abs() < 1e-9);
        assert_eq!(grad[(0, 0)], 0.0);
        assert_eq!(grad[(0, 1)], 0.0);
    }

    #[test]
    fn per_head_losses_named() {
        let l = MultiHeadLoss::new(layout());
        let outputs = Matrix::zeros(1, 12);
        let mut targets = Matrix::zeros(1, 12);
        targets[(0, 0)] = 1.0;
        targets[(0, 3)] = 1.0;
        targets[(0, 7)] = 1.0;
        let per = l.per_head_losses(&outputs, &targets).unwrap();
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].0, "building");
        assert!((per[0].1 - 3.0f64.ln()).abs() < 1e-12);
        assert!((per[1].1 - 4.0f64.ln()).abs() < 1e-12);
    }
}
