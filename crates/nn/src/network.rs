//! The multilayer perceptron: a sequential stack of dense, batch-norm and
//! activation layers.

use crate::{Activation, BatchNorm, Dense, NnError, Optimizer, Param};
use noble_linalg::Matrix;

/// One stage of an [`Mlp`].
#[derive(Debug, Clone)]
enum Layer {
    Dense(Dense),
    BatchNorm(BatchNorm),
    Activation(Activation, Option<Matrix>),
}

/// A feed-forward network built from dense, batch-norm and activation
/// stages.
///
/// The paper's WiFi model is
/// `Dense(W, 128) → BatchNorm → Tanh → Dense(128, 128) → BatchNorm → Tanh →
/// Dense(128, K)`; build it with [`Mlp::builder`]:
///
/// ```
/// use noble_nn::{Activation, Mlp};
///
/// let mlp = Mlp::builder(32, 7)
///     .dense(128).batch_norm().activation(Activation::Tanh)
///     .dense(128).batch_norm().activation(Activation::Tanh)
///     .dense(10)
///     .build();
/// assert_eq!(mlp.in_dim(), 32);
/// assert_eq!(mlp.out_dim(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    in_dim: usize,
    out_dim: usize,
}

/// Architecture description of one [`Mlp`] stage, introspectable via
/// [`Mlp::layer_specs`] and replayable via [`Mlp::from_specs`] — the
/// structural half of model serialization (parameter values travel via
/// [`crate::save_parameters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpLayerSpec {
    /// A dense layer `(in_dim, out_dim)`.
    Dense {
        /// Input width.
        in_dim: usize,
        /// Output width.
        out_dim: usize,
    },
    /// A batch-norm stage over `dim` features.
    BatchNorm {
        /// Feature width.
        dim: usize,
    },
    /// An element-wise activation.
    Activation(Activation),
}

/// Builder for [`Mlp`] (see [`Mlp::builder`]).
#[derive(Debug)]
pub struct MlpBuilder {
    layers: Vec<Layer>,
    in_dim: usize,
    current_dim: usize,
    seed: u64,
    next_layer_index: u64,
}

impl MlpBuilder {
    /// Appends a dense layer mapping the current width to `out_dim`.
    pub fn dense(mut self, out_dim: usize) -> Self {
        let layer_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.next_layer_index);
        self.next_layer_index += 1;
        self.layers.push(Layer::Dense(Dense::new(
            self.current_dim,
            out_dim,
            layer_seed,
        )));
        self.current_dim = out_dim;
        self
    }

    /// Appends a batch-normalization stage over the current width.
    pub fn batch_norm(mut self) -> Self {
        self.layers
            .push(Layer::BatchNorm(BatchNorm::new(self.current_dim)));
        self
    }

    /// Appends an element-wise activation.
    pub fn activation(mut self, act: Activation) -> Self {
        self.layers.push(Layer::Activation(act, None));
        self
    }

    /// Finalizes the network.
    pub fn build(self) -> Mlp {
        Mlp {
            out_dim: self.current_dim,
            in_dim: self.in_dim,
            layers: self.layers,
        }
    }
}

impl Mlp {
    /// Starts building a network that accepts `in_dim` features.
    ///
    /// `seed` drives all weight initialization deterministically; each layer
    /// derives its own sub-seed.
    pub fn builder(in_dim: usize, seed: u64) -> MlpBuilder {
        MlpBuilder {
            layers: Vec::new(),
            in_dim,
            current_dim: in_dim,
            seed,
            next_layer_index: 0,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.parameter_count(),
                Layer::BatchNorm(b) => b.parameter_count(),
                Layer::Activation(..) => 0,
            })
            .sum()
    }

    /// Number of dense layers (used by the energy model's MAC counter).
    pub fn dense_shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                Layer::Dense(d) => Some((d.in_dim(), d.out_dim())),
                _ => None,
            })
            .collect()
    }

    /// Whether the network contains batch-norm stages.
    pub fn has_batch_norm(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::BatchNorm(_)))
    }

    /// Forward pass over a `(batch, in_dim)` matrix.
    ///
    /// In training mode intermediate values are cached for
    /// [`Mlp::backward`]; in inference mode batch-norm uses its running
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Result<Matrix, NnError> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = match layer {
                Layer::Dense(d) => d.forward(&h, training)?,
                Layer::BatchNorm(b) => b.forward(&h, training)?,
                Layer::Activation(a, cache) => {
                    let y = a.forward(&h);
                    if training {
                        *cache = Some(y.clone());
                    }
                    y
                }
            };
        }
        Ok(h)
    }

    /// Convenience inference pass (no caching, running batch-norm stats).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers.
    pub fn predict(&mut self, x: &Matrix) -> Result<Matrix, NnError> {
        self.forward(x, false)
    }

    /// Single-sample inference: one feature row in, one output row out.
    ///
    /// This is the serving-style per-fix path; for throughput, stack
    /// samples and use [`Mlp::predict_batch`] instead — one forward over
    /// the whole batch reuses each weight matrix while it is
    /// cache-resident and amortizes per-call allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `row.len() != in_dim`.
    pub fn predict_one(&mut self, row: &[f64]) -> Result<Vec<f64>, NnError> {
        if row.len() != self.in_dim {
            return Err(NnError::ShapeMismatch {
                context: "predict_one",
                expected: self.in_dim,
                found: row.len(),
            });
        }
        let x = Matrix::from_vec(1, self.in_dim, row.to_vec()).expect("length checked");
        Ok(self.forward(&x, false)?.into_vec())
    }

    /// Batched inference over stacked samples: one forward pass over a
    /// `(rows.len(), in_dim)` matrix instead of `rows.len()` single-row
    /// forwards. Output row `i` corresponds to input row `i` and matches
    /// [`Mlp::predict_one`] on that row to floating-point reassociation
    /// (batch-norm inference uses running statistics, so rows are
    /// independent).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when any row's length differs
    /// from `in_dim`.
    pub fn predict_batch(&mut self, rows: &[Vec<f64>]) -> Result<Matrix, NnError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, self.out_dim));
        }
        let mut data = Vec::with_capacity(rows.len() * self.in_dim);
        for row in rows {
            if row.len() != self.in_dim {
                return Err(NnError::ShapeMismatch {
                    context: "predict_batch",
                    expected: self.in_dim,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        let x = Matrix::from_vec(rows.len(), self.in_dim, data).expect("lengths checked");
        self.forward(&x, false)
    }

    /// Output of the *penultimate* stage in inference mode — the learned
    /// embedding the paper analyzes in its manifold argument (§III-C).
    ///
    /// Runs all layers except the final dense layer.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers.
    pub fn embed(&mut self, x: &Matrix) -> Result<Matrix, NnError> {
        let last_dense = self
            .layers
            .iter()
            .rposition(|l| matches!(l, Layer::Dense(_)))
            .ok_or_else(|| NnError::InvalidConfig("network has no dense layer".to_string()))?;
        let mut h = x.clone();
        for layer in &mut self.layers[..last_dense] {
            h = match layer {
                Layer::Dense(d) => d.forward(&h, false)?,
                Layer::BatchNorm(b) => b.forward(&h, false)?,
                Layer::Activation(a, _) => a.forward(&h),
            };
        }
        Ok(h)
    }

    /// Backward pass: consumes `dL/d_output` and accumulates parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when called before a
    /// training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<(), NnError> {
        self.backward_with_input_grad(grad_out).map(|_| ())
    }

    /// Backward pass that also returns `dL/d_input` — needed when several
    /// networks are chained end-to-end (e.g. NObLe's projection →
    /// displacement → location modules) and the upstream module continues
    /// the chain.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when called before a
    /// training-mode forward pass.
    pub fn backward_with_input_grad(&mut self, grad_out: &Matrix) -> Result<Matrix, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = match layer {
                Layer::Dense(d) => d.backward(&g)?,
                Layer::BatchNorm(b) => b.backward(&g)?,
                Layer::Activation(a, cache) => {
                    let y = cache.as_ref().ok_or_else(|| {
                        NnError::InvalidConfig(
                            "activation backward called before training forward".to_string(),
                        )
                    })?;
                    let d = a.derivative_from_output(y);
                    g.hadamard(&d)?
                }
            };
        }
        Ok(g)
    }

    /// Applies one optimizer step to every parameter and clears gradients.
    pub fn apply_gradients(&mut self, optimizer: &mut Optimizer) {
        optimizer.begin_step();
        for p in self.params_mut() {
            optimizer.update(p);
        }
    }

    /// Mutable access to every trainable parameter tensor.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            match layer {
                Layer::Dense(d) => out.extend(d.params_mut()),
                Layer::BatchNorm(b) => out.extend(b.params_mut()),
                Layer::Activation(..) => {}
            }
        }
        out
    }

    /// Immutable view of every trainable parameter tensor, in the same
    /// order as [`Mlp::params_mut`] (serialization must not require
    /// exclusive access).
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Dense(d) => out.extend(d.params()),
                Layer::BatchNorm(b) => out.extend(b.params()),
                Layer::Activation(..) => {}
            }
        }
        out
    }

    /// Running batch-norm statistics in layer order, flattened as
    /// `(mean, var)` pairs. Inference output depends on these, so a
    /// serialized model must carry them alongside its parameters.
    pub fn running_stats(&self) -> Vec<(&[f64], &[f64])> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                Layer::BatchNorm(b) => Some(b.running_stats()),
                _ => None,
            })
            .collect()
    }

    /// Overwrites the running batch-norm statistics (deserialization);
    /// `stats` pairs up with [`Mlp::running_stats`] order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the pair count differs from
    /// the network's batch-norm stage count, and propagates length
    /// mismatches from the stages.
    pub fn set_running_stats(&mut self, stats: &[(Vec<f64>, Vec<f64>)]) -> Result<(), NnError> {
        let bn_layers: Vec<&mut BatchNorm> = self
            .layers
            .iter_mut()
            .filter_map(|l| match l {
                Layer::BatchNorm(b) => Some(b),
                _ => None,
            })
            .collect();
        if bn_layers.len() != stats.len() {
            return Err(NnError::InvalidConfig(format!(
                "blob carries {} batch-norm stat pairs, network has {} batch-norm stages",
                stats.len(),
                bn_layers.len()
            )));
        }
        for (b, (mean, var)) in bn_layers.into_iter().zip(stats) {
            b.set_running_stats(mean, var)?;
        }
        Ok(())
    }

    /// The architecture as a replayable spec sequence (see
    /// [`MlpLayerSpec`]).
    pub fn layer_specs(&self) -> Vec<MlpLayerSpec> {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => MlpLayerSpec::Dense {
                    in_dim: d.in_dim(),
                    out_dim: d.out_dim(),
                },
                Layer::BatchNorm(b) => MlpLayerSpec::BatchNorm { dim: b.dim() },
                Layer::Activation(a, _) => MlpLayerSpec::Activation(*a),
            })
            .collect()
    }

    /// Rebuilds a network from [`Mlp::layer_specs`] output. Weights are
    /// freshly initialized (seed 0) — callers restoring a serialized model
    /// overwrite them with [`crate::load_parameters`] immediately after.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when consecutive specs disagree
    /// on widths (e.g. a dense layer whose `in_dim` is not the running
    /// width).
    pub fn from_specs(in_dim: usize, specs: &[MlpLayerSpec]) -> Result<Mlp, NnError> {
        let mut builder = Mlp::builder(in_dim, 0);
        let mut width = in_dim;
        for spec in specs {
            match *spec {
                MlpLayerSpec::Dense {
                    in_dim: d_in,
                    out_dim,
                } => {
                    if d_in != width {
                        return Err(NnError::InvalidConfig(format!(
                            "dense spec expects input width {d_in}, running width is {width}"
                        )));
                    }
                    builder = builder.dense(out_dim);
                    width = out_dim;
                }
                MlpLayerSpec::BatchNorm { dim } => {
                    if dim != width {
                        return Err(NnError::InvalidConfig(format!(
                            "batch-norm spec expects width {dim}, running width is {width}"
                        )));
                    }
                    builder = builder.batch_norm();
                }
                MlpLayerSpec::Activation(a) => {
                    builder = builder.activation(a);
                }
            }
        }
        Ok(builder.build())
    }

    /// Gradient L2 norm across all parameters (diagnostics, divergence
    /// detection).
    pub fn grad_norm(&mut self) -> f64 {
        self.params_mut()
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loss, MseLoss};

    #[test]
    fn builder_tracks_dims() {
        let mlp = Mlp::builder(5, 0)
            .dense(16)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(3)
            .build();
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.dense_shapes(), vec![(5, 16), (16, 3)]);
        assert!(mlp.has_batch_norm());
        assert_eq!(mlp.parameter_count(), 5 * 16 + 16 + 16 + 16 + 16 * 3 + 3);
    }

    #[test]
    fn forward_shapes() {
        let mut mlp = Mlp::builder(4, 1)
            .dense(8)
            .activation(Activation::Relu)
            .dense(2)
            .build();
        let x = Matrix::zeros(10, 4);
        let y = mlp.forward(&x, false).unwrap();
        assert_eq!(y.shape(), (10, 2));
        assert!(mlp.forward(&Matrix::zeros(1, 5), false).is_err());
    }

    #[test]
    fn deterministic_initialization() {
        let mut a = Mlp::builder(3, 9).dense(4).dense(2).build();
        let mut b = Mlp::builder(3, 9).dense(4).dense(2).build();
        let x = Matrix::filled(2, 3, 0.7);
        assert_eq!(
            a.forward(&x, false).unwrap().as_slice(),
            b.forward(&x, false).unwrap().as_slice()
        );
        let mut c = Mlp::builder(3, 10).dense(4).dense(2).build();
        assert_ne!(
            a.forward(&x, false).unwrap().as_slice(),
            c.forward(&x, false).unwrap().as_slice()
        );
    }

    #[test]
    fn distinct_layers_get_distinct_seeds() {
        let mlp = Mlp::builder(4, 3).dense(4).dense(4).build();
        let shapes = mlp.dense_shapes();
        assert_eq!(shapes[0], shapes[1]);
        // Probe: outputs differ layer-to-layer because weights differ.
        let mut m = mlp.clone();
        let x = Matrix::identity(4);
        let h1 = m.forward(&x, false).unwrap();
        assert!(h1.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut mlp = Mlp::builder(2, 0)
            .dense(2)
            .activation(Activation::Tanh)
            .build();
        assert!(mlp.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut mlp = Mlp::builder(3, 5)
            .dense(4)
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let x = Matrix::from_rows(&[vec![0.2, -0.4, 0.9], vec![1.0, 0.1, -0.3]]).unwrap();
        let t = Matrix::from_rows(&[vec![0.5, -0.5], vec![0.0, 1.0]]).unwrap();

        let out = mlp.forward(&x, true).unwrap();
        let (_, grad) = MseLoss.evaluate(&out, &t).unwrap();
        mlp.backward(&grad).unwrap();

        // Numerically check the gradient of the FIRST dense layer's first weight.
        let analytic = {
            let params = mlp.params_mut();
            params[0].grad[(0, 0)]
        };
        let h = 1e-6;
        let loss_with_perturbation = |mlp: &Mlp, delta: f64| -> f64 {
            let mut m = mlp.clone();
            {
                let mut params = m.params_mut();
                params[0].value[(0, 0)] += delta;
            }
            let out = m.forward(&x, true).unwrap();
            MseLoss.evaluate(&out, &t).unwrap().0
        };
        let base = mlp.clone();
        let num =
            (loss_with_perturbation(&base, h) - loss_with_perturbation(&base, -h)) / (2.0 * h);
        assert!(
            (analytic - num).abs() < 1e-6,
            "analytic {analytic} vs numeric {num}"
        );
    }

    #[test]
    fn training_reduces_loss_on_xor() {
        // XOR is the classic non-linear sanity check.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        let t = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]).unwrap();
        let mut mlp = Mlp::builder(2, 13)
            .dense(8)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        let mut opt = Optimizer::adam(0.05);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..500 {
            let out = mlp.forward(&x, true).unwrap();
            let (l, g) = MseLoss.evaluate(&out, &t).unwrap();
            mlp.backward(&g).unwrap();
            mlp.apply_gradients(&mut opt);
            first_loss.get_or_insert(l);
            last_loss = l;
        }
        assert!(last_loss < first_loss.unwrap() * 0.05, "loss {last_loss}");
        assert!(last_loss < 0.02);
    }

    #[test]
    fn predict_batch_matches_per_sample_path() {
        let mut mlp = Mlp::builder(6, 21)
            .dense(16)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(3)
            .build();
        // Drive batch-norm running stats away from their init so inference
        // actually exercises them.
        let warm = Matrix::from_fn(32, 6, |i, j| ((i * 5 + j * 3) % 9) as f64 / 4.0 - 1.0);
        mlp.forward(&warm, true).unwrap();

        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 7 + j) % 13) as f64 / 6.0 - 1.0)
                    .collect()
            })
            .collect();
        let batched = mlp.predict_batch(&rows).unwrap();
        assert_eq!(batched.shape(), (17, 3));
        for (i, row) in rows.iter().enumerate() {
            let single = mlp.predict_one(row).unwrap();
            for j in 0..3 {
                assert!(
                    (batched[(i, j)] - single[j]).abs() < 1e-9,
                    "row {i} col {j}: batched {} vs single {}",
                    batched[(i, j)],
                    single[j]
                );
            }
        }
    }

    #[test]
    fn predict_batch_rejects_ragged_and_handles_empty() {
        let mut mlp = Mlp::builder(3, 0).dense(2).build();
        assert_eq!(mlp.predict_batch(&[]).unwrap().shape(), (0, 2));
        let err = mlp.predict_batch(&[vec![1.0, 2.0, 3.0], vec![1.0]]);
        assert!(err.is_err());
        assert!(mlp.predict_one(&[1.0]).is_err());
    }

    #[test]
    fn embed_returns_penultimate_width() {
        let mut mlp = Mlp::builder(3, 2)
            .dense(7)
            .activation(Activation::Tanh)
            .dense(4)
            .build();
        let e = mlp.embed(&Matrix::zeros(5, 3)).unwrap();
        assert_eq!(e.shape(), (5, 7));
    }

    #[test]
    fn grad_norm_zero_after_apply() {
        let mut mlp = Mlp::builder(2, 0).dense(2).build();
        let x = Matrix::filled(1, 2, 1.0);
        let out = mlp.forward(&x, true).unwrap();
        let (_, g) = MseLoss.evaluate(&out, &Matrix::zeros(1, 2)).unwrap();
        mlp.backward(&g).unwrap();
        assert!(mlp.grad_norm() >= 0.0);
        let mut opt = Optimizer::sgd(0.1);
        mlp.apply_gradients(&mut opt);
        assert_eq!(mlp.grad_norm(), 0.0);
    }
}
