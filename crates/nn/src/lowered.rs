//! Reduced-precision inference lowering: [`Mlp`] → [`LoweredMlp`].
//!
//! The serving fast path trades the f64 reference's bit-exactness for
//! speed behind an explicit accuracy gate (ROADMAP "f32 / quantized /
//! SIMD inference fast path"). Lowering happens **once, off the hot
//! path**: every dense layer's weights are narrowed to f32 (or
//! row-quantized to int8 with per-output-channel scale/zero-point), and
//! every batch-norm stage is folded into a per-feature affine
//! `y = scale ⊙ x + shift` — the inference-mode normalization
//! `γ (x - μ) / √(σ² + ε) + β` collapsed to two vectors, so the lowered
//! forward pass never touches the running statistics again.
//!
//! The result is immutable ([`LoweredMlp::predict_batch`] takes `&self`,
//! unlike the cache-carrying [`Mlp`]) and deterministic in the same axes
//! as the f64 path: the f32 tier rides `noble_linalg::matmul_f32`'s
//! batch-shape/thread-count invariance, and the int8 tier's i32
//! accumulation is exact integer arithmetic. What it does *not* promise
//! is agreement with f64 beyond the gated tolerance — that contract is
//! pinned by the precision-parity suites, not by construction.
//!
//! This module is carved out of the `float-determinism` lint scope by
//! `noble-lint.toml`: narrowing is its entire job.

use crate::{Activation, Mlp, MlpLayerSpec, NnError};
use noble_linalg::{matmul_f32, matmul_i8, Matrix, MatrixF32, QuantizedMatrixI8};

/// Which arithmetic an inference pass runs in.
///
/// `Exact` is the f64 reference path — bit-identical across batch
/// shapes, thread counts, and snapshot round trips. `F32` and `Int8`
/// are the accuracy-gated lowered tiers served by [`LoweredMlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InferencePrecision {
    /// Double-precision reference inference (the default).
    #[default]
    Exact,
    /// Single-precision lowered inference (~1e-7 relative arithmetic).
    F32,
    /// Int8 row-quantized lowered inference (quantization-grid accuracy,
    /// exact i32 accumulation).
    Int8,
}

impl InferencePrecision {
    /// Stable lower-case label used in bench JSON and config parsing.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InferencePrecision::Exact => "exact",
            InferencePrecision::F32 => "f32",
            InferencePrecision::Int8 => "int8",
        }
    }
}

/// The f64→f32 lowering cast, centralized so exact-path modules (which
/// the `float-determinism` lint guards) never spell the narrowing
/// themselves.
#[inline]
#[must_use]
pub fn narrow(v: f64) -> f32 {
    v as f32
}

/// One stage of the lowered forward pass.
#[derive(Debug, Clone)]
enum Stage {
    /// f32 dense layer: untransposed `(in, out)` weights for the
    /// dispatching [`matmul_f32`] family, plus the bias row.
    DenseF32 { weights: MatrixF32, bias: Vec<f32> },
    /// Int8 dense layer: weights quantized per **output channel** (the
    /// transposed `(out, in)` layout [`matmul_i8`] consumes), plus the
    /// bias row in f32. Activations are quantized per-row dynamically
    /// at each call.
    DenseI8 {
        weights_t: QuantizedMatrixI8,
        bias: Vec<f32>,
    },
    /// A batch-norm stage folded to `y = scale ⊙ x + shift`.
    Affine { scale: Vec<f32>, shift: Vec<f32> },
    /// Element-wise activation, evaluated in f32.
    Activation(Activation),
}

/// An immutable, reduced-precision lowering of a trained [`Mlp`].
///
/// Built once via [`LoweredMlp::lower`] from the network's public
/// surface (`layer_specs` + `params` + `running_stats`); the progenitor
/// is untouched and remains the exact reference.
#[derive(Debug, Clone)]
pub struct LoweredMlp {
    stages: Vec<Stage>,
    in_dim: usize,
    out_dim: usize,
    precision: InferencePrecision,
}

impl LoweredMlp {
    /// Lowers `mlp` into the requested reduced-precision tier.
    ///
    /// Batch-norm folding happens in f64 (`γ / √(σ² + ε)` and
    /// `β - μ · scale`) before narrowing, so the affine constants carry
    /// full precision into the cast.
    ///
    /// # Errors
    ///
    /// [`NnError::InvalidConfig`] when `precision` is
    /// [`InferencePrecision::Exact`] (the exact tier is the [`Mlp`]
    /// itself — there is nothing to lower).
    pub fn lower(mlp: &Mlp, precision: InferencePrecision) -> Result<LoweredMlp, NnError> {
        if precision == InferencePrecision::Exact {
            return Err(NnError::InvalidConfig(
                "InferencePrecision::Exact is the f64 Mlp itself; lowering applies to F32/Int8"
                    .into(),
            ));
        }
        let params = mlp.params();
        let stats = mlp.running_stats();
        let mut stages = Vec::new();
        let mut next_param = 0usize;
        let mut next_stat = 0usize;
        for spec in mlp.layer_specs() {
            match spec {
                MlpLayerSpec::Dense { out_dim, .. } => {
                    let weights = &params[next_param].value;
                    let bias = &params[next_param + 1].value;
                    next_param += 2;
                    let bias: Vec<f32> = bias.as_slice().iter().map(|&v| narrow(v)).collect();
                    debug_assert_eq!(bias.len(), out_dim);
                    match precision {
                        InferencePrecision::F32 => stages.push(Stage::DenseF32 {
                            weights: MatrixF32::from_f64(weights),
                            bias,
                        }),
                        InferencePrecision::Int8 => stages.push(Stage::DenseI8 {
                            weights_t: QuantizedMatrixI8::quantize_f64(&weights.transpose()),
                            bias,
                        }),
                        InferencePrecision::Exact => unreachable!("rejected above"),
                    }
                }
                MlpLayerSpec::BatchNorm { dim } => {
                    let gamma = params[next_param].value.as_slice();
                    let beta = params[next_param + 1].value.as_slice();
                    next_param += 2;
                    let (mean, var) = stats[next_stat];
                    next_stat += 1;
                    let mut scale = Vec::with_capacity(dim);
                    let mut shift = Vec::with_capacity(dim);
                    for j in 0..dim {
                        let s = gamma[j] / (var[j] + 1e-5).sqrt();
                        scale.push(narrow(s));
                        shift.push(narrow(beta[j] - mean[j] * s));
                    }
                    stages.push(Stage::Affine { scale, shift });
                }
                MlpLayerSpec::Activation(a) => stages.push(Stage::Activation(a)),
            }
        }
        Ok(LoweredMlp {
            stages,
            in_dim: mlp.in_dim(),
            out_dim: mlp.out_dim(),
            precision,
        })
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The tier this network was lowered to (never `Exact`).
    #[must_use]
    pub fn precision(&self) -> InferencePrecision {
        self.precision
    }

    /// Approximate bytes held by the lowered parameters (for bench and
    /// capacity reporting): 4 per f32 scalar, 1 per int8 code plus its
    /// per-row metadata.
    #[must_use]
    pub fn parameter_bytes(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::DenseF32 { weights, bias } => {
                    weights.rows() * weights.cols() * 4 + bias.len() * 4
                }
                Stage::DenseI8 { weights_t, bias } => {
                    weights_t.rows() * weights_t.cols() + weights_t.rows() * 8 + bias.len() * 4
                }
                Stage::Affine { scale, shift } => (scale.len() + shift.len()) * 4,
                Stage::Activation(_) => 0,
            })
            .sum()
    }

    /// Batched inference in the lowered tier: f64 features in, f64
    /// outputs out (widened from f32 — exact), with all internal
    /// arithmetic reduced-precision.
    ///
    /// Immutable by design: lowered inference keeps no caches, so one
    /// lowered model can serve concurrently without interior state.
    ///
    /// # Errors
    ///
    /// [`NnError::ShapeMismatch`] when `x.cols() != self.in_dim()`;
    /// propagates kernel shape failures.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix, NnError> {
        if x.cols() != self.in_dim {
            return Err(NnError::ShapeMismatch {
                context: "lowered predict",
                expected: self.in_dim,
                found: x.cols(),
            });
        }
        let mut cur = MatrixF32::from_f64(x);
        for stage in &self.stages {
            cur = match stage {
                Stage::DenseF32 { weights, bias } => {
                    let mut y = matmul_f32(&cur, weights)?;
                    for i in 0..y.rows() {
                        for (o, &b) in y.row_mut(i).iter_mut().zip(bias) {
                            *o += b;
                        }
                    }
                    y
                }
                Stage::DenseI8 { weights_t, bias } => {
                    let qx = QuantizedMatrixI8::quantize(&cur);
                    let mut y = matmul_i8(&qx, weights_t)?;
                    for i in 0..y.rows() {
                        for (o, &b) in y.row_mut(i).iter_mut().zip(bias) {
                            *o += b;
                        }
                    }
                    y
                }
                Stage::Affine { scale, shift } => {
                    let mut y = cur;
                    for i in 0..y.rows() {
                        for (j, o) in y.row_mut(i).iter_mut().enumerate() {
                            *o = *o * scale[j] + shift[j];
                        }
                    }
                    y
                }
                Stage::Activation(a) => {
                    let mut y = cur;
                    let f: fn(f32) -> f32 = match a {
                        // The polynomial tanh is the single biggest win
                        // of the tier at serving widths — libm tanh on
                        // two hidden layers outweighs the gemm savings.
                        Activation::Tanh => noble_linalg::tanh_f32_fast,
                        Activation::Relu => |v| v.max(0.0),
                        Activation::Sigmoid => |v| 1.0 / (1.0 + (-v).exp()),
                        Activation::Identity => |v| v,
                    };
                    for v in y.as_mut_slice() {
                        *v = f(*v);
                    }
                    y
                }
            };
        }
        Ok(cur.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    fn trained_network(seed: u64) -> Mlp {
        let mut mlp = Mlp::builder(6, seed)
            .dense(16)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(16)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(4)
            .build();
        // Drive the running stats away from init so BN folding matters.
        let warm = Matrix::from_fn(32, 6, |i, j| ((i * 7 + j * 3) % 11) as f64 / 5.0 - 1.0);
        mlp.forward(&warm, true).unwrap();
        mlp
    }

    fn features(rows: usize) -> Matrix {
        Matrix::from_fn(rows, 6, |i, j| ((i * 13 + j * 5) % 17) as f64 / 8.0 - 1.0)
    }

    #[test]
    fn f32_lowering_tracks_the_f64_reference() {
        let mut mlp = trained_network(3);
        let x = features(24);
        let exact = mlp.predict(&x).unwrap();
        let lowered = LoweredMlp::lower(&mlp, InferencePrecision::F32).unwrap();
        let got = lowered.predict_batch(&x).unwrap();
        let diff = exact.max_abs_diff(&got).unwrap();
        assert!(diff < 1e-4, "f32 lowering drifted {diff}");
        assert_eq!(lowered.precision(), InferencePrecision::F32);
        assert_eq!((lowered.in_dim(), lowered.out_dim()), (6, 4));
    }

    #[test]
    fn int8_lowering_tracks_the_f64_reference_loosely() {
        let mut mlp = trained_network(5);
        let x = features(24);
        let exact = mlp.predict(&x).unwrap();
        let lowered = LoweredMlp::lower(&mlp, InferencePrecision::Int8).unwrap();
        let got = lowered.predict_batch(&x).unwrap();
        // Tanh saturation keeps activations O(1); the per-layer grid is
        // ~1/127, so end-to-end drift stays well under one logit unit.
        let diff = exact.max_abs_diff(&got).unwrap();
        assert!(diff < 0.5, "int8 lowering drifted {diff}");
    }

    #[test]
    fn lowered_inference_is_batch_shape_invariant() {
        let mlp = trained_network(7);
        let x = features(16);
        for precision in [InferencePrecision::F32, InferencePrecision::Int8] {
            let lowered = LoweredMlp::lower(&mlp, precision).unwrap();
            let full = lowered.predict_batch(&x).unwrap();
            for i in 0..x.rows() {
                let row = Matrix::from_vec(1, x.cols(), x.row(i).to_vec()).unwrap();
                let alone = lowered.predict_batch(&row).unwrap();
                assert_eq!(full.row(i), alone.row(0), "{precision:?} row {i}");
            }
        }
    }

    #[test]
    fn lowering_exact_is_rejected() {
        let mlp = trained_network(1);
        assert!(LoweredMlp::lower(&mlp, InferencePrecision::Exact).is_err());
    }

    #[test]
    fn lowered_rejects_wrong_width() {
        let mlp = trained_network(1);
        let lowered = LoweredMlp::lower(&mlp, InferencePrecision::F32).unwrap();
        assert!(lowered.predict_batch(&Matrix::zeros(2, 7)).is_err());
    }

    #[test]
    fn lowered_parameters_are_smaller_than_f64() {
        let mlp = trained_network(1);
        let f64_bytes = mlp.parameter_count() * 8;
        let f32_bytes = LoweredMlp::lower(&mlp, InferencePrecision::F32)
            .unwrap()
            .parameter_bytes();
        let i8_bytes = LoweredMlp::lower(&mlp, InferencePrecision::Int8)
            .unwrap()
            .parameter_bytes();
        assert!(f32_bytes * 2 <= f64_bytes + 8);
        assert!(i8_bytes < f32_bytes);
    }

    #[test]
    fn precision_labels_are_stable() {
        assert_eq!(InferencePrecision::Exact.label(), "exact");
        assert_eq!(InferencePrecision::F32.label(), "f32");
        assert_eq!(InferencePrecision::Int8.label(), "int8");
        assert_eq!(InferencePrecision::default(), InferencePrecision::Exact);
    }
}
