//! Snapshot round-trip guarantees for every snapshotable model kind.
//!
//! The load-bearing property: `hydrate(snapshot(m))` localizes
//! **bit-identically** to `m` for WifiNoble, ImuNoble and
//! KnnFingerprint. CI greps for this suite by name — do not rename it
//! casually.
//!
//! The adversarial half: corrupt, truncated and version-skewed blobs
//! must decode to the typed [`NobleError::BadSnapshot`] — never a panic,
//! never a huge allocation. Byte flips inside the f64 payload can decode
//! to a *different but valid* model (bits are bits); the property there
//! is "typed error or clean hydrate", and the checksummed file store one
//! layer up is what catches silent payload damage.

use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::wifi::{KnnFingerprint, WifiNoble, WifiNobleConfig};
use noble::{hydrate, Localizer, ModelSnapshot, NobleError, SnapshotLocalizer};
use noble_datasets::{uji_campaign, ImuConfig, ImuDataset, ImuPathSample, UjiConfig, WifiCampaign};
use noble_linalg::Matrix;
use proptest::prelude::*;
use std::sync::OnceLock;

fn campaign() -> &'static WifiCampaign {
    static CAMPAIGN: OnceLock<WifiCampaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        uji_campaign(&cfg).unwrap()
    })
}

fn imu_dataset() -> &'static ImuDataset {
    static DATASET: OnceLock<ImuDataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        let mut cfg = ImuConfig::small();
        cfg.num_paths = 200;
        ImuDataset::generate(&cfg).unwrap()
    })
}

/// One (snapshot, probe features, reference outputs) triple per model
/// kind, trained once and shared by every test and proptest case.
struct Fixture {
    snapshot: ModelSnapshot,
    features: Matrix,
    reference: Vec<noble_geo::Point>,
}

fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let campaign = campaign();
        let wifi_features = campaign.features(&campaign.test);
        let mut out = Vec::new();

        let mut wifi = WifiNoble::train(
            campaign,
            &WifiNobleConfig {
                epochs: 3,
                ..WifiNobleConfig::small()
            },
        )
        .unwrap();
        out.push(Fixture {
            snapshot: SnapshotLocalizer::snapshot(&wifi),
            reference: Localizer::localize_batch(&mut wifi, &wifi_features).unwrap(),
            features: wifi_features.clone(),
        });

        let knn = KnnFingerprint::fit(campaign, 4).unwrap();
        let mut knn_loc: Box<dyn Localizer> = Box::new(knn);
        out.push(Fixture {
            snapshot: knn_loc.try_snapshot().unwrap(),
            reference: knn_loc.localize_batch(&wifi_features).unwrap(),
            features: wifi_features,
        });

        let dataset = imu_dataset();
        let mut imu = ImuNoble::train(
            dataset,
            &ImuNobleConfig {
                epochs: 8,
                ..ImuNobleConfig::small()
            },
        )
        .unwrap();
        let refs: Vec<&ImuPathSample> = dataset.test.iter().collect();
        let imu_features = imu.path_features(&refs);
        out.push(Fixture {
            snapshot: SnapshotLocalizer::snapshot(&imu),
            reference: Localizer::localize_batch(&mut imu, &imu_features).unwrap(),
            features: imu_features,
        });
        out
    })
}

#[test]
fn roundtrip_localizes_bit_identically_for_all_kinds() {
    for fixture in fixtures() {
        let encoded = fixture.snapshot.to_bytes();
        let decoded = ModelSnapshot::from_bytes(&encoded).unwrap();
        assert_eq!(decoded, fixture.snapshot);

        let mut hydrated = hydrate(&decoded)
            .unwrap_or_else(|e| panic!("{} failed to hydrate: {e}", fixture.snapshot.kind()));
        let info = hydrated.info();
        assert_eq!(info.model, fixture.snapshot.kind());
        assert_eq!(info.feature_dim, fixture.snapshot.feature_dim());
        assert_eq!(info.class_count, fixture.snapshot.class_count());

        let got = hydrated.localize_batch(&fixture.features).unwrap();
        assert_eq!(
            got,
            fixture.reference,
            "{}: hydrated model diverged from the original (bit-exactness broken)",
            fixture.snapshot.kind()
        );
    }
}

#[test]
fn double_roundtrip_is_stable() {
    // snapshot(hydrate(snapshot(m))) must byte-equal snapshot(m): no
    // state is lost or mangled by a hydrate.
    for fixture in fixtures() {
        let once = hydrate(&fixture.snapshot).unwrap();
        let again = once
            .try_snapshot()
            .expect("hydrated models stay snapshotable");
        assert_eq!(
            again.to_bytes(),
            fixture.snapshot.to_bytes(),
            "{}: second-generation snapshot drifted",
            fixture.snapshot.kind()
        );
    }
}

#[test]
fn version_skew_is_a_typed_error() {
    for fixture in fixtures() {
        // Container version lives right after the 4-byte magic.
        let mut skewed = fixture.snapshot.to_bytes();
        skewed[4] = skewed[4].wrapping_add(7);
        match ModelSnapshot::from_bytes(&skewed) {
            Err(NobleError::BadSnapshot(msg)) => {
                assert!(msg.contains("version"), "unexpected message: {msg}")
            }
            other => panic!("container version skew not rejected: {other:?}"),
        }
        // Payload version is the first u32 of the payload.
        let mut payload = fixture.snapshot.payload().to_vec();
        payload[0] = payload[0].wrapping_add(9);
        let snap = ModelSnapshot::new(
            fixture.snapshot.kind(),
            fixture.snapshot.feature_dim(),
            fixture.snapshot.class_count(),
            payload,
        );
        match hydrate(&snap) {
            Err(NobleError::BadSnapshot(msg)) => {
                assert!(msg.contains("version"), "unexpected message: {msg}")
            }
            Ok(_) => panic!("{}: payload version skew hydrated", fixture.snapshot.kind()),
            Err(e) => panic!("wrong error type: {e}"),
        }
    }
}

#[test]
fn kind_mismatch_is_a_typed_error() {
    let fixtures = fixtures();
    // Re-label each payload with every *other* kind: hydration must fail
    // with a typed error (the payload parsers disagree), never panic.
    for a in fixtures {
        for b in fixtures {
            if a.snapshot.kind() == b.snapshot.kind() {
                continue;
            }
            let mislabeled = ModelSnapshot::new(
                b.snapshot.kind(),
                a.snapshot.feature_dim(),
                a.snapshot.class_count(),
                a.snapshot.payload().to_vec(),
            );
            assert!(
                matches!(hydrate(&mislabeled), Err(NobleError::BadSnapshot(_))),
                "{} payload labeled {} did not error",
                a.snapshot.kind(),
                b.snapshot.kind()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of an encoded snapshot is a typed error: the
    /// container pins its total length, so truncation can never parse.
    #[test]
    fn truncated_blob_is_typed_error(kind in 0usize..3, cut in 0usize..1 << 20) {
        let fixture = &fixtures()[kind];
        let bytes = fixture.snapshot.to_bytes();
        let cut = cut % bytes.len();
        match ModelSnapshot::from_bytes(&bytes[..cut]) {
            Err(NobleError::BadSnapshot(_)) => {}
            other => {
                prop_assert!(false, "truncation at {cut} parsed: {other:?}");
            }
        }
    }

    /// A single flipped byte anywhere in the blob either fails with the
    /// typed error or decodes to a *valid* model (flips inside f64
    /// parameter data are legal bit patterns) — it must never panic and
    /// never produce a model whose metadata disagrees with its payload.
    #[test]
    fn corrupted_blob_never_panics(kind in 0usize..3, pos in 0usize..1 << 20, flip in 1u8..=255) {
        let fixture = &fixtures()[kind];
        let mut bytes = fixture.snapshot.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match ModelSnapshot::from_bytes(&bytes) {
            Err(NobleError::BadSnapshot(_)) => {}
            Err(e) => {
                prop_assert!(false, "wrong error type: {e}");
            }
            Ok(snap) => match hydrate(&snap) {
                Err(NobleError::BadSnapshot(_)) => {}
                Err(e) => {
                    prop_assert!(false, "wrong error type: {e}");
                }
                Ok(mut model) => {
                    // Survived the flip: it must still be a coherent
                    // localizer for its declared feature width.
                    let info = model.info();
                    prop_assert!(info.feature_dim == snap.feature_dim());
                    let probe = Matrix::zeros(1, info.feature_dim);
                    // May legitimately fail (e.g. NaN weights), but only
                    // with a typed error.
                    let _ = model.localize_batch(&probe);
                }
            },
        }
    }
}
