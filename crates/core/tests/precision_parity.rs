//! Accuracy gates for the reduced-precision serving tier.
//!
//! Every lowered twin ([`noble::LoweredWifi`], [`noble::LoweredImu`])
//! must track its f64 progenitor within the tier's tolerance:
//!
//! - **f32**: ≤ 1e-4 position error on every row (in practice the
//!   argmax decode absorbs the ~1e-6 logit drift and positions match
//!   exactly; the gate leaves headroom for borderline logit ties),
//! - **int8**: a calibrated bound — the 8-bit affine grid perturbs
//!   logits enough to flip argmax on borderline rows, so the gate is
//!   "almost all rows decode to the same centroid, and the mean
//!   position delta stays under a grid cell".
//!
//! The suite also pins the structural contracts: lowering never
//! perturbs the exact model (before/after snapshots byte-equal, f64
//! outputs bit-identical), a lowered twin's snapshot **is** the
//! progenitor's exact f64 snapshot, and lowered inference is
//! bit-stable across thread counts. CI greps for this suite by name —
//! do not rename it casually.

use noble::imu::{ImuNoble, ImuNobleConfig};
use noble::wifi::{WifiNoble, WifiNobleConfig};
use noble::{hydrate, InferencePrecision, Localizer, SnapshotLocalizer};
use noble_datasets::{uji_campaign, ImuConfig, ImuDataset, ImuPathSample, UjiConfig};
use noble_geo::Point;
use noble_linalg::{num_threads, set_num_threads, Matrix};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A trained progenitor with probe features and its exact outputs.
struct Fixture {
    model: Box<dyn Localizer + Sync>,
    features: Matrix,
    exact: Vec<Point>,
}

fn wifi_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        let campaign = uji_campaign(&cfg).unwrap();
        let features = campaign.features(&campaign.test);
        let mut model = WifiNoble::train(
            &campaign,
            &WifiNobleConfig {
                epochs: 3,
                ..WifiNobleConfig::small()
            },
        )
        .unwrap();
        let exact = Localizer::localize_batch(&mut model, &features).unwrap();
        Fixture {
            model: Box::new(model),
            features,
            exact,
        }
    })
}

fn imu_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = ImuConfig::small();
        cfg.num_paths = 200;
        let dataset = ImuDataset::generate(&cfg).unwrap();
        let mut model = ImuNoble::train(
            &dataset,
            &ImuNobleConfig {
                epochs: 8,
                ..ImuNobleConfig::small()
            },
        )
        .unwrap();
        let refs: Vec<&ImuPathSample> = dataset.test.iter().collect();
        let features = model.path_features(&refs);
        let exact = Localizer::localize_batch(&mut model, &features).unwrap();
        Fixture {
            model: Box::new(model),
            features,
            exact,
        }
    })
}

fn fixtures() -> [&'static Fixture; 2] {
    [wifi_fixture(), imu_fixture()]
}

fn max_delta(a: &[Point], b: &[Point]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.distance(*y))
        .fold(0.0, f64::max)
}

fn mean_delta(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| x.distance(*y)).sum::<f64>() / a.len() as f64
}

fn match_fraction(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let hits = a.iter().zip(b).filter(|(x, y)| x == y).count();
    hits as f64 / a.len() as f64
}

#[test]
fn f32_twins_track_exact_within_1e4_position_error() {
    for fixture in fixtures() {
        let mut twin = fixture
            .model
            .try_lower(InferencePrecision::F32)
            .expect("NObLe models lower to f32");
        assert!(twin.info().model.ends_with("-f32"), "{}", twin.info().model);
        let got = twin.localize_batch(&fixture.features).unwrap();
        let delta = max_delta(&got, &fixture.exact);
        assert!(
            delta <= 1e-4,
            "{}: f32 position error {delta} exceeds the 1e-4 gate",
            twin.info().model
        );
    }
}

#[test]
fn int8_twins_track_exact_within_calibrated_bound() {
    for fixture in fixtures() {
        let mut twin = fixture
            .model
            .try_lower(InferencePrecision::Int8)
            .expect("NObLe models lower to int8");
        assert!(
            twin.info().model.ends_with("-int8"),
            "{}",
            twin.info().model
        );
        let got = twin.localize_batch(&fixture.features).unwrap();
        // Calibrated: 8-bit logits may flip argmax on borderline rows,
        // but almost every row must decode to the very same centroid
        // and the average drift must stay well under a grid cell.
        let matches = match_fraction(&got, &fixture.exact);
        let mean = mean_delta(&got, &fixture.exact);
        assert!(
            matches >= 0.9,
            "{}: only {matches:.3} of rows match the exact decode",
            twin.info().model
        );
        assert!(
            mean <= 0.5,
            "{}: mean int8 position delta {mean} exceeds the 0.5 m gate",
            twin.info().model
        );
    }
}

#[test]
fn exact_path_is_unperturbed_by_lowering() {
    for fixture in fixtures() {
        // Exact is not a lowering target: the model itself is the tier.
        assert!(fixture.model.try_lower(InferencePrecision::Exact).is_none());

        let before = fixture.model.try_snapshot().unwrap();
        let mut f32_twin = fixture.model.try_lower(InferencePrecision::F32).unwrap();
        let mut i8_twin = fixture.model.try_lower(InferencePrecision::Int8).unwrap();
        f32_twin.localize_batch(&fixture.features).unwrap();
        i8_twin.localize_batch(&fixture.features).unwrap();
        let after = fixture.model.try_snapshot().unwrap();
        assert_eq!(
            before.to_bytes(),
            after.to_bytes(),
            "lowering or lowered inference perturbed the exact model"
        );

        // And the exact outputs themselves are byte-identical to the
        // reference captured before any lowering existed.
        let mut hydrated = hydrate(&after).unwrap();
        let got = hydrated.localize_batch(&fixture.features).unwrap();
        assert_eq!(got, fixture.exact, "exact tier drifted");
    }
}

#[test]
fn lowered_twin_snapshot_is_progenitors_exact_snapshot() {
    for fixture in fixtures() {
        for precision in [InferencePrecision::F32, InferencePrecision::Int8] {
            let twin = fixture.model.try_lower(precision).unwrap();
            let twin_snap = twin
                .try_snapshot()
                .expect("lowered twins stay snapshotable for eviction write-through");
            let exact_snap = fixture.model.try_snapshot().unwrap();
            assert_eq!(
                twin_snap.to_bytes(),
                exact_snap.to_bytes(),
                "a lowered twin must persist its progenitor's exact f64 state"
            );
            // Hydrating that snapshot reproduces the exact tier bit-for-bit.
            let mut back = hydrate(&twin_snap).unwrap();
            let got = back.localize_batch(&fixture.features).unwrap();
            assert_eq!(got, fixture.exact);
        }
    }
}

#[test]
fn lowered_inference_is_thread_count_bit_stable() {
    let saved = num_threads();
    for fixture in fixtures() {
        for precision in [InferencePrecision::F32, InferencePrecision::Int8] {
            let mut twin = fixture.model.try_lower(precision).unwrap();
            set_num_threads(1);
            let single = twin.localize_batch(&fixture.features).unwrap();
            set_num_threads(4);
            let multi = twin.localize_batch(&fixture.features).unwrap();
            assert_eq!(
                single,
                multi,
                "{}: thread count changed lowered outputs",
                twin.info().model
            );
        }
    }
    set_num_threads(saved);
}

#[test]
fn compact_f32_snapshot_shrinks_and_round_trips_within_tolerance() {
    for fixture in fixtures() {
        let exact_snap = fixture.model.try_snapshot().unwrap();
        let compact = {
            // snapshot_with is on the concrete models; go through the
            // typed constructors to reach it.
            match exact_snap.kind() {
                "wifi-noble" => WifiNoble::from_snapshot(&exact_snap)
                    .unwrap()
                    .snapshot_with(noble::ParamEncoding::F32),
                "imu-noble" => ImuNoble::from_snapshot(&exact_snap)
                    .unwrap()
                    .snapshot_with(noble::ParamEncoding::F32),
                kind => panic!("unexpected fixture kind {kind}"),
            }
        };
        // Parameter blobs dominate the payload, so narrowing halves most
        // of it; the quantizer tables and specs stay f64.
        assert!(
            (compact.payload().len() as f64) < 0.75 * exact_snap.payload().len() as f64,
            "{}: compact payload {} not substantially smaller than exact {}",
            exact_snap.kind(),
            compact.payload().len(),
            exact_snap.payload().len()
        );
        // A compact-hydrated model is an f64 model with f32-rounded
        // parameters: decode-level accuracy must hold at the f32 gate.
        let mut back = hydrate(&compact).unwrap();
        let got = back.localize_batch(&fixture.features).unwrap();
        let delta = max_delta(&got, &fixture.exact);
        assert!(
            delta <= 1e-4,
            "{}: compact round trip position error {delta} exceeds the 1e-4 gate",
            exact_snap.kind()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parity at tolerance holds on arbitrary batch slices, and lowered
    /// twins are batch-shape invariant: localizing a sub-batch returns
    /// exactly the corresponding rows of the full-batch result.
    #[test]
    fn lowered_parity_holds_on_arbitrary_batch_slices(
        kind in 0usize..2,
        precision in 0usize..2,
        start in 0usize..1 << 16,
        len in 1usize..48,
    ) {
        let fixture = fixtures()[kind];
        let precision = [InferencePrecision::F32, InferencePrecision::Int8][precision];
        let n = fixture.features.rows();
        let start = start % n;
        let len = len.min(n - start);

        let mut twin = fixture.model.try_lower(precision).unwrap();
        let full = twin.localize_batch(&fixture.features).unwrap();

        let rows: Vec<Vec<f64>> = (start..start + len)
            .map(|i| fixture.features.row(i).to_vec())
            .collect();
        let sliced = twin.localize_rows(&rows).unwrap();
        prop_assert_eq!(&sliced, &full[start..start + len]);

        let gate = match precision {
            InferencePrecision::F32 => 1e-4,
            // Per-row int8 bound: borderline rows may flip to an
            // adjacent centroid; a slice of <=48 rows may hold a few.
            _ => {
                let matches = match_fraction(&sliced, &fixture.exact[start..start + len]);
                prop_assert!(matches >= 0.5, "int8 slice match fraction {matches}");
                f64::INFINITY
            }
        };
        let delta = max_delta(&sliced, &fixture.exact[start..start + len]);
        prop_assert!(delta <= gate, "slice position error {delta} exceeds {gate}");
    }
}
