//! Plain-text table formatting for experiment runners.
//!
//! The benchmark harness prints each reproduced table in the same row
//! format as the paper; this module provides the tiny formatter those
//! binaries share.

/// A text table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use noble::report::TextTable;
///
/// let mut t = TextTable::new(vec!["MODEL".into(), "MEAN".into()]);
/// t.add_row(vec!["NObLe".into(), "4.45".into()]);
/// let s = t.render();
/// assert!(s.contains("MODEL"));
/// assert!(s.contains("NObLe"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let cell = |row: &[String], c: usize| row.get(c).cloned().unwrap_or_default();
        let mut widths = vec![0usize; cols];
        for (c, w) in widths.iter_mut().enumerate() {
            *w = std::iter::once(&self.header)
                .chain(self.rows.iter())
                .map(|r| cell(r, c).len())
                .max()
                .unwrap_or(0);
        }
        let render_row = |row: &[String]| -> String {
            (0..cols)
                .map(|c| format!("{:<w$}", cell(row, c), w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&render_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats meters with two decimals (the paper's precision).
pub fn meters(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with two decimals.
pub fn percent(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["A".into(), "LONG HEADER".into()]);
        t.add_row(vec!["hello".into(), "1".into()]);
        t.add_row(vec!["x".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("hello"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["A".into(), "B".into(), "C".into()]);
        t.add_row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn formatters() {
        assert_eq!(meters(4.4499), "4.45");
        assert_eq!(percent(0.99738), "99.74");
    }
}
