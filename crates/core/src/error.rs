use noble_datasets::DatasetError;
use noble_linalg::LinalgError;
use noble_manifold::ManifoldError;
use noble_nn::NnError;
use noble_quantize::QuantizeError;
use std::error::Error;
use std::fmt;

/// Errors produced by the NObLe models and baselines.
#[derive(Debug)]
pub enum NobleError {
    /// Input data was empty or inconsistent.
    InvalidData(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A model snapshot was corrupt, truncated, version-skewed or
    /// internally inconsistent.
    BadSnapshot(String),
    /// Neural-network failure.
    Nn(NnError),
    /// Quantization failure.
    Quantize(QuantizeError),
    /// Manifold-learning failure.
    Manifold(ManifoldError),
    /// Dataset failure.
    Dataset(DatasetError),
    /// Linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for NobleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NobleError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            NobleError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NobleError::BadSnapshot(msg) => write!(f, "bad snapshot: {msg}"),
            NobleError::Nn(e) => write!(f, "network failure: {e}"),
            NobleError::Quantize(e) => write!(f, "quantization failure: {e}"),
            NobleError::Manifold(e) => write!(f, "manifold failure: {e}"),
            NobleError::Dataset(e) => write!(f, "dataset failure: {e}"),
            NobleError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for NobleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NobleError::Nn(e) => Some(e),
            NobleError::Quantize(e) => Some(e),
            NobleError::Manifold(e) => Some(e),
            NobleError::Dataset(e) => Some(e),
            NobleError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for NobleError {
    fn from(e: NnError) -> Self {
        NobleError::Nn(e)
    }
}

impl From<QuantizeError> for NobleError {
    fn from(e: QuantizeError) -> Self {
        NobleError::Quantize(e)
    }
}

impl From<ManifoldError> for NobleError {
    fn from(e: ManifoldError) -> Self {
        NobleError::Manifold(e)
    }
}

impl From<DatasetError> for NobleError {
    fn from(e: DatasetError) -> Self {
        NobleError::Dataset(e)
    }
}

impl From<LinalgError> for NobleError {
    fn from(e: LinalgError) -> Self {
        NobleError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = NobleError::InvalidData("no samples".into());
        assert!(e.to_string().contains("no samples"));
        assert!(Error::source(&e).is_none());
        let e: NobleError = NnError::EmptyData.into();
        assert!(Error::source(&e).is_some());
        let e: NobleError = QuantizeError::NoSamples.into();
        assert!(e.to_string().contains("quantization"));
        let e: NobleError = LinalgError::Empty.into();
        assert!(e.to_string().contains("linear algebra"));
    }
}
