//! The model-agnostic serving interface.
//!
//! Every localization model in the suite — the paper's [`crate::wifi::WifiNoble`]
//! classifier, the [`crate::imu::ImuNoble`] tracker, and the Table II
//! regression baselines — answers the same question: *features in,
//! positions out*. [`Localizer`] captures exactly that contract so the
//! serving layer (`noble-serve`) can shard, route and micro-batch requests
//! without knowing which architecture sits behind a shard.
//!
//! Implementations promise **batch-shape invariance**: row `i` of
//! [`Localizer::localize_batch`] depends only on row `i` of the input.
//! The substrate guarantees it — matmul kernel class is chosen per row,
//! batch-norm inference uses running statistics, decodes are per-row — so
//! a micro-batching server returns bit-identical results to per-request
//! calls no matter how requests coalesce.

use crate::NobleError;
use noble_geo::Point;
use noble_linalg::Matrix;

/// Static metadata describing one localizer: which model it is, which
/// site (building/floor shard) it serves, and its input/output shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalizerInfo {
    /// Model architecture label (e.g. `"wifi-noble"`).
    pub model: &'static str,
    /// Site identifier. Models train site-oblivious, so the default is
    /// `"default"`; the serving registry re-labels per shard via
    /// [`LocalizerInfo::with_site`].
    pub site: String,
    /// Expected feature-row width of [`Localizer::localize_batch`].
    pub feature_dim: usize,
    /// Number of quantized neighborhood classes the model decodes over;
    /// `0` for pure regressors (no quantized output space).
    pub class_count: usize,
}

impl LocalizerInfo {
    /// Relabels the site identifier (used by the sharded registry).
    #[must_use]
    pub fn with_site(mut self, site: impl Into<String>) -> Self {
        self.site = site.into();
        self
    }
}

/// A trained model that maps feature rows to planar positions.
///
/// `Send` is required so serving shards can own their localizer on a
/// worker thread. Mutability in [`Localizer::localize_batch`] mirrors the
/// underlying networks (forward passes share the training cache plumbing);
/// it must not change observable behavior.
pub trait Localizer: Send {
    /// Model/site/shape metadata.
    fn info(&self) -> LocalizerInfo;

    /// Localizes every row of `features`; result `i` corresponds to row
    /// `i` and is independent of the other rows (batch-shape invariance).
    ///
    /// # Errors
    ///
    /// Implementations return [`NobleError::InvalidData`] when the row
    /// width differs from [`LocalizerInfo::feature_dim`], and propagate
    /// model failures.
    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError>;

    /// Convenience wrapper: stacks `rows` into a matrix and calls
    /// [`Localizer::localize_batch`].
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on ragged rows; otherwise as
    /// [`Localizer::localize_batch`].
    fn localize_rows(&mut self, rows: &[Vec<f64>]) -> Result<Vec<Point>, NobleError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let features =
            Matrix::from_rows(rows).map_err(|e| NobleError::InvalidData(e.to_string()))?;
        self.localize_batch(&features)
    }

    /// Dynamic probe of the snapshot capability: `Some` when the model
    /// implements [`crate::SnapshotLocalizer`] (serialization +
    /// bit-identical [`crate::hydrate`]), `None` for research-only models
    /// that only live in memory. The model-lifecycle layer (stores,
    /// catalogs) uses this to decide whether a resident model can be
    /// safely evicted and later reloaded.
    fn try_snapshot(&self) -> Option<crate::ModelSnapshot> {
        None
    }

    /// Dynamic probe of the reduced-precision capability: `Some` when
    /// the model can lower itself into the requested accuracy-gated
    /// inference tier (see [`crate::InferencePrecision`]), `None` when
    /// it cannot — including `precision == Exact`, where the model
    /// itself *is* the exact tier and there is nothing to lower.
    ///
    /// The lowered twin serves the same feature layout and site, tracks
    /// the exact model within the gated tolerance, and — crucially for
    /// catalog eviction — its [`Localizer::try_snapshot`] returns the
    /// *progenitor's exact f64 snapshot*, so write-through persistence
    /// never loses precision. Lowering happens here, once, off the hot
    /// path (serving calls this at hydrate/train time).
    fn try_lower(&self, _precision: crate::InferencePrecision) -> Option<Box<dyn Localizer>> {
        None
    }
}

impl<L: Localizer + ?Sized> Localizer for Box<L> {
    fn info(&self) -> LocalizerInfo {
        (**self).info()
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        (**self).localize_batch(features)
    }

    fn localize_rows(&mut self, rows: &[Vec<f64>]) -> Result<Vec<Point>, NobleError> {
        (**self).localize_rows(rows)
    }

    fn try_snapshot(&self) -> Option<crate::ModelSnapshot> {
        (**self).try_snapshot()
    }

    fn try_lower(&self, precision: crate::InferencePrecision) -> Option<Box<dyn Localizer>> {
        (**self).try_lower(precision)
    }
}

/// Checks a feature matrix against the width a localizer expects.
pub(crate) fn check_feature_dim(
    model: &'static str,
    expected: usize,
    features: &Matrix,
) -> Result<(), NobleError> {
    if features.cols() != expected {
        return Err(NobleError::InvalidData(format!(
            "{model}: feature rows have width {}, model expects {expected}",
            features.cols()
        )));
    }
    Ok(())
}
