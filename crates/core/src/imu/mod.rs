//! IMU device tracking (paper §V).
//!
//! [`ImuNoble`] implements the Fig. 5(a) architecture:
//!
//! 1. **projection module** — one trainable linear map applied to *every*
//!    segment's feature vector (weights shared across segments),
//! 2. **displacement module** — a two-hidden-layer network mapping the
//!    concatenated projections to a displacement vector `V ∈ R²`,
//! 3. **location module** — takes `V` and the one-hot *starting location
//!    class* and classifies the *ending* neighborhood class, decoded to
//!    coordinates via the fitted quantizer (`τ = 0.4 m` in the paper).
//!
//! Training is end-to-end: cross-entropy on the end class plus an
//! auxiliary mean-squared-error term on the displacement vector. The
//! baselines of Table III are in [`baselines`].

pub mod baselines;

mod snapshot;

use crate::eval::{position_error_summary, StructureReport};
use crate::NobleError;
use noble_datasets::{ImuDataset, ImuPathSample, SEGMENT_FEATURE_DIM};
use noble_geo::Point;
use noble_linalg::{Matrix, Summary};
use noble_nn::{one_hot, Activation, Dense, Loss, Mlp, Optimizer, SoftmaxCrossEntropyLoss};
use noble_quantize::{DecodePolicy, GridQuantizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-segment input width: the dataset features plus a validity flag for
/// padded slots.
pub const SEGMENT_INPUT_DIM: usize = SEGMENT_FEATURE_DIM + 1;

/// Snapshot kind tag of [`ImuNoble`] (also its
/// [`crate::LocalizerInfo::model`] label).
pub const IMU_NOBLE_KIND: &str = "imu-noble";

/// Configuration of the NObLe IMU tracker.
#[derive(Debug, Clone)]
pub struct ImuNobleConfig {
    /// Quantization cell side in meters (paper: 0.4 m).
    pub tau: f64,
    /// Decode policy for the end-class centroid.
    pub decode_policy: DecodePolicy,
    /// Output width of the shared projection module.
    pub projection_dim: usize,
    /// Hidden width of the displacement and location networks.
    pub hidden_dim: usize,
    /// Weight of the auxiliary displacement MSE term.
    pub displacement_loss_weight: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ImuNobleConfig {
    fn default() -> Self {
        ImuNobleConfig {
            tau: 0.4,
            decode_policy: DecodePolicy::SampleMean,
            projection_dim: 12,
            hidden_dim: 128,
            displacement_loss_weight: 4.0,
            epochs: 120,
            batch_size: 64,
            learning_rate: 1e-3,
            lr_decay: 0.99,
            seed: 0x1210,
        }
    }
}

impl ImuNobleConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        ImuNobleConfig {
            tau: 2.0,
            projection_dim: 6,
            hidden_dim: 32,
            epochs: 30,
            batch_size: 32,
            learning_rate: 3e-3,
            ..ImuNobleConfig::default()
        }
    }
}

/// Evaluation results in the shape of the paper's Table III.
#[derive(Debug, Clone)]
pub struct ImuEvalReport {
    /// End-position error distances in meters.
    pub position_error: Summary,
    /// End-class hit rate.
    pub class_accuracy: f64,
    /// Structure awareness of predicted end positions (Fig. 5 quantified).
    pub structure: StructureReport,
}

/// The trained NObLe IMU tracker.
#[derive(Debug, Clone)]
pub struct ImuNoble {
    projection: Dense,
    displacement: Mlp,
    location: Mlp,
    quantizer: GridQuantizer,
    max_segments: usize,
    displacement_scale: f64,
}

impl ImuNoble {
    /// Trains the tracker on a dataset's training paths.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty dataset; propagates
    /// quantizer and network failures.
    pub fn train(dataset: &ImuDataset, cfg: &ImuNobleConfig) -> Result<Self, NobleError> {
        if dataset.train.is_empty() {
            return Err(NobleError::InvalidData(
                "dataset has no training paths".into(),
            ));
        }
        // Quantize over both start and end positions so the start one-hot
        // and the end classes share one vocabulary.
        let mut anchor_positions: Vec<Point> =
            dataset.train.iter().map(|p| p.end_position).collect();
        anchor_positions.extend(dataset.train.iter().map(|p| p.start_position));
        let quantizer = GridQuantizer::fit(&anchor_positions, cfg.tau, cfg.decode_policy)?;
        let num_classes = quantizer.num_classes();

        let displacement_scale = dataset
            .train
            .iter()
            .map(|p| p.true_displacement().length())
            .fold(0.0f64, f64::max)
            .max(1.0);

        let max_segments = dataset.max_segments;
        let mut model = ImuNoble {
            projection: Dense::new(SEGMENT_INPUT_DIM, cfg.projection_dim, cfg.seed ^ 0x11),
            displacement: Mlp::builder(max_segments * cfg.projection_dim, cfg.seed ^ 0x22)
                .dense(cfg.hidden_dim)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(cfg.hidden_dim)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(2)
                .build(),
            location: Mlp::builder(2 + num_classes, cfg.seed ^ 0x33)
                .dense(cfg.hidden_dim)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(num_classes)
                .build(),
            quantizer,
            max_segments,
            displacement_scale,
        };
        model.fit(dataset, cfg)?;
        Ok(model)
    }

    /// The fitted quantizer (exposed for analysis).
    pub fn quantizer(&self) -> &GridQuantizer {
        &self.quantizer
    }

    /// Dense layer shapes across all three modules (for the energy model).
    pub fn dense_shapes(&self) -> Vec<(usize, usize)> {
        let mut shapes = vec![(self.projection.in_dim(), self.projection.out_dim())];
        shapes.extend(self.displacement.dense_shapes());
        shapes.extend(self.location.dense_shapes());
        shapes
    }

    /// Builds the stacked `(batch * max_segments, SEGMENT_INPUT_DIM)`
    /// segment matrix of a path batch (zero-padded, validity-flagged).
    fn stack_segments(&self, paths: &[&ImuPathSample]) -> Matrix {
        let l = self.max_segments;
        let mut m = Matrix::zeros(paths.len() * l, SEGMENT_INPUT_DIM);
        for (pi, path) in paths.iter().enumerate() {
            for (si, seg) in path.segments.iter().take(l).enumerate() {
                let row = m.row_mut(pi * l + si);
                row[..SEGMENT_FEATURE_DIM].copy_from_slice(seg.features());
                row[SEGMENT_FEATURE_DIM] = 1.0; // valid
            }
        }
        m
    }

    /// Start-class one-hot block of a path batch.
    fn start_onehots(&self, paths: &[&ImuPathSample]) -> Matrix {
        let labels: Vec<usize> = paths
            .iter()
            .map(|p| self.quantizer.quantize_nearest(p.start_position))
            .collect();
        one_hot(&labels, self.quantizer.num_classes())
    }

    /// Forward pass through all three modules.
    ///
    /// Returns `(projected, displacement, logits)`; `projected` is the
    /// reshaped `(batch, L*p)` concatenation needed by the backward pass.
    fn forward(
        &mut self,
        paths: &[&ImuPathSample],
        training: bool,
    ) -> Result<(Matrix, Matrix, Matrix), NobleError> {
        let stacked = self.stack_segments(paths);
        let onehots = self.start_onehots(paths);
        self.forward_parts(&stacked, &onehots, paths.len(), training)
    }

    /// Shared tail of the forward pass, fed either from path samples
    /// ([`ImuNoble::forward`]) or from the flat feature encoding of
    /// [`ImuNoble::path_features`] — both construct the identical
    /// `(batch*L, dim)` segment stack and start one-hots, so the two
    /// entry points are bit-identical.
    fn forward_parts(
        &mut self,
        stacked: &Matrix,
        start_onehots: &Matrix,
        batch: usize,
        training: bool,
    ) -> Result<(Matrix, Matrix, Matrix), NobleError> {
        let l = self.max_segments;
        let p_dim = self.projection.out_dim();
        let projected_flat = self.projection.forward(stacked, training)?;
        // Reshape (batch*L, p) -> (batch, L*p).
        let mut concat = Matrix::zeros(batch, l * p_dim);
        for pi in 0..batch {
            for si in 0..l {
                let src = projected_flat.row(pi * l + si);
                concat.row_mut(pi)[si * p_dim..(si + 1) * p_dim].copy_from_slice(src);
            }
        }
        let displacement = self.displacement.forward(&concat, training)?;
        let loc_in = displacement.hstack(start_onehots)?;
        let logits = self.location.forward(&loc_in, training)?;
        Ok((concat, displacement, logits))
    }

    /// Width of the flat serving-feature rows: `max_segments` padded
    /// segment slots plus the start position `(x, y)`.
    pub fn path_feature_dim(&self) -> usize {
        self.max_segments * SEGMENT_INPUT_DIM + 2
    }

    /// Number of neighborhood classes the end-position decode ranges over.
    pub fn class_count(&self) -> usize {
        self.quantizer.num_classes()
    }

    /// Encodes paths into the flat `(n, path_feature_dim)` serving layout
    /// consumed by the [`crate::Localizer`] impl: the zero-padded,
    /// validity-flagged segment block followed by the start position. The
    /// encoding is lossless for inference — decoding it reproduces the
    /// exact segment stack and start one-hots the path-based forward
    /// builds.
    pub fn path_features(&self, paths: &[&ImuPathSample]) -> Matrix {
        let l = self.max_segments;
        let mut m = Matrix::zeros(paths.len(), self.path_feature_dim());
        for (pi, path) in paths.iter().enumerate() {
            let row = m.row_mut(pi);
            for (si, seg) in path.segments.iter().take(l).enumerate() {
                let base = si * SEGMENT_INPUT_DIM;
                row[base..base + SEGMENT_FEATURE_DIM].copy_from_slice(seg.features());
                row[base + SEGMENT_FEATURE_DIM] = 1.0; // valid
            }
            row[l * SEGMENT_INPUT_DIM] = path.start_position.x;
            row[l * SEGMENT_INPUT_DIM + 1] = path.start_position.y;
        }
        m
    }

    /// Decodes end positions from location-module logits: argmax over raw
    /// logits (softmax is strictly monotone) with per-class centroid
    /// memoization.
    fn decode_logits(&self, logits: &Matrix) -> Result<Vec<Point>, NobleError> {
        let mut centroids: Vec<Option<Point>> = vec![None; self.quantizer.num_classes()];
        let mut out = Vec::with_capacity(logits.rows());
        for i in 0..logits.rows() {
            let class = noble_linalg::argmax(logits.row(i)).unwrap_or(0);
            let point = match centroids[class] {
                Some(p) => p,
                None => {
                    let p = self.quantizer.decode(class)?;
                    centroids[class] = Some(p);
                    p
                }
            };
            out.push(point);
        }
        Ok(out)
    }

    fn fit(&mut self, dataset: &ImuDataset, cfg: &ImuNobleConfig) -> Result<(), NobleError> {
        let n = dataset.train.len();
        let mut optimizer = Optimizer::adam(cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x44);
        let mut order: Vec<usize> = (0..n).collect();
        let ce = SoftmaxCrossEntropyLoss;
        let num_classes = self.quantizer.num_classes();
        let l = self.max_segments;
        let p_dim = self.projection.out_dim();

        for _epoch in 0..cfg.epochs {
            if cfg.lr_decay != 1.0 {
                let lr = optimizer.learning_rate();
                optimizer.set_learning_rate(lr * cfg.lr_decay);
            }
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let batch: Vec<&ImuPathSample> = chunk.iter().map(|&i| &dataset.train[i]).collect();
                let (_concat, displacement, logits) = self.forward(&batch, true)?;

                // End-class cross entropy.
                let end_labels: Vec<usize> = batch
                    .iter()
                    .map(|p| self.quantizer.quantize_nearest(p.end_position))
                    .collect();
                let targets = one_hot(&end_labels, num_classes);
                let (_, ce_grad) = ce.evaluate(&logits, &targets)?;
                // One backward through the location module both accumulates
                // its parameter gradients and yields d(loss)/d(V ⊕ one-hot);
                // only the displacement slice continues down the chain (the
                // one-hot block is an input, not an activation).
                let loc_in_grad = self.location.backward_with_input_grad(&ce_grad)?;
                let mut disp_grad = Matrix::zeros(batch.len(), 2);
                for i in 0..batch.len() {
                    disp_grad[(i, 0)] = loc_in_grad[(i, 0)];
                    disp_grad[(i, 1)] = loc_in_grad[(i, 1)];
                }
                // Auxiliary displacement MSE (scaled units).
                let w = cfg.displacement_loss_weight;
                if w > 0.0 {
                    let bn = batch.len() as f64;
                    for (i, path) in batch.iter().enumerate() {
                        let v = path.true_displacement();
                        let tx = v.x / self.displacement_scale;
                        let ty = v.y / self.displacement_scale;
                        disp_grad[(i, 0)] += w * (displacement[(i, 0)] - tx) / bn;
                        disp_grad[(i, 1)] += w * (displacement[(i, 1)] - ty) / bn;
                    }
                }
                let concat_grad = self.displacement.backward_with_input_grad(&disp_grad)?;

                // Reshape (batch, L*p) -> (batch*L, p) for the shared
                // projection layer.
                let mut stacked_grad = Matrix::zeros(batch.len() * l, p_dim);
                for pi in 0..batch.len() {
                    for si in 0..l {
                        let dst = stacked_grad.row_mut(pi * l + si);
                        dst.copy_from_slice(&concat_grad.row(pi)[si * p_dim..(si + 1) * p_dim]);
                    }
                }
                self.projection.backward(&stacked_grad)?;

                optimizer.begin_step();
                for p in self.projection.params_mut() {
                    optimizer.update(p);
                }
                for p in self.displacement.params_mut() {
                    optimizer.update(p);
                }
                for p in self.location.params_mut() {
                    optimizer.update(p);
                }
            }
        }
        Ok(())
    }

    /// Predicts end positions for a set of paths.
    ///
    /// Delegates to [`ImuNoble::predict_batch`] — the end class is the
    /// argmax over logits, which softmax (strictly monotone) cannot
    /// change, so the probability pass the original implementation ran is
    /// pure overhead.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures.
    pub fn predict(&mut self, paths: &[&ImuPathSample]) -> Result<Vec<Point>, NobleError> {
        self.predict_batch(paths)
    }

    /// Predicts the end position of a single path (serving-style per-fix
    /// path). For throughput, use [`ImuNoble::predict_batch`].
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures.
    pub fn predict_one(&mut self, path: &ImuPathSample) -> Result<Point, NobleError> {
        let mut out = self.predict_batch(&[path])?;
        out.pop().ok_or_else(|| {
            NobleError::InvalidData("predict_batch returned no prediction for one path".into())
        })
    }

    /// Batched prediction: one stacked forward over all paths, then a
    /// batch decode that takes the argmax over raw logits (softmax is
    /// strictly monotone, so probabilities are never materialized) and
    /// memoizes each class's centroid so repeated classes decode once.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures.
    pub fn predict_batch(&mut self, paths: &[&ImuPathSample]) -> Result<Vec<Point>, NobleError> {
        if paths.is_empty() {
            return Ok(Vec::new());
        }
        let (_c, _d, logits) = self.forward(paths, false)?;
        self.decode_logits(&logits)
    }

    /// Evaluates on a path set, producing the Table III metrics.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on an empty set; propagates prediction
    /// failures.
    pub fn evaluate(
        &mut self,
        dataset: &ImuDataset,
        paths: &[ImuPathSample],
    ) -> Result<ImuEvalReport, NobleError> {
        if paths.is_empty() {
            return Err(NobleError::InvalidData("no paths to evaluate".into()));
        }
        let refs: Vec<&ImuPathSample> = paths.iter().collect();
        let preds = self.predict(&refs)?;
        let truth: Vec<Point> = paths.iter().map(|p| p.end_position).collect();
        let pred_classes: Vec<usize> = preds
            .iter()
            .map(|p| self.quantizer.quantize_nearest(*p))
            .collect();
        let true_classes: Vec<usize> = truth
            .iter()
            .map(|p| self.quantizer.quantize_nearest(*p))
            .collect();
        let hits = pred_classes
            .iter()
            .zip(&true_classes)
            .filter(|(a, b)| a == b)
            .count();
        Ok(ImuEvalReport {
            position_error: position_error_summary(&preds, &truth)?,
            class_accuracy: hits as f64 / paths.len() as f64,
            structure: StructureReport::compute(&preds, &dataset.walkway)?,
        })
    }
}

impl crate::Localizer for ImuNoble {
    fn info(&self) -> crate::LocalizerInfo {
        crate::LocalizerInfo {
            model: IMU_NOBLE_KIND,
            site: "default".into(),
            feature_dim: self.path_feature_dim(),
            class_count: self.class_count(),
        }
    }

    fn try_snapshot(&self) -> Option<crate::ModelSnapshot> {
        Some(crate::SnapshotLocalizer::snapshot(self))
    }

    fn try_lower(&self, precision: crate::InferencePrecision) -> Option<Box<dyn crate::Localizer>> {
        let displacement = noble_nn::LoweredMlp::lower(&self.displacement, precision).ok()?;
        let location = noble_nn::LoweredMlp::lower(&self.location, precision).ok()?;
        Some(Box::new(crate::LoweredImu::new(
            self.projection.clone(),
            displacement,
            location,
            self.quantizer.clone(),
            self.max_segments,
            crate::SnapshotLocalizer::snapshot(self),
        )))
    }

    /// Localizes rows in the [`ImuNoble::path_features`] layout. The
    /// segment stack and start one-hots rebuilt from a row are bitwise
    /// equal to what [`ImuNoble::predict_batch`] builds from the original
    /// path, so the two paths agree exactly.
    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        crate::localizer::check_feature_dim("imu-noble", self.path_feature_dim(), features)?;
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let l = self.max_segments;
        let n = features.rows();
        // Unflatten the segment block and re-derive the start one-hots.
        let mut stacked = Matrix::zeros(n * l, SEGMENT_INPUT_DIM);
        let mut start_labels = Vec::with_capacity(n);
        for i in 0..n {
            let row = features.row(i);
            for si in 0..l {
                stacked
                    .row_mut(i * l + si)
                    .copy_from_slice(&row[si * SEGMENT_INPUT_DIM..(si + 1) * SEGMENT_INPUT_DIM]);
            }
            let start = Point::new(row[l * SEGMENT_INPUT_DIM], row[l * SEGMENT_INPUT_DIM + 1]);
            start_labels.push(self.quantizer.quantize_nearest(start));
        }
        let onehots = one_hot(&start_labels, self.quantizer.num_classes());
        let (_c, _d, logits) = self.forward_parts(&stacked, &onehots, n, false)?;
        self.decode_logits(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_datasets::ImuConfig;

    fn quick_dataset() -> ImuDataset {
        let mut cfg = ImuConfig::small();
        cfg.num_paths = 400;
        cfg.num_reference_points = 40;
        ImuDataset::generate(&cfg).unwrap()
    }

    #[test]
    fn trains_and_beats_naive_baseline() {
        let dataset = quick_dataset();
        let mut model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        let report = model.evaluate(&dataset, &dataset.test).unwrap();
        // Naive baseline: predict the start position.
        let naive: f64 = dataset
            .test
            .iter()
            .map(|p| p.start_position.distance(p.end_position))
            .sum::<f64>()
            / dataset.test.len() as f64;
        assert!(
            report.position_error.mean < naive,
            "NObLe {} should beat naive {naive}",
            report.position_error.mean
        );
        // Decoded positions are quantizer centroids: on or near the walkway.
        assert!(report.structure.on_map_fraction > 0.8);
    }

    #[test]
    fn predict_batch_matches_per_sample_and_softmax_paths() {
        let dataset = quick_dataset();
        let mut model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        let refs: Vec<&ImuPathSample> = dataset.test.iter().take(16).collect();
        let softmax_path = model.predict(&refs).unwrap();
        let batched = model.predict_batch(&refs).unwrap();
        assert_eq!(batched.len(), refs.len());
        // Logit argmax == softmax argmax, so the decoded points are equal.
        for (a, b) in softmax_path.iter().zip(&batched) {
            assert!(a.distance(*b) < 1e-12, "softmax {a} vs batched {b}");
        }
        for (path, b) in refs.iter().zip(&batched) {
            let single = model.predict_one(path).unwrap();
            assert!(
                single.distance(*b) < 1e-12,
                "single {single} vs batched {b}"
            );
        }
        assert!(model.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn localizer_trait_matches_predict_batch_exactly() {
        let dataset = quick_dataset();
        let mut model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        let refs: Vec<&ImuPathSample> = dataset.test.iter().take(10).collect();
        let direct = model.predict_batch(&refs).unwrap();

        let features = model.path_features(&refs);
        let info = crate::Localizer::info(&model);
        assert_eq!(info.model, "imu-noble");
        assert_eq!(info.feature_dim, features.cols());
        assert_eq!(info.class_count, model.class_count());

        let via_trait = crate::Localizer::localize_batch(&mut model, &features).unwrap();
        assert_eq!(direct, via_trait, "matrix encoding must be lossless");

        let bad = Matrix::zeros(1, model.path_feature_dim() + 1);
        assert!(crate::Localizer::localize_batch(&mut model, &bad).is_err());
    }

    #[test]
    fn predict_empty_is_empty() {
        let dataset = quick_dataset();
        let mut model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        assert!(model.predict(&[]).unwrap().is_empty());
        assert!(model.evaluate(&dataset, &[]).is_err());
    }

    #[test]
    fn rejects_empty_dataset() {
        let mut dataset = quick_dataset();
        dataset.train.clear();
        assert!(ImuNoble::train(&dataset, &ImuNobleConfig::small()).is_err());
    }

    #[test]
    fn dense_shapes_cover_three_modules() {
        let dataset = quick_dataset();
        let model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        let shapes = model.dense_shapes();
        // projection + 3 displacement + 2 location dense layers.
        assert_eq!(shapes.len(), 6);
        assert_eq!(shapes[0].0, SEGMENT_INPUT_DIM);
        assert_eq!(shapes[3].1, 2, "displacement module outputs V in R^2");
    }

    #[test]
    fn quantizer_classes_cover_start_positions() {
        let dataset = quick_dataset();
        let model = ImuNoble::train(&dataset, &ImuNobleConfig::small()).unwrap();
        for p in dataset.train.iter().take(30) {
            let c = model.quantizer().quantize_nearest(p.start_position);
            assert!(c < model.quantizer().num_classes());
        }
    }
}
