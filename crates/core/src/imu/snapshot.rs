//! Snapshot (de)serialization of [`ImuNoble`].
//!
//! The payload carries all three modules (shared projection,
//! displacement network, location network — parameters *and* batch-norm
//! running statistics), the end-class quantizer, and the two scalars the
//! forward pass depends on (`max_segments`, `displacement_scale`), so a
//! hydrated tracker predicts bit-identically to the saved one.

use super::{ImuNoble, IMU_NOBLE_KIND};
use crate::snapshot::{
    bad, read_dense, read_mlp, read_quantizer, write_dense, write_mlp_with, write_quantizer,
    ModelSnapshot, SnapReader, SnapWriter,
};
use crate::{NobleError, ParamEncoding, SnapshotLocalizer};

/// Payload format version of [`ImuNoble`] snapshots.
const IMU_PAYLOAD_VERSION: u32 = 1;

impl SnapshotLocalizer for ImuNoble {
    fn snapshot(&self) -> ModelSnapshot {
        self.snapshot_with(ParamEncoding::F64)
    }

    // The tiny shared projection layer always travels in f64 (write_dense);
    // the compact encoding only narrows the two heavy network blobs.
    fn snapshot_with(&self, encoding: ParamEncoding) -> ModelSnapshot {
        let mut w = SnapWriter::new();
        w.u32(IMU_PAYLOAD_VERSION);
        write_dense(&mut w, &self.projection);
        write_mlp_with(&mut w, &self.displacement, encoding);
        write_mlp_with(&mut w, &self.location, encoding);
        write_quantizer(&mut w, &self.quantizer);
        w.u64(self.max_segments as u64);
        w.f64(self.displacement_scale);
        ModelSnapshot::new(
            IMU_NOBLE_KIND,
            self.path_feature_dim(),
            self.class_count(),
            w.buf,
        )
    }
}

impl ImuNoble {
    /// Rebuilds a tracker from an [`IMU_NOBLE_KIND`] snapshot.
    ///
    /// # Errors
    ///
    /// [`NobleError::BadSnapshot`] on a wrong kind tag, payload version
    /// skew, corruption, or modules whose shapes disagree with each
    /// other.
    pub fn from_snapshot(snapshot: &ModelSnapshot) -> Result<Self, NobleError> {
        if snapshot.kind() != IMU_NOBLE_KIND {
            return Err(bad(format!(
                "expected an {IMU_NOBLE_KIND} snapshot, found '{}'",
                snapshot.kind()
            )));
        }
        let mut r = SnapReader::new(snapshot.payload());
        let version = r.u32()?;
        if version != IMU_PAYLOAD_VERSION {
            return Err(bad(format!(
                "unsupported {IMU_NOBLE_KIND} payload version {version}"
            )));
        }
        let projection = read_dense(&mut r)?;
        let displacement = read_mlp(&mut r)?;
        let location = read_mlp(&mut r)?;
        let quantizer = read_quantizer(&mut r)?;
        let max_segments = r.usize()?;
        let displacement_scale = r.f64()?;
        r.finish()?;

        if max_segments == 0 {
            return Err(bad("max_segments must be positive".to_string()));
        }
        if !(displacement_scale.is_finite() && displacement_scale > 0.0) {
            return Err(bad(format!(
                "displacement scale {displacement_scale} must be positive and finite"
            )));
        }
        // `max_segments` comes from the untrusted blob: multiply checked.
        if max_segments
            .checked_mul(projection.out_dim())
            .is_none_or(|width| displacement.in_dim() != width)
        {
            return Err(bad(format!(
                "displacement input width {} disagrees with {} segments x {} projected features",
                displacement.in_dim(),
                max_segments,
                projection.out_dim()
            )));
        }
        if location.in_dim() != 2 + quantizer.num_classes()
            || location.out_dim() != quantizer.num_classes()
        {
            return Err(bad(format!(
                "location module {}->{} disagrees with {} quantizer classes",
                location.in_dim(),
                location.out_dim(),
                quantizer.num_classes()
            )));
        }
        let model = ImuNoble {
            projection,
            displacement,
            location,
            quantizer,
            max_segments,
            displacement_scale,
        };
        if model.path_feature_dim() != snapshot.feature_dim()
            || model.class_count() != snapshot.class_count()
        {
            return Err(bad(
                "snapshot header metadata disagrees with payload".to_string()
            ));
        }
        Ok(model)
    }
}
