//! The comparison models of Table III (paper §V-C).
//!
//! - [`ImuDeepRegression`] — the same inputs as NObLe but trained with MSE
//!   to regress the end coordinates directly,
//! - [`DeadReckoning`] — classical strapdown integration (no learning):
//!   start position plus the sum of per-segment dead-reckoned
//!   displacements; its error accumulates with path length,
//! - [`MapAssistedDeadReckoning`] — dead reckoning with the position
//!   re-projected onto the walkway after every segment, standing in for
//!   the hand-crafted map-heuristic system the paper cites as \[8\].

use crate::eval::position_error_summary;
use crate::imu::SEGMENT_INPUT_DIM;
use crate::NobleError;
use noble_datasets::{ImuDataset, ImuPathSample, SEGMENT_FEATURE_DIM};
use noble_geo::Point;
use noble_linalg::{Matrix, Summary};
use noble_nn::{Activation, Mlp, MseLoss, Optimizer, TrainConfig, Trainer};

/// Configuration of the IMU deep-regression baseline.
#[derive(Debug, Clone)]
pub struct ImuRegressionConfig {
    /// Hidden width of the two hidden layers.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ImuRegressionConfig {
    fn default() -> Self {
        ImuRegressionConfig {
            hidden_dim: 128,
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0xDA7A,
        }
    }
}

impl ImuRegressionConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        ImuRegressionConfig {
            hidden_dim: 32,
            epochs: 25,
            batch_size: 32,
            learning_rate: 3e-3,
            ..ImuRegressionConfig::default()
        }
    }
}

/// Deep regression on flattened path inputs: the padded segment features,
/// trained with MSE on end coordinates.
///
/// Deliberately *not* given the start position: the paper's Fig. 5(c)
/// shows its regression baseline scattering predictions across the whole
/// space — the behaviour of a model that must infer absolute position from
/// relative motion alone — and only NObLe's location network is described
/// as receiving the starting class (§V-B). Giving regression the start
/// anchor collapses the paper's 10.41 m gap to ~4 m; see DESIGN.md §2.
#[derive(Debug, Clone)]
pub struct ImuDeepRegression {
    mlp: Mlp,
    max_segments: usize,
    center: Point,
    scale: f64,
}

impl ImuDeepRegression {
    /// Trains the baseline.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty dataset; propagates
    /// training failures.
    pub fn train(dataset: &ImuDataset, cfg: &ImuRegressionConfig) -> Result<Self, NobleError> {
        if dataset.train.is_empty() {
            return Err(NobleError::InvalidData(
                "dataset has no training paths".into(),
            ));
        }
        // Coordinate scaler over end positions.
        let n = dataset.train.len() as f64;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for p in &dataset.train {
            cx += p.end_position.x;
            cy += p.end_position.y;
        }
        let center = Point::new(cx / n, cy / n);
        let mut var = 0.0;
        for p in &dataset.train {
            var += p.end_position.squared_distance(center);
        }
        let scale = (var / n).sqrt().max(1e-9);

        let max_segments = dataset.max_segments;
        let in_dim = max_segments * SEGMENT_INPUT_DIM;
        let mut model = ImuDeepRegression {
            mlp: Mlp::builder(in_dim, cfg.seed)
                .dense(cfg.hidden_dim)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(cfg.hidden_dim)
                .batch_norm()
                .activation(Activation::Tanh)
                .dense(2)
                .build(),
            max_segments,
            center,
            scale,
        };

        let refs: Vec<&ImuPathSample> = dataset.train.iter().collect();
        let x = model.inputs(&refs);
        let mut y = Matrix::zeros(dataset.train.len(), 2);
        for (i, p) in dataset.train.iter().enumerate() {
            y[(i, 0)] = (p.end_position.x - center.x) / scale;
            y[(i, 1)] = (p.end_position.y - center.y) / scale;
        }
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            optimizer: Optimizer::adam(cfg.learning_rate),
            lr_decay: 0.985,
            shuffle_seed: cfg.seed ^ 0x5A,
            early_stopping: None,
            detect_divergence: true,
        };
        Trainer::new(train_cfg).fit(&mut model.mlp, &x, &y, &MseLoss, None)?;
        Ok(model)
    }

    /// Flattened network inputs of a path batch (segments only; see the
    /// type-level docs for why the start position is withheld).
    fn inputs(&self, paths: &[&ImuPathSample]) -> Matrix {
        let l = self.max_segments;
        let mut m = Matrix::zeros(paths.len(), l * SEGMENT_INPUT_DIM);
        for (i, path) in paths.iter().enumerate() {
            let row = m.row_mut(i);
            for (si, seg) in path.segments.iter().take(l).enumerate() {
                let off = si * SEGMENT_INPUT_DIM;
                row[off..off + SEGMENT_FEATURE_DIM].copy_from_slice(seg.features());
                row[off + SEGMENT_FEATURE_DIM] = 1.0;
            }
        }
        m
    }

    /// Predicts end positions.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn predict(&mut self, paths: &[&ImuPathSample]) -> Result<Vec<Point>, NobleError> {
        if paths.is_empty() {
            return Ok(Vec::new());
        }
        let x = self.inputs(paths);
        let out = self.mlp.predict(&x)?;
        Ok((0..out.rows())
            .map(|i| {
                Point::new(
                    out[(i, 0)] * self.scale + self.center.x,
                    out[(i, 1)] * self.scale + self.center.y,
                )
            })
            .collect())
    }

    /// Position-error summary on a path set.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on an empty set.
    pub fn evaluate(&mut self, paths: &[ImuPathSample]) -> Result<Summary, NobleError> {
        let refs: Vec<&ImuPathSample> = paths.iter().collect();
        let preds = self.predict(&refs)?;
        let truth: Vec<Point> = paths.iter().map(|p| p.end_position).collect();
        position_error_summary(&preds, &truth)
    }
}

/// Classical dead reckoning: no learning, pure integration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadReckoning;

impl DeadReckoning {
    /// Predicted end position of one path.
    pub fn predict_one(path: &ImuPathSample) -> Point {
        path.dead_reckoned_end()
    }

    /// Position-error summary on a path set.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on an empty set.
    pub fn evaluate(paths: &[ImuPathSample]) -> Result<Summary, NobleError> {
        let preds: Vec<Point> = paths.iter().map(Self::predict_one).collect();
        let truth: Vec<Point> = paths.iter().map(|p| p.end_position).collect();
        position_error_summary(&preds, &truth)
    }
}

/// Dead reckoning corrected by the map after every segment: the cumulative
/// position is projected back onto the walkway band, emulating the
/// turn/wall-snap heuristics of map-assisted trackers (the paper's \[8\]
/// and LocMe \[19\]).
#[derive(Debug, Clone, Copy, Default)]
pub struct MapAssistedDeadReckoning;

impl MapAssistedDeadReckoning {
    /// Predicted end position of one path.
    pub fn predict_one(dataset: &ImuDataset, path: &ImuPathSample) -> Point {
        let mut position = path.start_position;
        for seg in &path.segments {
            position = position + seg.dead_reckoned_displacement();
            position = dataset.walkway.project(position);
        }
        position
    }

    /// Position-error summary on a path set.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on an empty set.
    pub fn evaluate(dataset: &ImuDataset, paths: &[ImuPathSample]) -> Result<Summary, NobleError> {
        let preds: Vec<Point> = paths
            .iter()
            .map(|p| Self::predict_one(dataset, p))
            .collect();
        let truth: Vec<Point> = paths.iter().map(|p| p.end_position).collect();
        position_error_summary(&preds, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_datasets::ImuConfig;

    fn quick_dataset() -> ImuDataset {
        let mut cfg = ImuConfig::small();
        cfg.num_paths = 400;
        cfg.num_reference_points = 40;
        ImuDataset::generate(&cfg).unwrap()
    }

    #[test]
    fn deep_regression_beats_naive() {
        let dataset = quick_dataset();
        let mut model = ImuDeepRegression::train(&dataset, &ImuRegressionConfig::small()).unwrap();
        let s = model.evaluate(&dataset.test).unwrap();
        let naive: f64 = dataset
            .test
            .iter()
            .map(|p| p.start_position.distance(p.end_position))
            .sum::<f64>()
            / dataset.test.len() as f64;
        assert!(s.mean < naive, "regression {} vs naive {naive}", s.mean);
    }

    #[test]
    fn dead_reckoning_evaluates() {
        let dataset = quick_dataset();
        let s = DeadReckoning::evaluate(&dataset.test).unwrap();
        assert!(s.mean.is_finite());
        assert!(s.mean > 0.0);
    }

    #[test]
    fn map_assist_improves_dead_reckoning_structure() {
        let dataset = quick_dataset();
        // Every map-assisted prediction lies on the walkway by construction.
        for p in dataset.test.iter().take(30) {
            let pred = MapAssistedDeadReckoning::predict_one(&dataset, p);
            assert!(dataset.walkway.is_accessible(pred));
        }
        let plain = DeadReckoning::evaluate(&dataset.test).unwrap();
        let assisted = MapAssistedDeadReckoning::evaluate(&dataset, &dataset.test).unwrap();
        // Projection cannot be dramatically worse; typically it helps.
        assert!(assisted.mean <= plain.mean * 1.5);
    }

    #[test]
    fn regression_rejects_empty() {
        let mut dataset = quick_dataset();
        dataset.train.clear();
        assert!(ImuDeepRegression::train(&dataset, &ImuRegressionConfig::small()).is_err());
        assert!(DeadReckoning::evaluate(&[]).is_err());
    }

    #[test]
    fn predict_empty_paths() {
        let dataset = quick_dataset();
        let mut model = ImuDeepRegression::train(&dataset, &ImuRegressionConfig::small()).unwrap();
        assert!(model.predict(&[]).unwrap().is_empty());
    }
}
