//! Reduced-precision serving twins of the NObLe models.
//!
//! [`LoweredWifi`] and [`LoweredImu`] wrap [`noble_nn::LoweredMlp`]
//! lowerings of a trained model's networks and share the *exact* f64
//! decode path (class argmax → quantizer centroid) with their
//! progenitors — only the network arithmetic is reduced. They are
//! produced by [`crate::Localizer::try_lower`] once, at hydrate/train
//! time, and then serve immutably.
//!
//! Two contracts matter here:
//!
//! - **Accuracy is gated, not assumed.** A lowered twin tracks its f64
//!   progenitor within the tier's tolerance (f32: ≤ 1e-4 position
//!   error; int8: a calibrated quantization bound). The precision-parity
//!   suite and the accuracy-delta checks in `exp_throughput` /
//!   `exp_serving` pin this.
//! - **Persistence never loses precision.** [`crate::Localizer::try_snapshot`]
//!   on a lowered twin returns the progenitor's *exact f64 snapshot*
//!   captured at lowering time, so catalog eviction write-through and
//!   store round trips always carry full-precision state; re-lowering
//!   after hydrate reproduces the identical twin.
//!
//! This module is carved out of the `float-determinism` lint scope by
//! `noble-lint.toml` (path-scoped sanction for the lowered tier).

use crate::imu::SEGMENT_INPUT_DIM;
use crate::localizer::check_feature_dim;
use crate::{InferencePrecision, Localizer, LocalizerInfo, ModelSnapshot, NobleError};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_nn::{one_hot, Dense, LoweredMlp, OutputLayout};
use noble_quantize::GridQuantizer;

/// Model label of a lowered WiFi twin (the tier is part of the label so
/// serving stats distinguish exact from lowered shards).
fn wifi_label(precision: InferencePrecision) -> &'static str {
    match precision {
        InferencePrecision::Exact => crate::wifi::WIFI_NOBLE_KIND,
        InferencePrecision::F32 => "wifi-noble-f32",
        InferencePrecision::Int8 => "wifi-noble-int8",
    }
}

/// Model label of a lowered IMU twin.
fn imu_label(precision: InferencePrecision) -> &'static str {
    match precision {
        InferencePrecision::Exact => crate::imu::IMU_NOBLE_KIND,
        InferencePrecision::F32 => "imu-noble-f32",
        InferencePrecision::Int8 => "imu-noble-int8",
    }
}

/// A reduced-precision serving twin of [`crate::wifi::WifiNoble`]:
/// lowered classifier network, exact f64 head/quantizer decode.
#[derive(Debug, Clone)]
pub struct LoweredWifi {
    mlp: LoweredMlp,
    layout: OutputLayout,
    fine: GridQuantizer,
    head_fine: usize,
    feature_dim: usize,
    exact_snapshot: ModelSnapshot,
}

impl LoweredWifi {
    pub(crate) fn new(
        mlp: LoweredMlp,
        layout: OutputLayout,
        fine: GridQuantizer,
        head_fine: usize,
        feature_dim: usize,
        exact_snapshot: ModelSnapshot,
    ) -> Self {
        LoweredWifi {
            mlp,
            layout,
            fine,
            head_fine,
            feature_dim,
            exact_snapshot,
        }
    }

    /// The tier this twin serves in.
    #[must_use]
    pub fn precision(&self) -> InferencePrecision {
        self.mlp.precision()
    }
}

impl Localizer for LoweredWifi {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: wifi_label(self.mlp.precision()),
            site: "default".into(),
            feature_dim: self.feature_dim,
            class_count: self.fine.num_classes(),
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim(wifi_label(self.mlp.precision()), self.feature_dim, features)?;
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        // Lowered logits, then the identical decode the f64 path runs:
        // per-head argmax (softmax is monotone) → fine centroid.
        let logits = self.mlp.predict_batch(features)?;
        let fine_classes = self.layout.predict_classes(&logits, self.head_fine)?;
        let mut out = Vec::with_capacity(features.rows());
        for class in fine_classes {
            out.push(self.fine.decode(class)?);
        }
        Ok(out)
    }

    /// The progenitor's exact f64 snapshot: persistence (catalog
    /// write-through, store saves) never narrows model state.
    fn try_snapshot(&self) -> Option<ModelSnapshot> {
        Some(self.exact_snapshot.clone())
    }
}

/// A reduced-precision serving twin of [`crate::imu::ImuNoble`]: exact
/// f64 projection (a single tiny shared dense layer) feeding lowered
/// displacement and location networks, exact f64 centroid decode.
#[derive(Debug, Clone)]
pub struct LoweredImu {
    projection: Dense,
    displacement: LoweredMlp,
    location: LoweredMlp,
    quantizer: GridQuantizer,
    max_segments: usize,
    exact_snapshot: ModelSnapshot,
}

impl LoweredImu {
    pub(crate) fn new(
        projection: Dense,
        displacement: LoweredMlp,
        location: LoweredMlp,
        quantizer: GridQuantizer,
        max_segments: usize,
        exact_snapshot: ModelSnapshot,
    ) -> Self {
        LoweredImu {
            projection,
            displacement,
            location,
            quantizer,
            max_segments,
            exact_snapshot,
        }
    }

    /// The tier this twin serves in.
    #[must_use]
    pub fn precision(&self) -> InferencePrecision {
        self.displacement.precision()
    }

    fn path_feature_dim(&self) -> usize {
        self.max_segments * SEGMENT_INPUT_DIM + 2
    }
}

impl Localizer for LoweredImu {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: imu_label(self.displacement.precision()),
            site: "default".into(),
            feature_dim: self.path_feature_dim(),
            class_count: self.quantizer.num_classes(),
        }
    }

    /// Localizes rows in the [`crate::imu::ImuNoble::path_features`]
    /// layout — the same unflattening the exact path runs, with the two
    /// heavy networks lowered.
    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim(
            imu_label(self.displacement.precision()),
            self.path_feature_dim(),
            features,
        )?;
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let l = self.max_segments;
        let n = features.rows();
        let mut stacked = Matrix::zeros(n * l, SEGMENT_INPUT_DIM);
        let mut start_labels = Vec::with_capacity(n);
        for i in 0..n {
            let row = features.row(i);
            for si in 0..l {
                stacked
                    .row_mut(i * l + si)
                    .copy_from_slice(&row[si * SEGMENT_INPUT_DIM..(si + 1) * SEGMENT_INPUT_DIM]);
            }
            let start = Point::new(row[l * SEGMENT_INPUT_DIM], row[l * SEGMENT_INPUT_DIM + 1]);
            start_labels.push(self.quantizer.quantize_nearest(start));
        }
        // Shared projection in exact f64 (tiny: one dense layer over
        // short segment rows), then the lowered tail.
        let projected = self.projection.forward(&stacked, false)?;
        let p_dim = self.projection.out_dim();
        let mut concat = Matrix::zeros(n, l * p_dim);
        for pi in 0..n {
            for si in 0..l {
                let src = projected.row(pi * l + si);
                concat.row_mut(pi)[si * p_dim..(si + 1) * p_dim].copy_from_slice(src);
            }
        }
        let displacement = self.displacement.predict_batch(&concat)?;
        let onehots = one_hot(&start_labels, self.quantizer.num_classes());
        let loc_in = displacement.hstack(&onehots)?;
        let logits = self.location.predict_batch(&loc_in)?;
        // Argmax decode with centroid memoization, as the exact path.
        let mut centroids: Vec<Option<Point>> = vec![None; self.quantizer.num_classes()];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let class = noble_linalg::argmax(logits.row(i)).unwrap_or(0);
            let point = match centroids[class] {
                Some(p) => p,
                None => {
                    let p = self.quantizer.decode(class)?;
                    centroids[class] = Some(p);
                    p
                }
            };
            out.push(point);
        }
        Ok(out)
    }

    /// The progenitor's exact f64 snapshot (see [`LoweredWifi`]).
    fn try_snapshot(&self) -> Option<ModelSnapshot> {
        Some(self.exact_snapshot.clone())
    }
}
