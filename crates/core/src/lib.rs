//! # NObLe — Neighbor Oblivious Learning for device localization and tracking
//!
//! A from-scratch Rust reproduction of *"Neighbor Oblivious Learning
//! (NObLe) for Device Localization and Tracking"* (Liu, Chou & Shrivastava,
//! DATE 2021). The paper's idea: localization output spaces are structured
//! manifolds (floor plans, walkways), so instead of regressing coordinates,
//! quantize the output space into occupied grid cells ("neighborhood
//! classes") and train a multi-head classifier; the class → centroid decode
//! respects the structure, and the cross-entropy objective clusters the
//! penultimate-layer embedding like MDS *without* unreliable input-space
//! neighbor searches.
//!
//! Two applications, as in the paper:
//!
//! - [`wifi`] — WiFi RSSI fingerprint localization: [`wifi::WifiNoble`]
//!   plus the paper's comparison models (deep regression, regression with
//!   map projection, Isomap/LLE embedding regression, classic weighted-kNN
//!   fingerprinting),
//! - [`imu`] — IMU device tracking: [`imu::ImuNoble`] with the paper's
//!   projection → displacement → location architecture (Fig. 5a), plus
//!   dead-reckoning baselines.
//!
//! [`eval`] carries the shared metrics: position-error summaries and the
//! structure-awareness measures that quantify Figs. 4 and 5.
//!
//! [`localizer`] defines the model-agnostic serving interface: every
//! trained model (NObLe WiFi/IMU and the baselines) implements
//! [`Localizer`], which is what the `noble-serve` sharded registry and
//! micro-batching server route requests into. [`snapshot`] adds the
//! model-lifecycle half of that seam: [`SnapshotLocalizer`] serializes
//! a trained model into a versioned [`ModelSnapshot`] and [`hydrate`]
//! rebuilds a bit-identical localizer from one, which is what the
//! serving layer's model store and evicting catalog are built on.
//!
//! # Quickstart
//!
//! ```no_run
//! use noble::wifi::{WifiNoble, WifiNobleConfig};
//! use noble_datasets::{uji_campaign, UjiConfig};
//!
//! let campaign = uji_campaign(&UjiConfig::default()).unwrap();
//! let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::default()).unwrap();
//! let report = model.evaluate(&campaign, &campaign.test).unwrap();
//! println!("mean position error: {:.2} m", report.position_error.mean);
//! ```

pub mod eval;
pub mod imu;
pub mod localizer;
pub mod report;
pub mod snapshot;
pub mod wifi;

mod error;
mod lowered;

pub use error::NobleError;
pub use localizer::{Localizer, LocalizerInfo};
pub use lowered::{LoweredImu, LoweredWifi};
pub use noble_nn::{InferencePrecision, ParamEncoding};
pub use snapshot::{hydrate, ModelSnapshot, SnapshotLocalizer};
