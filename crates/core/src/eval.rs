//! Shared evaluation metrics.
//!
//! The paper reports position error (Euclidean distance between predicted
//! and true coordinates; Tables I–III) and argues visually through
//! prediction scatter (Figs. 4 and 5) that NObLe respects space structure.
//! [`StructureReport`] turns that visual argument into numbers: the
//! fraction of predictions that land on accessible space and the mean
//! distance from accessible space.

use crate::NobleError;
use noble_geo::{CampusMap, Point};
use noble_linalg::Summary;

/// Euclidean position errors between matched prediction/truth pairs.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn position_errors(predicted: &[Point], truth: &[Point]) -> Vec<f64> {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "position_errors: {} predictions vs {} ground-truth points",
        predicted.len(),
        truth.len()
    );
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| p.distance(*t))
        .collect()
}

/// Summary of position errors (mean, median, RMSE, tails).
///
/// # Errors
///
/// Returns [`NobleError::InvalidData`] for empty inputs.
pub fn position_error_summary(predicted: &[Point], truth: &[Point]) -> Result<Summary, NobleError> {
    if predicted.is_empty() {
        return Err(NobleError::InvalidData("no predictions to evaluate".into()));
    }
    let errors = position_errors(predicted, truth);
    Summary::from_samples(&errors).map_err(NobleError::from)
}

/// Empirical CDF of an error sample, evaluated at the given thresholds:
/// `cdf[i]` is the fraction of errors `<= thresholds[i]`.
///
/// Localization papers conventionally report "fraction of fixes within
/// 1 m / 5 m / 10 m"; this helper backs those rows and CDF plots.
///
/// # Errors
///
/// Returns [`NobleError::InvalidData`] when `errors` is empty.
///
/// # Example
///
/// ```
/// let cdf = noble::eval::error_cdf(&[0.5, 2.0, 7.0, 12.0], &[1.0, 5.0, 10.0]).unwrap();
/// assert_eq!(cdf, vec![0.25, 0.5, 0.75]);
/// ```
pub fn error_cdf(errors: &[f64], thresholds: &[f64]) -> Result<Vec<f64>, NobleError> {
    if errors.is_empty() {
        return Err(NobleError::InvalidData("no errors for CDF".into()));
    }
    let n = errors.len() as f64;
    Ok(thresholds
        .iter()
        .map(|&t| errors.iter().filter(|&&e| e <= t).count() as f64 / n)
        .collect())
}

/// Structure-awareness metrics of a prediction set against a floor plan
/// (the quantitative version of Figs. 4 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct StructureReport {
    /// Fraction of predictions lying on accessible space.
    pub on_map_fraction: f64,
    /// Mean distance from each prediction to the nearest accessible point
    /// (zero for on-map predictions).
    pub mean_off_map_distance: f64,
    /// Worst off-map distance.
    pub max_off_map_distance: f64,
    /// Number of predictions evaluated.
    pub count: usize,
}

impl StructureReport {
    /// Computes the report for a set of predicted positions.
    ///
    /// # Errors
    ///
    /// Returns [`NobleError::InvalidData`] for empty input.
    pub fn compute(predicted: &[Point], map: &CampusMap) -> Result<Self, NobleError> {
        if predicted.is_empty() {
            return Err(NobleError::InvalidData("no predictions to evaluate".into()));
        }
        let mut on_map = 0usize;
        let mut total_off = 0.0;
        let mut max_off = 0.0f64;
        for p in predicted {
            let d = map.off_map_distance(*p);
            if d <= 1e-9 {
                on_map += 1;
            }
            total_off += d;
            max_off = max_off.max(d);
        }
        Ok(StructureReport {
            on_map_fraction: on_map as f64 / predicted.len() as f64,
            mean_off_map_distance: total_off / predicted.len() as f64,
            max_off_map_distance: max_off,
            count: predicted.len(),
        })
    }
}

impl std::fmt::Display for StructureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "on-map {:.1}% | mean off-map {:.2} m | max off-map {:.2} m (n={})",
            self.on_map_fraction * 100.0,
            self.mean_off_map_distance,
            self.max_off_map_distance,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_geo::{Building, Polygon};

    fn square_map() -> CampusMap {
        let b = Building::new(Polygon::rectangle(0.0, 0.0, 10.0, 10.0).unwrap(), 1).unwrap();
        CampusMap::new(vec![b]).unwrap()
    }

    #[test]
    fn errors_are_euclidean() {
        let pred = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let truth = vec![Point::new(3.0, 4.0), Point::new(1.0, 1.0)];
        let e = position_errors(&pred, &truth);
        assert_eq!(e, vec![5.0, 0.0]);
        let s = position_error_summary(&pred, &truth).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    #[should_panic(expected = "predictions")]
    fn mismatched_lengths_panic() {
        position_errors(&[Point::ORIGIN], &[]);
    }

    #[test]
    fn empty_summary_errors() {
        assert!(position_error_summary(&[], &[]).is_err());
    }

    #[test]
    fn structure_report_counts_off_map() {
        let map = square_map();
        let preds = vec![
            Point::new(5.0, 5.0),  // on map
            Point::new(12.0, 5.0), // 2 m off
            Point::new(5.0, 5.0),  // on map
            Point::new(5.0, 16.0), // 6 m off
        ];
        let r = StructureReport::compute(&preds, &map).unwrap();
        assert_eq!(r.count, 4);
        assert!((r.on_map_fraction - 0.5).abs() < 1e-12);
        assert!((r.mean_off_map_distance - 2.0).abs() < 1e-12);
        assert!((r.max_off_map_distance - 6.0).abs() < 1e-12);
        assert!(r.to_string().contains("on-map"));
    }

    #[test]
    fn structure_report_rejects_empty() {
        assert!(StructureReport::compute(&[], &square_map()).is_err());
    }

    #[test]
    fn all_on_map_is_perfect() {
        let map = square_map();
        let preds = vec![Point::new(1.0, 1.0); 5];
        let r = StructureReport::compute(&preds, &map).unwrap();
        assert_eq!(r.on_map_fraction, 1.0);
        assert_eq!(r.mean_off_map_distance, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let errors = [3.0, 1.0, 8.0, 0.2, 15.0];
        let cdf = error_cdf(&errors, &[0.5, 2.0, 10.0, 100.0]).unwrap();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[3], 1.0);
        assert_eq!(cdf[0], 0.2);
        assert!(error_cdf(&[], &[1.0]).is_err());
    }

    #[test]
    fn cdf_boundary_inclusive() {
        let cdf = error_cdf(&[1.0, 2.0], &[1.0]).unwrap();
        assert_eq!(cdf[0], 0.5);
    }
}
