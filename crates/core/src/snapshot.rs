//! Model snapshots: the save/reload half of the serving model lifecycle.
//!
//! A trained [`Localizer`] is expensive to produce — site surveys and
//! training runs dwarf inference cost — so serving systems treat models as
//! managed artifacts. This module defines that artifact:
//!
//! - [`ModelSnapshot`] — a versioned, self-describing byte blob: model
//!   kind tag, feature dimension, class metadata, then a kind-specific
//!   payload (network architecture + parameters via
//!   [`noble_nn::save_parameters`], quantizer parts, radio maps).
//! - [`SnapshotLocalizer`] — the capability trait: models that can
//!   serialize themselves implement `snapshot(&self)`. The base
//!   [`Localizer`] trait exposes the same capability dynamically through
//!   [`Localizer::try_snapshot`] so trait objects can be probed.
//! - [`hydrate`] — the factory: turns any snapshot back into a boxed
//!   [`Localizer`] that localizes **bit-identically** to the model that
//!   produced it (pinned by the `snapshot_roundtrip` suite).
//!
//! [`wifi::WifiNoble`](crate::wifi::WifiNoble),
//! [`imu::ImuNoble`](crate::imu::ImuNoble) and
//! [`wifi::KnnFingerprint`](crate::wifi::KnnFingerprint) are
//! snapshotable; the Table II regression baselines are research-only and
//! are not (their [`Localizer::try_snapshot`] returns `None`).
//!
//! Corrupt, truncated or version-skewed blobs decode to the typed
//! [`NobleError::BadSnapshot`] — never a panic, and reader lengths are
//! validated against the remaining byte count so hostile blobs cannot
//! trigger huge allocations.

use crate::{Localizer, NobleError};
use noble_geo::{Grid, Point};
use noble_linalg::Matrix;
use noble_nn::{
    Activation, Dense, HeadKind, HeadSpec, Mlp, MlpLayerSpec, OutputLayout, ParamEncoding,
};
use noble_quantize::{DecodePolicy, GridQuantizer};

const MAGIC: &[u8; 4] = b"NOBS";
/// Container v2 added the model-version field; v1 blobs (which predate
/// it) still decode, reporting [`ModelSnapshot::version`] `0`.
const CONTAINER_VERSION: u32 = 2;
const LEGACY_CONTAINER_VERSION: u32 = 1;

/// A self-describing serialized model: kind tag, shape metadata, a
/// *model version* (the online-refresh lineage counter — see
/// [`ModelSnapshot::version`]) and a kind-specific payload. Produce one
/// with [`SnapshotLocalizer::snapshot`], persist it through a
/// `noble_serve::ModelStore`, and turn it back into a servable model with
/// [`hydrate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSnapshot {
    kind: String,
    feature_dim: usize,
    class_count: usize,
    version: u64,
    payload: Vec<u8>,
}

impl ModelSnapshot {
    /// Assembles a snapshot from its parts (model implementations call
    /// this; consumers use [`hydrate`]).
    pub fn new(
        kind: impl Into<String>,
        feature_dim: usize,
        class_count: usize,
        payload: Vec<u8>,
    ) -> Self {
        ModelSnapshot {
            kind: kind.into(),
            feature_dim,
            class_count,
            version: 0,
            payload,
        }
    }

    /// The same snapshot stamped with model version `version` (builder
    /// style — snapshots are immutable once produced).
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Model version: which generation of this shard's model produced
    /// the snapshot. `0` is the original offline-trained model (and what
    /// legacy v1 containers report); each online refresh activated
    /// through `noble_serve::SharedCatalog` bumps it by one. Serving a
    /// given version is bit-stable, so two snapshots with equal key and
    /// version hold byte-identical payloads.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Model kind tag — matches the producing model's
    /// [`crate::LocalizerInfo::model`] (e.g. `"wifi-noble"`).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Feature-row width the hydrated model will expect.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Quantized class count of the hydrated model (`0` for pure
    /// regressors).
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The kind-specific payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Size of [`ModelSnapshot::to_bytes`] output — the byte cost a store
    /// or catalog budget accounts for, without encoding.
    pub fn encoded_len(&self) -> usize {
        // magic + container version + kind (len + bytes) + 2 shape u64s
        // + model version u64 + payload (len + bytes).
        4 + 4 + 4 + self.kind.len() + 8 + 8 + 8 + 8 + self.payload.len()
    }

    /// Encodes the snapshot into one length-validated byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::with_capacity(self.encoded_len());
        w.buf.extend_from_slice(MAGIC);
        w.u32(CONTAINER_VERSION);
        w.string(&self.kind);
        w.u64(self.feature_dim as u64);
        w.u64(self.class_count as u64);
        w.u64(self.version);
        w.bytes(&self.payload);
        w.buf
    }

    /// Decodes a buffer produced by [`ModelSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`NobleError::BadSnapshot`] on bad magic, an unsupported container
    /// version, truncation, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NobleError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(bad("bad magic: not a NObLe model snapshot"));
        }
        let container = r.u32()?;
        if container != CONTAINER_VERSION && container != LEGACY_CONTAINER_VERSION {
            return Err(bad(format!(
                "unsupported snapshot container version {container} \
                 (this build reads {LEGACY_CONTAINER_VERSION}..={CONTAINER_VERSION})"
            )));
        }
        let kind = r.string()?;
        let feature_dim = r.usize()?;
        let class_count = r.usize()?;
        // v1 containers predate the model-version field: read them as
        // version 0 (the offline-trained generation).
        let version = if container == LEGACY_CONTAINER_VERSION {
            0
        } else {
            r.u64()?
        };
        let payload = r.bytes()?.to_vec();
        r.finish()?;
        Ok(ModelSnapshot {
            kind,
            feature_dim,
            class_count,
            version,
            payload,
        })
    }
}

/// The snapshot capability: a trained model that can serialize itself
/// into a [`ModelSnapshot`] whose [`hydrate`]d twin localizes
/// bit-identically.
pub trait SnapshotLocalizer: Localizer {
    /// Serializes the full inference state of the model.
    fn snapshot(&self) -> ModelSnapshot;

    /// [`SnapshotLocalizer::snapshot`] with an explicit parameter
    /// encoding: [`ParamEncoding::F64`] is exact,
    /// [`ParamEncoding::F32`] produces a ~2x smaller *compact* snapshot
    /// whose hydrated twin reproduces inference to f32 accuracy instead
    /// of bit-identically (the accuracy-delta gate in `exp_model_store`
    /// pins the drift). Models without network parameters ignore the
    /// flag — the default forwards to the exact writer.
    fn snapshot_with(&self, _encoding: ParamEncoding) -> ModelSnapshot {
        self.snapshot()
    }
}

/// Rebuilds a servable model from a snapshot, dispatching on the kind
/// tag.
///
/// # Errors
///
/// [`NobleError::BadSnapshot`] for an unknown kind tag or a payload that
/// fails validation (truncated, corrupted, version-skewed, or
/// internally inconsistent).
pub fn hydrate(snapshot: &ModelSnapshot) -> Result<Box<dyn Localizer>, NobleError> {
    match snapshot.kind() {
        crate::wifi::WIFI_NOBLE_KIND => {
            Ok(Box::new(crate::wifi::WifiNoble::from_snapshot(snapshot)?))
        }
        crate::wifi::KNN_FINGERPRINT_KIND => Ok(Box::new(
            crate::wifi::KnnFingerprint::from_snapshot(snapshot)?,
        )),
        crate::imu::IMU_NOBLE_KIND => Ok(Box::new(crate::imu::ImuNoble::from_snapshot(snapshot)?)),
        other => Err(bad(format!("unknown model kind tag '{other}'"))),
    }
}

/// Shorthand for the module's typed error.
pub(crate) fn bad(msg: impl Into<String>) -> NobleError {
    NobleError::BadSnapshot(msg.into())
}

// ---------------------------------------------------------------------------
// Byte-level codec. Little-endian throughout, lengths validated on read.
// ---------------------------------------------------------------------------

/// Append-only snapshot payload writer.
pub(crate) struct SnapWriter {
    pub(crate) buf: Vec<u8>,
}

impl SnapWriter {
    pub(crate) fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    fn with_capacity(n: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(n),
        }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn point(&mut self, p: Point) {
        self.f64(p.x);
        self.f64(p.y);
    }

    pub(crate) fn usizes(&mut self, v: &[usize]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x as u64);
        }
    }

    pub(crate) fn points(&mut self, v: &[Point]) {
        self.u64(v.len() as u64);
        for &p in v {
            self.point(p);
        }
    }

    pub(crate) fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &v in m.as_slice() {
            self.f64(v);
        }
    }
}

/// Bounds-checked snapshot payload reader; every failure is the typed
/// [`NobleError::BadSnapshot`].
pub(crate) struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        SnapReader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], NobleError> {
        if n > self.remaining() {
            return Err(bad(format!(
                "truncated snapshot: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn finish(&self) -> Result<(), NobleError> {
        if self.remaining() != 0 {
            return Err(bad(format!(
                "{} trailing bytes after snapshot content",
                self.remaining()
            )));
        }
        Ok(())
    }

    pub(crate) fn u8(&mut self) -> Result<u8, NobleError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, NobleError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, NobleError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, NobleError> {
        usize::try_from(self.u64()?).map_err(|_| bad("length overflows usize"))
    }

    /// Reads a length that prefixes `unit`-byte elements, guarding the
    /// subsequent allocation against corrupt huge values.
    fn checked_len(&mut self, unit: usize) -> Result<usize, NobleError> {
        let n = self.usize()?;
        if n.checked_mul(unit).is_none_or(|b| b > self.remaining()) {
            return Err(bad(format!(
                "corrupt length {n}: exceeds {} remaining snapshot bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, NobleError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn string(&mut self) -> Result<String, NobleError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| bad("snapshot string is not UTF-8"))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], NobleError> {
        let n = self.checked_len(1)?;
        self.take(n)
    }

    pub(crate) fn point(&mut self) -> Result<Point, NobleError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    pub(crate) fn usizes(&mut self) -> Result<Vec<usize>, NobleError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    pub(crate) fn points(&mut self) -> Result<Vec<Point>, NobleError> {
        let n = self.checked_len(16)?;
        (0..n).map(|_| self.point()).collect()
    }

    pub(crate) fn matrix(&mut self) -> Result<Matrix, NobleError> {
        let rows = self.usize()?;
        let cols = self.checked_len(rows.max(1).saturating_mul(8))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|e| bad(format!("bad matrix: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Shared component codecs: networks, quantizers, output layouts.
// ---------------------------------------------------------------------------

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Tanh => 0,
        Activation::Relu => 1,
        Activation::Sigmoid => 2,
        Activation::Identity => 3,
    }
}

fn activation_from_tag(tag: u8) -> Result<Activation, NobleError> {
    match tag {
        0 => Ok(Activation::Tanh),
        1 => Ok(Activation::Relu),
        2 => Ok(Activation::Sigmoid),
        3 => Ok(Activation::Identity),
        t => Err(bad(format!("unknown activation tag {t}"))),
    }
}

/// Writes a network: architecture specs, then the versioned parameter
/// blob ([`noble_nn::save_parameters_with`], which carries batch-norm
/// running statistics so inference is bit-identical after reload).
/// `ParamEncoding::F64` is the exact default (byte-identical to
/// historical snapshots); `F32` narrows every parameter scalar for ~2x
/// smaller edge stores at f32-accuracy round trips (the compact-snapshot
/// gate in `exp_model_store` pins the accuracy delta).
pub(crate) fn write_mlp_with(w: &mut SnapWriter, mlp: &Mlp, encoding: ParamEncoding) {
    w.u64(mlp.in_dim() as u64);
    let specs = mlp.layer_specs();
    w.u32(specs.len() as u32);
    for spec in specs {
        match spec {
            MlpLayerSpec::Dense { in_dim, out_dim } => {
                w.u8(0);
                w.u64(in_dim as u64);
                w.u64(out_dim as u64);
            }
            MlpLayerSpec::BatchNorm { dim } => {
                w.u8(1);
                w.u64(dim as u64);
            }
            MlpLayerSpec::Activation(a) => {
                w.u8(2);
                w.u8(activation_tag(a));
            }
        }
    }
    w.bytes(&noble_nn::save_parameters_with(mlp, encoding));
}

/// Reads a network written by [`write_mlp_with`] (the nested parameter
/// blob self-describes its scalar encoding).
pub(crate) fn read_mlp(r: &mut SnapReader<'_>) -> Result<Mlp, NobleError> {
    let in_dim = r.usize()?;
    let spec_count = r.u32()? as usize;
    let mut specs = Vec::with_capacity(spec_count.min(1024));
    for _ in 0..spec_count {
        let spec = match r.u8()? {
            0 => MlpLayerSpec::Dense {
                in_dim: r.usize()?,
                out_dim: r.usize()?,
            },
            1 => MlpLayerSpec::BatchNorm { dim: r.usize()? },
            2 => MlpLayerSpec::Activation(activation_from_tag(r.u8()?)?),
            t => return Err(bad(format!("unknown layer spec tag {t}"))),
        };
        specs.push(spec);
    }
    let blob = r.bytes()?;
    // The scalar width depends on the nested blob's own header (8 for
    // the exact f64 encoding, 4 for compact f32).
    let unit =
        match noble_nn::blob_encoding(blob).map_err(|e| bad(format!("bad parameters: {e}")))? {
            ParamEncoding::F64 => 8usize,
            ParamEncoding::F32 => 4usize,
        };
    // The specs' dimensions are untrusted: before from_specs allocates
    // weight matrices, require every tensor to fit inside the parameter
    // blob that claims to fill it (checked arithmetic — corrupt dims
    // error out instead of demanding huge allocations or overflowing).
    let mut param_bytes: usize = 0;
    for spec in &specs {
        let scalars = match *spec {
            MlpLayerSpec::Dense { in_dim, out_dim } => in_dim
                .checked_mul(out_dim)
                .and_then(|w| w.checked_add(out_dim)),
            MlpLayerSpec::BatchNorm { dim } => dim.checked_mul(4),
            MlpLayerSpec::Activation(_) => Some(0),
        };
        param_bytes = scalars
            .and_then(|s| s.checked_mul(unit))
            .and_then(|b| param_bytes.checked_add(b))
            .ok_or_else(|| bad("architecture spec dimensions overflow".to_string()))?;
    }
    if param_bytes > blob.len() {
        return Err(bad(format!(
            "architecture needs {param_bytes} parameter bytes, blob has {}",
            blob.len()
        )));
    }
    let mut mlp =
        Mlp::from_specs(in_dim, &specs).map_err(|e| bad(format!("bad architecture: {e}")))?;
    noble_nn::load_parameters(&mut mlp, blob).map_err(|e| bad(format!("bad parameters: {e}")))?;
    Ok(mlp)
}

/// Writes a standalone dense layer (the IMU projection module).
pub(crate) fn write_dense(w: &mut SnapWriter, dense: &Dense) {
    w.matrix(dense.weights());
    w.matrix(dense.bias());
}

/// Reads a dense layer written by [`write_dense`].
pub(crate) fn read_dense(r: &mut SnapReader<'_>) -> Result<Dense, NobleError> {
    let weights = r.matrix()?;
    let bias = r.matrix()?;
    Dense::from_parts(weights, bias).map_err(|e| bad(format!("bad dense layer: {e}")))
}

fn decode_policy_tag(p: DecodePolicy) -> u8 {
    match p {
        DecodePolicy::CellCenter => 0,
        DecodePolicy::SampleMean => 1,
    }
}

fn decode_policy_from_tag(tag: u8) -> Result<DecodePolicy, NobleError> {
    match tag {
        0 => Ok(DecodePolicy::CellCenter),
        1 => Ok(DecodePolicy::SampleMean),
        t => Err(bad(format!("unknown decode policy tag {t}"))),
    }
}

/// Writes a fitted quantizer: grid geometry plus the per-class tables.
pub(crate) fn write_quantizer(w: &mut SnapWriter, q: &GridQuantizer) {
    let grid = q.grid();
    w.point(grid.origin());
    w.f64(grid.cell_size());
    w.u64(grid.cols() as u64);
    w.u64(grid.rows() as u64);
    w.u8(decode_policy_tag(q.policy()));
    w.usizes(q.class_cells());
    w.points(q.centroids());
    w.usizes(q.class_counts());
}

/// Reads a quantizer written by [`write_quantizer`].
pub(crate) fn read_quantizer(r: &mut SnapReader<'_>) -> Result<GridQuantizer, NobleError> {
    let origin = r.point()?;
    let cell_size = r.f64()?;
    let cols = r.usize()?;
    let rows = r.usize()?;
    let grid = Grid::from_parts(origin, cell_size, cols, rows)
        .map_err(|e| bad(format!("bad grid: {e}")))?;
    let policy = decode_policy_from_tag(r.u8()?)?;
    let class_cells = r.usizes()?;
    let centroids = r.points()?;
    let counts = r.usizes()?;
    GridQuantizer::from_parts(grid, policy, class_cells, centroids, counts)
        .map_err(|e| bad(format!("bad quantizer: {e}")))
}

fn head_kind_tag(k: HeadKind) -> u8 {
    match k {
        HeadKind::Softmax => 0,
        HeadKind::MultiLabelSigmoid => 1,
    }
}

fn head_kind_from_tag(tag: u8) -> Result<HeadKind, NobleError> {
    match tag {
        0 => Ok(HeadKind::Softmax),
        1 => Ok(HeadKind::MultiLabelSigmoid),
        t => Err(bad(format!("unknown head kind tag {t}"))),
    }
}

/// Writes a multi-head output layout.
pub(crate) fn write_layout(w: &mut SnapWriter, layout: &OutputLayout) {
    let heads = layout.heads();
    w.u32(heads.len() as u32);
    for h in heads {
        w.string(&h.name);
        w.u64(h.width as u64);
        w.u8(head_kind_tag(h.kind));
        w.u32(h.loss_weight_millis);
    }
}

/// Reads a layout written by [`write_layout`].
pub(crate) fn read_layout(r: &mut SnapReader<'_>) -> Result<OutputLayout, NobleError> {
    let count = r.u32()? as usize;
    let mut heads = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = r.string()?;
        let width = r.usize()?;
        let kind = r.u8()?;
        let millis = r.u32()?;
        let mut spec = match head_kind_from_tag(kind)? {
            HeadKind::Softmax => HeadSpec::softmax(&name, width),
            HeadKind::MultiLabelSigmoid => HeadSpec::multi_label(&name, width),
        };
        spec.loss_weight_millis = millis;
        heads.push(spec);
    }
    OutputLayout::new(heads).map_err(|e| bad(format!("bad output layout: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trip() {
        let snap = ModelSnapshot::new("wifi-noble", 12, 34, vec![1, 2, 3, 4, 5]);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let back = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.kind(), "wifi-noble");
        assert_eq!(back.feature_dim(), 12);
        assert_eq!(back.class_count(), 34);
        assert_eq!(back.version(), 0);
        assert_eq!(back.payload(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn model_version_round_trips() {
        let snap = ModelSnapshot::new("wifi-noble", 12, 34, vec![1, 2, 3]).with_version(7);
        assert_eq!(snap.version(), 7);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let back = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.version(), 7);
        // The version stamp is identity metadata, not payload: two
        // versions of the same bytes differ only in the stamp.
        let other = ModelSnapshot::new("wifi-noble", 12, 34, vec![1, 2, 3]).with_version(8);
        assert_ne!(other, snap);
        assert_eq!(other.payload(), snap.payload());
    }

    #[test]
    fn legacy_v1_container_reads_as_version_zero() {
        // Hand-encode a v1 container (no model-version field): magic,
        // container version 1, kind, feature_dim, class_count, payload.
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(MAGIC);
        w.u32(LEGACY_CONTAINER_VERSION);
        w.string("wifi-noble");
        w.u64(12);
        w.u64(34);
        w.bytes(&[5, 6, 7]);
        let back = ModelSnapshot::from_bytes(&w.buf).unwrap();
        assert_eq!(back.kind(), "wifi-noble");
        assert_eq!(back.feature_dim(), 12);
        assert_eq!(back.class_count(), 34);
        assert_eq!(back.version(), 0);
        assert_eq!(back.payload(), &[5, 6, 7]);
    }

    #[test]
    fn container_rejects_corruption() {
        let snap = ModelSnapshot::new("imu-noble", 3, 7, vec![9; 32]);
        let good = snap.to_bytes();
        // Bad magic.
        let mut bad_bytes = good.clone();
        bad_bytes[0] = b'Z';
        assert!(matches!(
            ModelSnapshot::from_bytes(&bad_bytes),
            Err(NobleError::BadSnapshot(_))
        ));
        // Version skew.
        let mut skew = good.clone();
        skew[4] = 99;
        let err = ModelSnapshot::from_bytes(&skew).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Truncation at every prefix length decodes to a typed error.
        for n in 0..good.len() {
            assert!(matches!(
                ModelSnapshot::from_bytes(&good[..n]),
                Err(NobleError::BadSnapshot(_))
            ));
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(ModelSnapshot::from_bytes(&long).is_err());
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // a vector length far beyond the buffer
        let mut r = SnapReader::new(&w.buf);
        assert!(r.usizes().is_err());
        let mut r = SnapReader::new(&w.buf);
        assert!(r.points().is_err());
        let mut r = SnapReader::new(&w.buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn unknown_kind_is_typed() {
        let snap = ModelSnapshot::new("martian-triangulator", 4, 0, vec![]);
        assert!(matches!(
            hydrate(&snap),
            Err(NobleError::BadSnapshot(ref m)) if m.contains("martian")
        ));
    }

    #[test]
    fn mlp_codec_round_trips_bit_exactly() {
        let mut mlp = Mlp::builder(4, 11)
            .dense(6)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(3)
            .build();
        let warm = Matrix::from_fn(8, 4, |i, j| (i * 3 + j) as f64 / 5.0 - 1.0);
        mlp.forward(&warm, true).unwrap();

        let mut w = SnapWriter::new();
        write_mlp_with(&mut w, &mlp, ParamEncoding::F64);
        let mut r = SnapReader::new(&w.buf);
        let mut back = read_mlp(&mut r).unwrap();
        r.finish().unwrap();

        let x = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64) / 3.0);
        assert_eq!(
            mlp.predict(&x).unwrap().as_slice(),
            back.predict(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn quantizer_codec_round_trips() {
        let samples = vec![
            Point::new(0.3, 0.4),
            Point::new(0.6, 0.2),
            Point::new(7.5, 3.3),
            Point::new(2.2, 9.9),
        ];
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::SampleMean).unwrap();
        let mut w = SnapWriter::new();
        write_quantizer(&mut w, &q);
        let mut r = SnapReader::new(&w.buf);
        let back = read_quantizer(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.num_classes(), q.num_classes());
        for p in &samples {
            let c = q.quantize_nearest(*p);
            assert_eq!(back.quantize_nearest(*p), c);
            assert_eq!(back.decode(c).unwrap(), q.decode(c).unwrap());
        }
    }

    #[test]
    fn layout_codec_round_trips() {
        let layout = OutputLayout::new(vec![
            HeadSpec::softmax("building", 3).with_weight(0.5),
            HeadSpec::multi_label("fine", 40).with_weight(4.0),
        ])
        .unwrap();
        let mut w = SnapWriter::new();
        write_layout(&mut w, &layout);
        let mut r = SnapReader::new(&w.buf);
        let back = read_layout(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, layout);
    }
}
