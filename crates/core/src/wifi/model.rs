//! Model definition and training of the NObLe WiFi localizer.
//!
//! The inference/decode paths live in [`super::decode`]; the serving trait
//! impl lives in [`super::localize`].

use crate::eval::StructureReport;
use crate::NobleError;
use noble_datasets::{WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::{Matrix, Summary};
use noble_nn::{
    Activation, EarlyStopping, HeadSpec, Mlp, MultiHeadLoss, Optimizer, OutputLayout, TrainConfig,
    Trainer,
};
use noble_quantize::{DecodePolicy, GridQuantizer, LabelEncoder};

/// Configuration of the NObLe WiFi localizer.
#[derive(Debug, Clone)]
pub struct WifiNobleConfig {
    /// Fine quantization cell side `τ` in meters (paper: < 0.2 m on dense
    /// reference grids; 1 m suits the synthetic campaign's density).
    pub tau: f64,
    /// Optional coarse cell side `l > τ` for the multi-resolution head.
    pub coarse_l: Option<f64>,
    /// Optional adjacency-expansion weight for the fine head's multi-hot
    /// labels (the paper's data-sparsity remedy; `1.0` = hard labels).
    pub adjacency_weight: Option<f64>,
    /// Class decode policy.
    pub decode_policy: DecodePolicy,
    /// Loss weight of the auxiliary building/floor heads. The paper argues
    /// the joint heads teach geodesic structure; `0.0` ablates them (they
    /// still predict, but receive no gradient).
    pub aux_head_weight: f64,
    /// Loss weight of the fine neighborhood-class head. Values above 1
    /// compensate for the per-class gradient dilution of wide heads.
    pub fine_head_weight: f64,
    /// Hidden width of the two hidden layers (paper: 128).
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Early-stopping patience on the validation loss (None disables).
    pub patience: Option<usize>,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for WifiNobleConfig {
    fn default() -> Self {
        WifiNobleConfig {
            tau: 1.0,
            coarse_l: Some(8.0),
            adjacency_weight: None,
            decode_policy: DecodePolicy::SampleMean,
            aux_head_weight: 1.0,
            fine_head_weight: 4.0,
            hidden_dim: 128,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            patience: Some(8),
            seed: 0xB0B,
        }
    }
}

impl WifiNobleConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        WifiNobleConfig {
            tau: 4.0,
            coarse_l: Some(16.0),
            hidden_dim: 32,
            epochs: 25,
            batch_size: 32,
            learning_rate: 3e-3,
            patience: None,
            ..WifiNobleConfig::default()
        }
    }
}

/// One localization prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct WifiPrediction {
    /// Decoded position (neighborhood centroid).
    pub position: Point,
    /// Predicted building index.
    pub building: usize,
    /// Predicted floor index.
    pub floor: usize,
    /// Predicted fine neighborhood class.
    pub fine_class: usize,
}

/// Evaluation results in the shape of the paper's Table I.
#[derive(Debug, Clone)]
pub struct WifiEvalReport {
    /// Building hit rate.
    pub building_accuracy: f64,
    /// Floor hit rate.
    pub floor_accuracy: f64,
    /// Fine neighborhood-class hit rate.
    pub class_accuracy: f64,
    /// Position error distances in meters.
    pub position_error: Summary,
    /// Structure awareness of the predictions (Fig. 4 quantified).
    pub structure: StructureReport,
}

/// The trained NObLe WiFi localizer.
///
/// # Example
///
/// Train on a small synthetic campaign and localize its test fingerprints:
///
/// ```
/// use noble::wifi::{WifiNoble, WifiNobleConfig};
/// use noble_datasets::{uji_campaign, UjiConfig};
///
/// let campaign = uji_campaign(&UjiConfig::small()).unwrap();
/// let mut cfg = WifiNobleConfig::small();
/// cfg.epochs = 2; // keep the doctest fast; accuracy needs more
/// let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
///
/// let features = campaign.features(&campaign.test);
/// let predictions = model.predict(&features).unwrap();
/// assert_eq!(predictions.len(), campaign.test.len());
/// assert!(predictions.iter().all(|p| p.position.x.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct WifiNoble {
    pub(super) mlp: Mlp,
    pub(super) layout: OutputLayout,
    pub(super) fine: GridQuantizer,
    pub(super) coarse: Option<GridQuantizer>,
    pub(super) head_building: usize,
    pub(super) head_floor: usize,
    pub(super) head_fine: usize,
}

impl WifiNoble {
    /// Trains NObLe on a campaign's offline fingerprints.
    ///
    /// # Errors
    ///
    /// Propagates quantizer, encoding and training failures;
    /// [`NobleError::InvalidData`] when the campaign has no training
    /// samples.
    pub fn train(campaign: &WifiCampaign, cfg: &WifiNobleConfig) -> Result<Self, NobleError> {
        if campaign.train.is_empty() {
            return Err(NobleError::InvalidData(
                "campaign has no training samples".into(),
            ));
        }
        let positions: Vec<Point> = campaign.train.iter().map(|s| s.position).collect();
        let fine = GridQuantizer::fit(&positions, cfg.tau, cfg.decode_policy)?;
        let coarse = match cfg.coarse_l {
            Some(l) => {
                if l <= cfg.tau {
                    return Err(NobleError::InvalidConfig(format!(
                        "coarse side {l} must exceed tau {}",
                        cfg.tau
                    )));
                }
                Some(GridQuantizer::fit(&positions, l, cfg.decode_policy)?)
            }
            None => None,
        };

        let num_buildings = campaign.map.building_count();
        let num_floors = campaign
            .map
            .buildings()
            .iter()
            .map(|b| b.floors())
            .max()
            .unwrap_or(1);

        // The fine head is multi-label sigmoid BCE (the paper's objective)
        // when adjacency expansion produces multi-hot targets; with plain
        // one-hot targets, softmax cross-entropy is the exact single-label
        // specialization and converges much faster over many classes.
        let fine_head = if cfg.adjacency_weight.is_some() {
            HeadSpec::multi_label("fine", fine.num_classes())
        } else {
            HeadSpec::softmax("fine", fine.num_classes())
        };
        let mut heads = vec![
            HeadSpec::softmax("building", num_buildings).with_weight(cfg.aux_head_weight),
            HeadSpec::softmax("floor", num_floors).with_weight(cfg.aux_head_weight),
            fine_head.with_weight(cfg.fine_head_weight),
        ];
        if let Some(c) = &coarse {
            heads.push(HeadSpec::softmax("coarse", c.num_classes()));
        }
        let layout = OutputLayout::new(heads)?;
        let head_of = |name: &str| {
            layout.head_index(name).ok_or_else(|| {
                NobleError::InvalidConfig(format!("output layout is missing the {name} head"))
            })
        };
        let head_building = head_of("building")?;
        let head_floor = head_of("floor")?;
        let head_fine = head_of("fine")?;

        let x = campaign.features(&campaign.train);
        let y = Self::targets(
            campaign,
            &campaign.train,
            &layout,
            &fine,
            coarse.as_ref(),
            cfg,
        )?;
        let (x_val, y_val);
        let validation = if campaign.val.is_empty() {
            None
        } else {
            x_val = campaign.features(&campaign.val);
            y_val = Self::targets(
                campaign,
                &campaign.val,
                &layout,
                &fine,
                coarse.as_ref(),
                cfg,
            )?;
            Some((&x_val, &y_val))
        };

        let mut mlp = Mlp::builder(campaign.num_waps(), cfg.seed)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(layout.total_width())
            .build();
        let loss = MultiHeadLoss::new(layout.clone());
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            optimizer: Optimizer::adam(cfg.learning_rate),
            lr_decay: 0.985,
            shuffle_seed: cfg.seed ^ 0xA5,
            early_stopping: cfg.patience.map(|p| EarlyStopping {
                patience: p,
                min_delta: 1e-4,
            }),
            detect_divergence: true,
        };
        Trainer::new(train_cfg).fit(&mut mlp, &x, &y, &loss, validation)?;

        Ok(WifiNoble {
            mlp,
            layout,
            fine,
            coarse,
            head_building,
            head_floor,
            head_fine,
        })
    }

    fn targets(
        campaign: &WifiCampaign,
        samples: &[WifiSample],
        layout: &OutputLayout,
        fine: &GridQuantizer,
        coarse: Option<&GridQuantizer>,
        cfg: &WifiNobleConfig,
    ) -> Result<Matrix, NobleError> {
        let n = samples.len();
        let num_floors = layout.heads()[1].width;
        let mut y = Matrix::zeros(n, layout.total_width());
        // Building / floor one-hots.
        let b_range = layout.range(0);
        let f_range = layout.range(1);
        for (i, s) in samples.iter().enumerate() {
            y[(i, b_range.start + s.building)] = 1.0;
            y[(i, f_range.start + s.floor.min(num_floors - 1))] = 1.0;
        }
        // Fine multi-hot (optionally adjacency-expanded).
        let fine_labels: Vec<usize> = samples
            .iter()
            .map(|s| fine.quantize_nearest(s.position))
            .collect();
        let mut encoder = LabelEncoder::new(fine.num_classes());
        if let Some(w) = cfg.adjacency_weight {
            encoder = encoder.with_adjacency(w);
        }
        let fine_targets = encoder.encode(&fine_labels, Some(fine))?;
        let fine_range = layout.range(2);
        for i in 0..n {
            for (j, col) in fine_range.clone().enumerate() {
                y[(i, col)] = fine_targets[(i, j)];
            }
        }
        // Coarse one-hot.
        if let Some(c) = coarse {
            let range = layout.range(3);
            for (i, s) in samples.iter().enumerate() {
                let label = c.quantize_nearest(s.position);
                y[(i, range.start + label)] = 1.0;
            }
        }
        let _ = campaign;
        Ok(y)
    }

    /// The fine quantizer (exposed for analysis and ablations).
    pub fn fine_quantizer(&self) -> &GridQuantizer {
        &self.fine
    }

    /// The coarse quantizer, when multi-resolution was enabled.
    pub fn coarse_quantizer(&self) -> Option<&GridQuantizer> {
        self.coarse.as_ref()
    }

    /// Width of the fingerprint rows the model consumes (the trained WAP
    /// count).
    pub fn feature_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    /// Number of fine neighborhood classes the model decodes over.
    pub fn class_count(&self) -> usize {
        self.fine.num_classes()
    }

    /// Number of trainable parameters (used by the energy model).
    pub fn parameter_count(&mut self) -> usize {
        self.mlp.parameter_count()
    }

    /// Shapes of the dense layers (used by the energy model's MAC counter).
    pub fn dense_shapes(&self) -> Vec<(usize, usize)> {
        self.mlp.dense_shapes()
    }
}
