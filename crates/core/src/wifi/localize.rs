//! [`Localizer`] implementations for the WiFi models: NObLe itself plus
//! the Table II baselines. These are what the sharded serving registry
//! routes batches into.

use super::baselines::{DeepRegression, KnnFingerprint, ManifoldRegression};
use super::model::WifiNoble;
use super::{KNN_FINGERPRINT_KIND, WIFI_NOBLE_KIND};
use crate::localizer::{check_feature_dim, Localizer, LocalizerInfo};
use crate::{ModelSnapshot, NobleError, SnapshotLocalizer};
use noble_geo::Point;
use noble_linalg::Matrix;

impl Localizer for WifiNoble {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: WIFI_NOBLE_KIND,
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: self.class_count(),
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim(WIFI_NOBLE_KIND, self.feature_dim(), features)?;
        Ok(self
            .predict(features)?
            .into_iter()
            .map(|p| p.position)
            .collect())
    }

    fn try_snapshot(&self) -> Option<ModelSnapshot> {
        Some(SnapshotLocalizer::snapshot(self))
    }

    fn try_lower(&self, precision: crate::InferencePrecision) -> Option<Box<dyn Localizer>> {
        let lowered = noble_nn::LoweredMlp::lower(&self.mlp, precision).ok()?;
        Some(Box::new(crate::LoweredWifi::new(
            lowered,
            self.layout.clone(),
            self.fine.clone(),
            self.head_fine,
            self.feature_dim(),
            SnapshotLocalizer::snapshot(self),
        )))
    }
}

impl Localizer for DeepRegression {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "deep-regression",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("deep-regression", self.feature_dim(), features)?;
        self.predict(features)
    }
}

impl Localizer for ManifoldRegression {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "manifold-regression",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("manifold-regression", self.feature_dim(), features)?;
        self.predict(features)
    }
}

impl Localizer for KnnFingerprint {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: KNN_FINGERPRINT_KIND,
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim(KNN_FINGERPRINT_KIND, self.feature_dim(), features)?;
        Ok((0..features.rows())
            .map(|i| self.predict_one(features.row(i)).0)
            .collect())
    }

    fn try_snapshot(&self) -> Option<ModelSnapshot> {
        Some(SnapshotLocalizer::snapshot(self))
    }
}
