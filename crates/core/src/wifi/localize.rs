//! [`Localizer`] implementations for the WiFi models: NObLe itself plus
//! the Table II baselines. These are what the sharded serving registry
//! routes batches into.

use super::baselines::{DeepRegression, KnnFingerprint, ManifoldRegression};
use super::model::WifiNoble;
use crate::localizer::{check_feature_dim, Localizer, LocalizerInfo};
use crate::NobleError;
use noble_geo::Point;
use noble_linalg::Matrix;

impl Localizer for WifiNoble {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "wifi-noble",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: self.class_count(),
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("wifi-noble", self.feature_dim(), features)?;
        Ok(self
            .predict(features)?
            .into_iter()
            .map(|p| p.position)
            .collect())
    }
}

impl Localizer for DeepRegression {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "deep-regression",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("deep-regression", self.feature_dim(), features)?;
        self.predict(features)
    }
}

impl Localizer for ManifoldRegression {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "manifold-regression",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("manifold-regression", self.feature_dim(), features)?;
        self.predict(features)
    }
}

impl Localizer for KnnFingerprint {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "knn-fingerprint",
            site: "default".into(),
            feature_dim: self.feature_dim(),
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        check_feature_dim("knn-fingerprint", self.feature_dim(), features)?;
        Ok((0..features.rows())
            .map(|i| self.predict_one(features.row(i)).0)
            .collect())
    }
}
