//! Inference and decode paths of [`WifiNoble`]: per-fix and batched
//! localization, probability-weighted decode, embedding, evaluation.

use super::model::{WifiEvalReport, WifiNoble, WifiPrediction};
use crate::eval::{position_error_summary, StructureReport};
use crate::NobleError;
use noble_datasets::{WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::Matrix;
use noble_nn::accuracy;

impl WifiNoble {
    /// Predicts positions and labels for a feature matrix (rows =
    /// normalized fingerprints).
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures.
    pub fn predict(&mut self, features: &Matrix) -> Result<Vec<WifiPrediction>, NobleError> {
        let logits = self.mlp.predict(features)?;
        let buildings = self.layout.predict_classes(&logits, self.head_building)?;
        let floors = self.layout.predict_classes(&logits, self.head_floor)?;
        let fine_classes = self.layout.predict_classes(&logits, self.head_fine)?;
        let mut out = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let position = self.fine.decode(fine_classes[i])?;
            out.push(WifiPrediction {
                position,
                building: buildings[i],
                floor: floors[i],
                fine_class: fine_classes[i],
            });
        }
        Ok(out)
    }

    /// Localizes a single fingerprint (serving-style per-fix path).
    ///
    /// For throughput-sensitive callers, collect fingerprints and use
    /// [`WifiNoble::localize_batch`]: one stacked forward pass reuses the
    /// weight matrices across the batch and engages the blocked
    /// (and, above a size threshold, multi-threaded) matmul kernels.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures; the fingerprint length must
    /// equal the trained WAP count.
    pub fn localize_one(&mut self, fingerprint: &[f64]) -> Result<WifiPrediction, NobleError> {
        let features = Matrix::from_vec(1, fingerprint.len(), fingerprint.to_vec())
            .map_err(|e| NobleError::InvalidData(e.to_string()))?;
        let mut preds = self.predict(&features)?;
        preds.pop().ok_or_else(|| {
            NobleError::InvalidData("predict returned no prediction for a one-row batch".into())
        })
    }

    /// Localizes a batch of fingerprints with a single stacked forward
    /// pass. Prediction `i` corresponds to `fingerprints[i]` and is
    /// **bit-identical** to [`WifiNoble::localize_one`] on that row: the
    /// matmul kernel class is chosen per output row, so logits do not
    /// depend on which batch a fingerprint rides in (the invariant the
    /// serving engine's micro-batching relies on).
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on ragged input; propagates network and
    /// decode failures.
    pub fn localize_batch(
        &mut self,
        fingerprints: &[Vec<f64>],
    ) -> Result<Vec<WifiPrediction>, NobleError> {
        if fingerprints.is_empty() {
            return Ok(Vec::new());
        }
        let features =
            Matrix::from_rows(fingerprints).map_err(|e| NobleError::InvalidData(e.to_string()))?;
        self.predict(&features)
    }

    /// Embeds fingerprints with the penultimate layer (the learned
    /// manifold embedding of §III-C).
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn embed(&mut self, features: &Matrix) -> Result<Matrix, NobleError> {
        Ok(self.mlp.embed(features)?)
    }

    /// Probability-weighted decode over the `k` most likely neighborhood
    /// classes: `sum p_c * centroid_c / sum p_c`.
    ///
    /// An extension beyond the paper's arg-max decode: when the classifier
    /// hesitates between adjacent cells, the expectation interpolates
    /// between their centroids instead of committing to one. Returns
    /// `(position, confidence)` pairs where confidence is the probability
    /// mass of the top class.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures;
    /// [`NobleError::InvalidConfig`] when `k` is zero.
    pub fn predict_expected(
        &mut self,
        features: &Matrix,
        k: usize,
    ) -> Result<Vec<(Point, f64)>, NobleError> {
        if k == 0 {
            return Err(NobleError::InvalidConfig(
                "top-k decode needs k >= 1".into(),
            ));
        }
        let logits = self.mlp.predict(features)?;
        let probs = self.layout.predict_probabilities(&logits, self.head_fine)?;
        let mut out = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let row = probs.row(i);
            // Indices of the k largest probabilities.
            let mut order: Vec<usize> = (0..row.len()).collect();
            // total_cmp: NaN-proof and deterministic (no panic branch).
            order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
            order.truncate(k);
            let mut mass = 0.0;
            let mut x = 0.0;
            let mut y = 0.0;
            for &c in &order {
                let p = row[c];
                let centroid = self.fine.decode(c)?;
                mass += p;
                x += p * centroid.x;
                y += p * centroid.y;
            }
            let position = if mass > 1e-300 {
                Point::new(x / mass, y / mass)
            } else {
                self.fine.decode(order[0])?
            };
            out.push((position, row[order[0]]));
        }
        Ok(out)
    }

    /// Evaluates on a labeled sample set, producing the Table I metrics.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty sample set; propagates
    /// prediction failures.
    pub fn evaluate(
        &mut self,
        campaign: &WifiCampaign,
        samples: &[WifiSample],
    ) -> Result<WifiEvalReport, NobleError> {
        if samples.is_empty() {
            return Err(NobleError::InvalidData("no samples to evaluate".into()));
        }
        let features = campaign.features(samples);
        let preds = self.predict(&features)?;
        let predicted_positions: Vec<Point> = preds.iter().map(|p| p.position).collect();
        let true_positions: Vec<Point> = samples.iter().map(|s| s.position).collect();

        let pred_b: Vec<usize> = preds.iter().map(|p| p.building).collect();
        let true_b: Vec<usize> = samples.iter().map(|s| s.building).collect();
        let pred_f: Vec<usize> = preds.iter().map(|p| p.floor).collect();
        let true_f: Vec<usize> = samples.iter().map(|s| s.floor).collect();
        let pred_c: Vec<usize> = preds.iter().map(|p| p.fine_class).collect();
        let true_c: Vec<usize> = samples
            .iter()
            .map(|s| self.fine.quantize_nearest(s.position))
            .collect();

        Ok(WifiEvalReport {
            building_accuracy: accuracy(&pred_b, &true_b),
            floor_accuracy: accuracy(&pred_f, &true_f),
            class_accuracy: accuracy(&pred_c, &true_c),
            position_error: position_error_summary(&predicted_positions, &true_positions)?,
            structure: StructureReport::compute(&predicted_positions, &campaign.map)?,
        })
    }
}
