//! The comparison models of Table II (paper §IV-B).
//!
//! - [`DeepRegression`] — the same-size network trained with mean squared
//!   error to regress coordinates directly,
//! - [`DeepRegression::predict_projected`] — *Deep Regression Projection*:
//!   the same predictions snapped to the nearest accessible map point,
//! - [`ManifoldRegression`] — Isomap or LLE embeddings of the input
//!   signals feeding a two-hidden-layer regression network,
//! - [`KnnFingerprint`] — classic weighted-kNN fingerprinting (the §II
//!   "online phase" matcher), included as a non-neural reference.

use crate::eval::position_error_summary;
use crate::NobleError;
use noble_datasets::{WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::{Matrix, Summary};
use noble_manifold::{Isomap, KdTree, Lle, Pca};
use noble_nn::{Activation, Mlp, MseLoss, Optimizer, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration shared by the regression baselines.
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Hidden width of the two hidden layers (matched to NObLe's 128).
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            hidden_dim: 128,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0xD06,
        }
    }
}

impl RegressionConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        RegressionConfig {
            hidden_dim: 32,
            epochs: 25,
            batch_size: 32,
            learning_rate: 3e-3,
            ..RegressionConfig::default()
        }
    }
}

/// Coordinate standardization fitted on training positions.
#[derive(Debug, Clone)]
struct CoordScaler {
    center: Point,
    scale: f64,
}

impl CoordScaler {
    fn fit(positions: &[Point]) -> Self {
        let n = positions.len().max(1) as f64;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for p in positions {
            cx += p.x;
            cy += p.y;
        }
        let center = Point::new(cx / n, cy / n);
        let mut var = 0.0;
        for p in positions {
            var += p.squared_distance(center);
        }
        let scale = (var / n).sqrt().max(1e-9);
        CoordScaler { center, scale }
    }

    fn encode(&self, positions: &[Point]) -> Matrix {
        let mut m = Matrix::zeros(positions.len(), 2);
        for (i, p) in positions.iter().enumerate() {
            m[(i, 0)] = (p.x - self.center.x) / self.scale;
            m[(i, 1)] = (p.y - self.center.y) / self.scale;
        }
        m
    }

    fn decode_row(&self, row: &[f64]) -> Point {
        Point::new(
            row[0] * self.scale + self.center.x,
            row[1] * self.scale + self.center.y,
        )
    }
}

/// The paper's *Deep Regression* baseline: identical network capacity to
/// NObLe, trained with MSE to output coordinates.
#[derive(Debug, Clone)]
pub struct DeepRegression {
    mlp: Mlp,
    scaler: CoordScaler,
}

impl DeepRegression {
    /// Trains the baseline on a campaign's offline fingerprints.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty campaign; propagates
    /// training failures.
    pub fn train(campaign: &WifiCampaign, cfg: &RegressionConfig) -> Result<Self, NobleError> {
        if campaign.train.is_empty() {
            return Err(NobleError::InvalidData(
                "campaign has no training samples".into(),
            ));
        }
        let x = campaign.features(&campaign.train);
        let positions: Vec<Point> = campaign.train.iter().map(|s| s.position).collect();
        let scaler = CoordScaler::fit(&positions);
        let y = scaler.encode(&positions);
        let mut mlp = Mlp::builder(campaign.num_waps(), cfg.seed)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            optimizer: Optimizer::adam(cfg.learning_rate),
            lr_decay: 0.985,
            shuffle_seed: cfg.seed ^ 0x3C,
            early_stopping: None,
            detect_divergence: true,
        };
        Trainer::new(train_cfg).fit(&mut mlp, &x, &y, &MseLoss, None)?;
        Ok(DeepRegression { mlp, scaler })
    }

    /// Width of the fingerprint rows the network consumes.
    pub fn feature_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    /// Raw coordinate predictions.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn predict(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        let out = self.mlp.predict(features)?;
        Ok((0..out.rows())
            .map(|i| self.scaler.decode_row(out.row(i)))
            .collect())
    }

    /// *Deep Regression Projection*: predictions snapped onto the map's
    /// accessible space (the paper's projection baseline after \[8\]).
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn predict_projected(
        &mut self,
        features: &Matrix,
        campaign: &WifiCampaign,
    ) -> Result<Vec<Point>, NobleError> {
        Ok(self
            .predict(features)?
            .into_iter()
            .map(|p| campaign.map.project(p))
            .collect())
    }

    /// Position-error summary on a labeled set, raw or projected.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures; [`NobleError::InvalidData`] on an
    /// empty set.
    pub fn evaluate(
        &mut self,
        campaign: &WifiCampaign,
        samples: &[WifiSample],
        projected: bool,
    ) -> Result<Summary, NobleError> {
        let features = campaign.features(samples);
        let preds = if projected {
            self.predict_projected(&features, campaign)?
        } else {
            self.predict(&features)?
        };
        let truth: Vec<Point> = samples.iter().map(|s| s.position).collect();
        position_error_summary(&preds, &truth)
    }
}

/// Which manifold embedding feeds the regression network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifoldKind {
    /// Geodesic MDS (Isomap).
    Isomap,
    /// Locally linear embedding.
    Lle,
    /// Principal component analysis — the *linear* reference point; if the
    /// nonlinear embeddings cannot beat PCA, input-space neighborhoods
    /// carried no extra information (the paper's §III-A suspicion).
    Pca,
}

/// Configuration of the manifold-embedding regression baselines.
#[derive(Debug, Clone)]
pub struct ManifoldRegressionConfig {
    /// Embedding algorithm.
    pub kind: ManifoldKind,
    /// Embedding dimension (the paper tuned to 400 on UJIIndoorLoc; scale
    /// to the synthetic campaign).
    pub embedding_dim: usize,
    /// Neighborhood size for the kNN graph / local weights.
    pub k: usize,
    /// Landmark subsample used to fit the embedding (full Isomap on
    /// thousands of samples is cubic; landmarks are standard practice).
    pub landmarks: usize,
    /// Downstream regression network settings.
    pub regression: RegressionConfig,
}

impl Default for ManifoldRegressionConfig {
    fn default() -> Self {
        ManifoldRegressionConfig {
            kind: ManifoldKind::Isomap,
            embedding_dim: 32,
            k: 10,
            landmarks: 400,
            regression: RegressionConfig::default(),
        }
    }
}

impl ManifoldRegressionConfig {
    /// A reduced configuration for unit tests.
    pub fn small(kind: ManifoldKind) -> Self {
        ManifoldRegressionConfig {
            kind,
            embedding_dim: 8,
            k: 6,
            landmarks: 80,
            regression: RegressionConfig::small(),
        }
    }
}

enum FittedEmbedding {
    Isomap(Isomap),
    Lle(Lle),
    Pca(Pca),
}

impl std::fmt::Debug for FittedEmbedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FittedEmbedding::Isomap(_) => write!(f, "FittedEmbedding::Isomap"),
            FittedEmbedding::Lle(_) => write!(f, "FittedEmbedding::Lle"),
            FittedEmbedding::Pca(_) => write!(f, "FittedEmbedding::Pca"),
        }
    }
}

/// The paper's *Manifold Embedding* baselines: fit Isomap or LLE on the
/// input signals, then regress coordinates from the embedding with a
/// two-hidden-layer network.
#[derive(Debug)]
pub struct ManifoldRegression {
    embedding: FittedEmbedding,
    mlp: Mlp,
    scaler: CoordScaler,
    input_dim: usize,
}

impl ManifoldRegression {
    /// Trains the baseline.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty campaign; propagates
    /// manifold and training failures.
    pub fn train(
        campaign: &WifiCampaign,
        cfg: &ManifoldRegressionConfig,
    ) -> Result<Self, NobleError> {
        if campaign.train.is_empty() {
            return Err(NobleError::InvalidData(
                "campaign has no training samples".into(),
            ));
        }
        let x = campaign.features(&campaign.train);
        // Landmark subsample for the embedding fit.
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.regression.seed ^ 0x1507);
        indices.shuffle(&mut rng);
        indices.truncate(cfg.landmarks.min(x.rows()));
        let landmarks = x.select_rows(&indices);

        let embedding = match cfg.kind {
            ManifoldKind::Isomap => FittedEmbedding::Isomap(Isomap::fit(
                &landmarks,
                cfg.k,
                cfg.embedding_dim,
                cfg.regression.seed,
            )?),
            ManifoldKind::Lle => FittedEmbedding::Lle(Lle::fit(
                &landmarks,
                cfg.k,
                cfg.embedding_dim,
                1e-3,
                cfg.regression.seed,
            )?),
            ManifoldKind::Pca => FittedEmbedding::Pca(Pca::fit(
                &landmarks,
                cfg.embedding_dim.min(landmarks.cols()),
                cfg.regression.seed,
            )?),
        };
        let embed = |features: &Matrix| -> Matrix {
            match &embedding {
                FittedEmbedding::Isomap(m) => m.transform(features),
                FittedEmbedding::Lle(m) => m.transform(features),
                FittedEmbedding::Pca(m) => m.transform(features),
            }
        };

        let x_embedded = embed(&x);
        let positions: Vec<Point> = campaign.train.iter().map(|s| s.position).collect();
        let scaler = CoordScaler::fit(&positions);
        let y = scaler.encode(&positions);

        let mut mlp = Mlp::builder(x_embedded.cols(), cfg.regression.seed)
            .dense(cfg.regression.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(cfg.regression.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let train_cfg = TrainConfig {
            epochs: cfg.regression.epochs,
            batch_size: cfg.regression.batch_size,
            optimizer: Optimizer::adam(cfg.regression.learning_rate),
            lr_decay: 0.985,
            shuffle_seed: cfg.regression.seed ^ 0x91,
            early_stopping: None,
            detect_divergence: true,
        };
        Trainer::new(train_cfg).fit(&mut mlp, &x_embedded, &y, &MseLoss, None)?;
        Ok(ManifoldRegression {
            embedding,
            mlp,
            scaler,
            input_dim: x.cols(),
        })
    }

    /// Width of the raw fingerprint rows the embedding consumes.
    pub fn feature_dim(&self) -> usize {
        self.input_dim
    }

    /// Predicts coordinates for normalized fingerprints.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn predict(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        let embedded = match &self.embedding {
            FittedEmbedding::Isomap(m) => m.transform(features),
            FittedEmbedding::Lle(m) => m.transform(features),
            FittedEmbedding::Pca(m) => m.transform(features),
        };
        let out = self.mlp.predict(&embedded)?;
        Ok((0..out.rows())
            .map(|i| self.scaler.decode_row(out.row(i)))
            .collect())
    }

    /// Position-error summary on a labeled set.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn evaluate(
        &mut self,
        campaign: &WifiCampaign,
        samples: &[WifiSample],
    ) -> Result<Summary, NobleError> {
        let features = campaign.features(samples);
        let preds = self.predict(&features)?;
        let truth: Vec<Point> = samples.iter().map(|s| s.position).collect();
        position_error_summary(&preds, &truth)
    }
}

/// Classic weighted-kNN fingerprinting over the radio map (paper §II's
/// online-phase matcher). Non-neural reference point.
#[derive(Debug)]
pub struct KnnFingerprint {
    pub(super) tree: KdTree,
    pub(super) positions: Vec<Point>,
    pub(super) buildings: Vec<usize>,
    pub(super) floors: Vec<usize>,
    pub(super) k: usize,
    pub(super) feature_dim: usize,
}

impl KnnFingerprint {
    /// Builds the radio map from a campaign's offline fingerprints.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty campaign or zero `k`.
    pub fn fit(campaign: &WifiCampaign, k: usize) -> Result<Self, NobleError> {
        if campaign.train.is_empty() {
            return Err(NobleError::InvalidData(
                "campaign has no training samples".into(),
            ));
        }
        if k == 0 {
            return Err(NobleError::InvalidConfig("k must be positive".into()));
        }
        let x = campaign.features(&campaign.train);
        Ok(KnnFingerprint {
            tree: KdTree::build(&x),
            positions: campaign.train.iter().map(|s| s.position).collect(),
            buildings: campaign.train.iter().map(|s| s.building).collect(),
            floors: campaign.train.iter().map(|s| s.floor).collect(),
            k,
            feature_dim: campaign.num_waps(),
        })
    }

    /// Width of the fingerprint rows the radio map was built over.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Predicts `(position, building, floor)` for one normalized
    /// fingerprint by inverse-distance-weighted voting over the `k`
    /// nearest radio-map entries.
    pub fn predict_one(&self, features: &[f64]) -> (Point, usize, usize) {
        let hits = self.tree.knn(features, self.k);
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        let mut b_votes = std::collections::BTreeMap::new();
        let mut f_votes = std::collections::BTreeMap::new();
        for &(idx, d) in &hits {
            let w = 1.0 / (d + 1e-6);
            wx += w * self.positions[idx].x;
            wy += w * self.positions[idx].y;
            wsum += w;
            *b_votes.entry(self.buildings[idx]).or_insert(0.0) += w;
            *f_votes.entry(self.floors[idx]).or_insert(0.0) += w;
        }
        let position = Point::new(wx / wsum, wy / wsum);
        let building = best_vote(&b_votes);
        let floor = best_vote(&f_votes);
        (position, building, floor)
    }

    /// Position-error summary on a labeled set.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on an empty set.
    pub fn evaluate(
        &self,
        campaign: &WifiCampaign,
        samples: &[WifiSample],
    ) -> Result<Summary, NobleError> {
        let features = campaign.features(samples);
        let preds: Vec<Point> = (0..features.rows())
            .map(|i| self.predict_one(features.row(i)).0)
            .collect();
        let truth: Vec<Point> = samples.iter().map(|s| s.position).collect();
        position_error_summary(&preds, &truth)
    }
}

/// The label with the largest vote weight. Iterating the `BTreeMap` in
/// key order makes ties land on the smallest label deterministically —
/// with a `HashMap` here, the winner of an exact tie (common on the
/// building vote when `k` splits evenly across a boundary) changed from
/// run to run with the hasher seed. `total_cmp` keeps the comparison
/// panic-free.
fn best_vote(votes: &std::collections::BTreeMap<usize, f64>) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for (&label, &weight) in votes {
        let better = match best {
            None => true,
            Some((_, w)) => weight.total_cmp(&w) == std::cmp::Ordering::Greater,
        };
        if better {
            best = Some((label, weight));
        }
    }
    best.map(|(label, _)| label).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::StructureReport;
    use noble_datasets::{uji_campaign, UjiConfig};

    fn quick_campaign() -> WifiCampaign {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        uji_campaign(&cfg).unwrap()
    }

    #[test]
    fn deep_regression_learns_coarse_location() {
        let campaign = quick_campaign();
        let mut model = DeepRegression::train(&campaign, &RegressionConfig::small()).unwrap();
        let s = model.evaluate(&campaign, &campaign.test, false).unwrap();
        // Campus spans ~350 m; a trained regressor should do far better
        // than the ~140 m scale of random guessing.
        assert!(s.mean < 70.0, "mean {}", s.mean);
    }

    #[test]
    fn projection_never_hurts_structure() {
        let campaign = quick_campaign();
        let mut model = DeepRegression::train(&campaign, &RegressionConfig::small()).unwrap();
        let features = campaign.features(&campaign.test);
        let raw = model.predict(&features).unwrap();
        let projected = model.predict_projected(&features, &campaign).unwrap();
        let raw_structure = StructureReport::compute(&raw, &campaign.map).unwrap();
        let proj_structure = StructureReport::compute(&projected, &campaign.map).unwrap();
        assert!(proj_structure.on_map_fraction >= raw_structure.on_map_fraction);
        assert!(proj_structure.on_map_fraction > 0.99);
    }

    #[test]
    fn best_vote_breaks_exact_ties_on_the_smallest_label() {
        // Regression: with HashMap voting, an exact weight tie was won by
        // whichever entry the hasher happened to iterate first, so the
        // kNN building/floor prediction changed from run to run. The
        // BTreeMap walk must settle ties on the smallest label, every run.
        let mut votes = std::collections::BTreeMap::new();
        votes.insert(9, 0.5);
        votes.insert(3, 0.5);
        votes.insert(6, 0.5);
        assert_eq!(best_vote(&votes), 3);
        votes.insert(6, 0.75);
        assert_eq!(best_vote(&votes), 6);
        assert_eq!(best_vote(&std::collections::BTreeMap::new()), 0);
    }

    #[test]
    fn knn_fingerprint_accuracy() {
        let campaign = quick_campaign();
        let model = KnnFingerprint::fit(&campaign, 5).unwrap();
        let s = model.evaluate(&campaign, &campaign.test).unwrap();
        // kNN on a dense radio map is a strong baseline.
        assert!(s.mean < 40.0, "mean {}", s.mean);
        assert!(KnnFingerprint::fit(&campaign, 0).is_err());
    }

    #[test]
    fn knn_predicts_labels_too() {
        let campaign = quick_campaign();
        let model = KnnFingerprint::fit(&campaign, 3).unwrap();
        let features = campaign.features(&campaign.test);
        let mut hits = 0;
        for (i, s) in campaign.test.iter().enumerate() {
            let (_, b, _) = model.predict_one(features.row(i));
            if b == s.building {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / campaign.test.len() as f64 > 0.8,
            "building votes {hits}/{}",
            campaign.test.len()
        );
    }

    #[test]
    fn manifold_regression_both_kinds_run() {
        let campaign = quick_campaign();
        for kind in [ManifoldKind::Isomap, ManifoldKind::Lle, ManifoldKind::Pca] {
            let mut model =
                ManifoldRegression::train(&campaign, &ManifoldRegressionConfig::small(kind))
                    .unwrap();
            let s = model.evaluate(&campaign, &campaign.test).unwrap();
            assert!(s.mean.is_finite(), "{kind:?} produced non-finite error");
            assert!(s.mean < 150.0, "{kind:?} mean {}", s.mean);
        }
    }

    #[test]
    fn baselines_serve_through_localizer_trait() {
        use crate::Localizer;
        let campaign = quick_campaign();
        let features = campaign.features(&campaign.test[..6.min(campaign.test.len())]);

        let mut deep = DeepRegression::train(&campaign, &RegressionConfig::small()).unwrap();
        let direct = deep.predict(&features).unwrap();
        let served = Localizer::localize_batch(&mut deep, &features).unwrap();
        assert_eq!(direct, served);
        assert_eq!(Localizer::info(&deep).model, "deep-regression");
        assert_eq!(Localizer::info(&deep).class_count, 0);

        let mut knn = KnnFingerprint::fit(&campaign, 3).unwrap();
        let served = Localizer::localize_batch(&mut knn, &features).unwrap();
        for (i, p) in served.iter().enumerate() {
            assert_eq!(*p, knn.predict_one(features.row(i)).0);
        }
        assert_eq!(Localizer::info(&knn).feature_dim, campaign.num_waps());

        let bad = Matrix::zeros(2, campaign.num_waps() + 3);
        assert!(Localizer::localize_batch(&mut deep, &bad).is_err());
        assert!(Localizer::localize_batch(&mut knn, &bad).is_err());
    }

    #[test]
    fn baselines_reject_empty_campaign() {
        let campaign = quick_campaign();
        let mut empty = campaign.clone();
        empty.train.clear();
        assert!(DeepRegression::train(&empty, &RegressionConfig::small()).is_err());
        assert!(KnnFingerprint::fit(&empty, 3).is_err());
        assert!(ManifoldRegression::train(
            &empty,
            &ManifoldRegressionConfig::small(ManifoldKind::Isomap)
        )
        .is_err());
    }
}
